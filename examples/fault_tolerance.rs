//! Fault-tolerance demonstration: a node dies in the middle of a Monte
//! Carlo analysis; the engine loses that node's cached `U` blocks, shuffle
//! outputs, and DFS replicas, recovers everything from lineage, and the
//! statistical results are bit-for-bit unchanged — the Spark property the
//! paper highlights ("harnesses the fault-tolerant features of Spark").
//!
//! Run with: `cargo run --release --example fault_tolerance`

use std::sync::Arc;

use sparkscore_cluster::{ClusterSpec, FaultPlan, NodeId};
use sparkscore_core::{AnalysisOptions, SparkScoreContext};
use sparkscore_data::{write_dataset_to_dfs, GwasDataset, SyntheticConfig};
use sparkscore_rdd::{Engine, EngineEvent, EventListener, MemoryEventListener};

fn build(engine: &Arc<Engine>, dataset: &GwasDataset) -> SparkScoreContext {
    let (paths, _) = write_dataset_to_dfs(engine.dfs(), "/gwas", dataset).expect("fresh DFS");
    SparkScoreContext::from_dfs(Arc::clone(engine), &paths, AnalysisOptions::default())
        .expect("inputs written above")
}

fn main() {
    let mut config = SyntheticConfig::small(99);
    config.patients = 150;
    config.snps = 300;
    config.snp_sets = 12;
    let dataset = GwasDataset::generate(&config);

    // Reference run on a healthy cluster.
    let healthy = Engine::builder(ClusterSpec::m3_2xlarge(4))
        .dfs_block_size(32 * 1024)
        .dfs_replication(2)
        .build();
    let clean = build(&healthy, &dataset).monte_carlo(50, 3, true);
    println!(
        "healthy run:   {} replicates, {} tasks, {} recomputed partitions",
        clean.num_replicates, clean.metrics.tasks, clean.metrics.recomputed_partitions
    );

    // Same analysis, but node 2 dies after 150 completed tasks, and the
    // fault injector also drops a cached block every 40 tasks. A memory
    // listener captures the engine's event stream so the recovery work is
    // visible, not just inferred from counters.
    let events = Arc::new(MemoryEventListener::new());
    let chaotic = Engine::builder(ClusterSpec::m3_2xlarge(4))
        .dfs_block_size(32 * 1024)
        .dfs_replication(2)
        .fault_plan(FaultPlan::kill_node_after(NodeId(2), 150).with_cached_block_loss_every(40))
        .listener(Arc::clone(&events) as Arc<dyn EventListener>)
        .build();
    let faulty = build(&chaotic, &dataset).monte_carlo(50, 3, true);
    println!(
        "chaotic run:   {} replicates, {} tasks, {} recomputed partitions, {} map re-runs",
        faulty.num_replicates,
        faulty.metrics.tasks,
        faulty.metrics.recomputed_partitions,
        faulty.metrics.shuffle_map_reruns,
    );
    println!(
        "node 2 alive after run: {}",
        chaotic.cluster().node(NodeId(2)).is_alive()
    );

    // Replay the captured event stream: every injected fault, every shuffle
    // map re-run, and every task that recomputed previously-cached blocks.
    println!("\nrecovery events captured during the chaotic run:");
    let mut recompute_tasks = 0u64;
    for event in events.snapshot() {
        match event {
            EngineEvent::FaultInjected { fault } => println!("  fault injected: {fault:?}"),
            EngineEvent::ShuffleMapRerun { shuffle, map_part } => {
                println!("  shuffle {shuffle} map task {map_part} re-run from lineage")
            }
            EngineEvent::TaskEnd { stage, metrics } if metrics.recomputed_partitions > 0 => {
                recompute_tasks += 1;
                if recompute_tasks <= 8 {
                    println!(
                        "  stage {stage} partition {} recomputed {} lost cached block(s)",
                        metrics.partition, metrics.recomputed_partitions
                    );
                }
            }
            _ => {}
        }
    }
    if recompute_tasks > 8 {
        println!(
            "  ... and {} more recompute-flagged tasks",
            recompute_tasks - 8
        );
    }
    assert!(
        recompute_tasks > 0,
        "the event stream must show recomputation"
    );

    // The same captured stream, analyzed: where the recovery time went
    // (critical path) and what the cache still bought despite the faults.
    let trace = sparkscore_obs::ExecutionTrace::from_events(&events.snapshot());
    let paths = sparkscore_obs::critical_paths(&trace);
    if let Some(worst) = paths.iter().max_by_key(|p| (p.path_ns, p.job)) {
        println!(
            "\nslowest job during recovery: job {} ({} stages, critical path {})",
            worst.job,
            worst.stages.len(),
            sparkscore_rdd::events::fmt_ns(worst.path_ns),
        );
    }
    println!(
        "{}",
        sparkscore_obs::cache_roi_line(&sparkscore_obs::cache_roi(&trace))
    );

    // Verify: identical observed statistics and resampling counters.
    let mut max_rel = 0.0f64;
    for (a, b) in clean.observed.iter().zip(&faulty.observed) {
        max_rel = max_rel.max((a.score - b.score).abs() / (1.0 + b.score.abs()));
    }
    println!("\nmax relative observed-statistic difference: {max_rel:.2e}");
    println!(
        "resampling counters identical: {}",
        clean.counts_ge == faulty.counts_ge
    );
    assert!(max_rel < 1e-9, "faults must not change results");
    assert_eq!(clean.counts_ge, faulty.counts_ge);
    assert!(
        faulty.metrics.recomputed_partitions > 0,
        "the chaotic run must actually have recomputed lost blocks"
    );
    println!("\nlineage recovery confirmed: same answers, extra recomputation only.");
}
