//! Quickstart: generate a small synthetic GWAS cohort, run SparkScore's
//! Monte Carlo resampling analysis (the paper's Algorithm 3) on a
//! simulated 6-node cluster, and print the most significant SNP-sets.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Set `SPARKSCORE_EVENTS_DIR=<dir>` to also write a JSONL event log
//! (`<dir>/quickstart.jsonl`) suitable for the `trace` analyzer:
//! `cargo run -p sparkscore-obs --bin trace -- report <dir>/quickstart.jsonl`

use std::sync::Arc;

use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, SparkScoreContext};
use sparkscore_data::{GwasDataset, SyntheticConfig};
use sparkscore_rdd::{Engine, EventListener, EventLogListener};

fn main() {
    // A 6-node cluster of the paper's m3.2xlarge instances (Table I).
    let mut builder = Engine::builder(ClusterSpec::m3_2xlarge(6));
    let mut log = None;
    if let Some(dir) = std::env::var_os("SPARKSCORE_EVENTS_DIR") {
        let path = std::path::PathBuf::from(dir).join("quickstart.jsonl");
        let listener = Arc::new(EventLogListener::to_file(&path).expect("events dir writable"));
        builder = builder.listener(Arc::clone(&listener) as Arc<dyn EventListener>);
        log = Some((listener, path));
    }
    let engine = builder.build();
    println!(
        "cluster: {} nodes × {} ({} task slots)",
        engine.cluster().num_nodes(),
        engine.cluster().spec().instance.name,
        engine.layout().total_slots(),
    );

    // Synthetic cohort per the paper §III: exponential survival times,
    // 85% event rate, Binomial(2, ρ) genotypes, exponential set sizes.
    let mut config = SyntheticConfig::small(42);
    config.patients = 200;
    config.snps = 500;
    config.snp_sets = 25;
    let dataset = GwasDataset::generate(&config);
    println!(
        "cohort: {} patients × {} SNPs in {} SNP-sets",
        config.patients, config.snps, config.snp_sets
    );

    // Build the analysis and run 199 Monte Carlo replicates with the U RDD
    // cached between iterations (Algorithm 3).
    let ctx = SparkScoreContext::from_memory(engine, &dataset, 8, AnalysisOptions::default());
    let run = ctx.monte_carlo(199, 7, true);

    println!(
        "\ntop SNP-sets by empirical p-value (B = {}):",
        run.num_replicates
    );
    for (set, p) in run.top_sets(5) {
        let observed = run
            .observed
            .iter()
            .find(|s| s.set == set)
            .expect("set present");
        println!(
            "  set {set:>3}: SKAT = {:>10.2}  p = {p:.3}",
            observed.score
        );
    }

    println!("\nexecution:");
    println!("  host wall time:       {:.2?}", run.wall);
    println!("  virtual cluster time: {:.2} s", run.virtual_secs);
    println!(
        "  cache hits/misses:    {}/{}",
        run.metrics.cache_hits, run.metrics.cache_misses
    );
    println!("  tasks executed:       {}", run.metrics.tasks);
    println!(
        "  {}",
        sparkscore_obs::live_digest(&ctx.engine().memory_snapshot())
    );

    if let Some((listener, path)) = log {
        listener.flush().expect("flush event log");
        println!("  event log:            {}", path.display());
    }
}
