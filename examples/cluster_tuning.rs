//! Cluster auto-tuning exploration (the paper's Experiment C in miniature):
//! sweep the cluster size for strong scaling, then sweep YARN container
//! shapes on a fixed cluster, reporting virtual cluster time for the same
//! Monte Carlo workload.
//!
//! Run with: `cargo run --release --example cluster_tuning`

use std::sync::Arc;

use sparkscore_cluster::{ClusterSpec, ContainerRequest};
use sparkscore_core::{AnalysisOptions, SparkScoreContext};
use sparkscore_data::{write_dataset_to_dfs, GwasDataset, SyntheticConfig};
use sparkscore_rdd::Engine;

fn analyze(engine: Arc<Engine>, dataset: &GwasDataset, iterations: usize) -> f64 {
    let (paths, _) = write_dataset_to_dfs(engine.dfs(), "/gwas", dataset).expect("fresh DFS");
    let ctx = SparkScoreContext::from_dfs(Arc::clone(&engine), &paths, AnalysisOptions::default())
        .expect("inputs written above");
    ctx.monte_carlo(iterations, 1, true).virtual_secs
}

fn main() {
    let mut config = SyntheticConfig::small(5);
    config.patients = 200;
    config.snps = 2000;
    config.snp_sets = 40;
    let dataset = GwasDataset::generate(&config);
    let iterations = 20;
    println!(
        "workload: {} patients × {} SNPs, {} MC iterations\n",
        config.patients, config.snps, iterations
    );

    // Strong scaling: like Fig 6, with storage memory proportional to the
    // node count so small clusters feel cache pressure.
    let u_bytes = (config.snps * config.patients * 8) as u64;
    println!("strong scaling (cache budget grows with nodes):");
    println!("nodes  slots  virtual time (s)");
    for nodes in [2u32, 4, 8] {
        let engine = Engine::builder(ClusterSpec::m3_2xlarge(nodes))
            .dfs_block_size(64 * 1024)
            .cache_budget_bytes(u_bytes / 6 * u64::from(nodes))
            .build();
        let slots = engine.layout().total_slots();
        let t = analyze(engine, &dataset, iterations);
        println!("{nodes:>5}  {slots:>5}  {t:>10.1}");
    }

    // Container shapes: same total slots, different partitioning — the
    // paper finds the difference "almost negligible" (Fig 7).
    println!("\ncontainer shapes on a fixed 12-node cluster:");
    println!("containers  mem/ctr(GiB)  cores/ctr  slots  virtual time (s)");
    for req in [
        ContainerRequest::new(12, 20 * 1024, 7),
        ContainerRequest::new(24, 10 * 1024, 3),
        ContainerRequest::new(48, 5 * 1024, 2),
    ] {
        let engine = Engine::builder(ClusterSpec::m3_2xlarge(12))
            .dfs_block_size(64 * 1024)
            .containers(req)
            .build();
        let slots = engine.layout().total_slots();
        let t = analyze(engine, &dataset, iterations);
        println!(
            "{:>10}  {:>12.1}  {:>9}  {:>5}  {t:>10.1}",
            req.containers,
            req.memory_mib as f64 / 1024.0,
            req.cores,
            slots
        );
    }
    println!(
        "\ntakeaway: slot count and memory budget matter; container partitioning barely does."
    );
}
