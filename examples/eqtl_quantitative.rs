//! An eQTL-style analysis: the paper's abstract notes that SparkScore
//! "can be readily extended to analysis of DNA and RNA sequencing data,
//! including expression quantitative trait loci (eQTL)". Here the
//! phenotype is a quantitative expression level, the score model is the
//! Gaussian efficient score, and the significance of each candidate gene
//! window is assessed by Monte Carlo resampling and cross-checked against
//! the Liu moment-matching asymptotic approximation.
//!
//! Run with: `cargo run --release --example eqtl_quantitative`
//!
//! Set `SPARKSCORE_EVENTS_DIR=<dir>` to also write a JSONL event log
//! (`<dir>/eqtl_quantitative.jsonl`). The Gaussian score model is affine
//! in dosage, so every kernel row is served by the packed-direct bit
//! kernels — `trace report` shows the split in its `== kernels ==` line.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, Phenotype, SparkScoreContext};
use sparkscore_rdd::{Engine, EventListener, EventLogListener};
use sparkscore_stats::asymptotic::skat_liu_pvalue;
use sparkscore_stats::dist::sample_standard_normal;
use sparkscore_stats::qc::QcThresholds;
use sparkscore_stats::score::{score_and_variance, GaussianScore, ScoreModel};
use sparkscore_stats::skat::SnpSet;

fn main() {
    let mut rng = StdRng::seed_from_u64(7777);
    let patients = 300;
    let snps = 200;

    // Genotypes: independent SNPs, MAF uniform in (0.1, 0.4).
    let rows: Vec<Vec<u8>> = (0..snps)
        .map(|_| {
            let maf = rng.gen_range(0.1..0.4);
            (0..patients)
                .map(|_| sparkscore_stats::dist::sample_genotype(&mut rng, maf))
                .collect()
        })
        .collect();

    // Expression level driven by SNP 30 (a cis-eQTL) plus noise.
    let expression: Vec<f64> = (0..patients)
        .map(|i| 1.5 * f64::from(rows[30][i]) + sample_standard_normal(&mut rng))
        .collect();

    // Candidate gene windows of 10 consecutive SNPs.
    let sets: Vec<SnpSet> = (0..snps / 10)
        .map(|k| SnpSet::new(k as u64, (10 * k..10 * (k + 1)).collect()))
        .collect();
    let causal_set = 3u64; // SNP 30 lives in window 3.

    let mut builder = Engine::builder(ClusterSpec::m3_2xlarge(4));
    let mut log = None;
    if let Some(dir) = std::env::var_os("SPARKSCORE_EVENTS_DIR") {
        let path = std::path::PathBuf::from(dir).join("eqtl_quantitative.jsonl");
        let listener = Arc::new(EventLogListener::to_file(&path).expect("events dir writable"));
        builder = builder.listener(Arc::clone(&listener) as Arc<dyn EventListener>);
        log = Some((listener, path));
    }
    let engine = builder.build();
    let gm = engine.parallelize(
        rows.iter()
            .enumerate()
            .map(|(j, r)| (j as u64, r.clone()))
            .collect::<Vec<_>>(),
        8,
    );
    let weights_rdd = engine.parallelize((0..snps as u64).map(|j| (j, 1.0)).collect::<Vec<_>>(), 2);
    let ctx = SparkScoreContext::from_parts(
        Arc::clone(&engine),
        Phenotype::Quantitative(expression.clone()),
        gm,
        weights_rdd,
        &sets,
        AnalysisOptions::default(),
    );

    // QC straight off the packed columns: counts, MAF, and HWE via
    // popcount kernels, no byte dosages materialized.
    let qc = ctx.qc(QcThresholds::default());
    let passing = qc.iter().filter(|q| q.verdict.is_ok()).count();
    println!("QC (packed-direct): {passing}/{} SNPs pass\n", qc.len());

    let run = ctx.monte_carlo(499, 5, true);
    let mc_p = run.pvalues();

    // Asymptotic cross-check: SKAT's null is Σ λ_j χ²₁ with λ_j = ω²V_j.
    let model = GaussianScore::new(&expression);
    println!("gene-window results (B = {}):", run.num_replicates);
    println!("window   SKAT        p(MC)    p(Liu asymptotic)");
    for (k, set) in sets.iter().enumerate() {
        let lambdas: Vec<f64> = set
            .members
            .iter()
            .map(|&j| score_and_variance(&model.contributions(&rows[j])).1)
            .collect();
        let liu = skat_liu_pvalue(run.observed[k].score, &lambdas);
        let marker = if set.id == causal_set {
            "  <-- cis-eQTL"
        } else {
            ""
        };
        if mc_p[k] < 0.2 || set.id == causal_set {
            println!(
                "{:>6}   {:>9.2}   {:.3}    {:.4}{marker}",
                set.id, run.observed[k].score, mc_p[k], liu
            );
        }
    }

    let k = causal_set as usize;
    assert!(
        mc_p[k] <= 0.05,
        "the planted eQTL window should be significant (p = {})",
        mc_p[k]
    );
    println!(
        "\ndetected: window {causal_set} p(MC) = {:.3}, p(Liu) = {:.2e}",
        mc_p[k],
        skat_liu_pvalue(
            run.observed[k].score,
            &sets[k]
                .members
                .iter()
                .map(|&j| score_and_variance(&model.contributions(&rows[j])).1)
                .collect::<Vec<_>>()
        )
    );
    println!("virtual cluster time: {:.1}s", run.virtual_secs);
    if let Some((listener, path)) = log {
        listener.flush().expect("flush event log");
        println!("event log: {}", path.display());
    }
}
