//! Sequencing-style analysis from a VCF: parse variant calls, build
//! SNP-sets from gene annotation by positional containment (the paper's
//! §II representation — SNPs as `(chr, pos)`, genes as `(chr, start,
//! end)`), apply QC filters, and run the distributed SKAT analysis.
//!
//! Run with: `cargo run --release --example vcf_gene_analysis`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, Phenotype, SparkScoreContext};
use sparkscore_data::regions::{snp_sets_from_genes, GeneRegion, SnpLocus};
use sparkscore_data::vcf::{parse_vcf, to_analysis_inputs, write_vcf};
use sparkscore_data::SnpRow;
use sparkscore_rdd::Engine;
use sparkscore_stats::qc::{check_snp, QcThresholds};
use sparkscore_stats::score::Survival;

fn main() {
    // ---- Fabricate a small sequencing study as a VCF ----
    let mut rng = StdRng::seed_from_u64(314);
    let n = 120usize;
    let m = 60usize;
    let samples: Vec<String> = (0..n).map(|i| format!("P{i:03}")).collect();
    // Variants spread over two chromosomes, 1 kb apart.
    let loci: Vec<SnpLocus> = (0..m)
        .map(|i| SnpLocus {
            index: i,
            chromosome: if i < m / 2 { 1 } else { 2 },
            position: 10_000 + 1_000 * (i as u64 % (m as u64 / 2)),
        })
        .collect();
    let rows: Vec<SnpRow> = (0..m)
        .map(|i| {
            let maf = rng.gen_range(0.08..0.45);
            SnpRow {
                id: i as u64,
                dosages: (0..n)
                    .map(|_| sparkscore_stats::dist::sample_genotype(&mut rng, maf))
                    .collect(),
            }
        })
        .collect();
    let vcf_text = write_vcf(&samples, &rows, &loci);
    println!(
        "VCF: {} bytes, {} samples, {} variants",
        vcf_text.len(),
        n,
        m
    );

    // ---- Parse it back (as a real pipeline would receive it) ----
    let vcf = parse_vcf(&vcf_text).expect("well-formed VCF");
    let (mut rows, loci) = to_analysis_inputs(&vcf);

    // ---- QC: drop monomorphic/rare/HWE-failing variants ----
    let thresholds = QcThresholds::default();
    let kept: Vec<bool> = rows
        .iter()
        .map(|r| check_snp(&r.dosages, &thresholds).is_ok())
        .collect();
    let dropped = kept.iter().filter(|&&k| !k).count();
    println!("QC: {dropped} of {m} variants filtered");
    // Zero out dropped variants' weights rather than reindexing.
    let weights: Vec<(u64, f64)> = kept
        .iter()
        .enumerate()
        .map(|(j, &keep)| (j as u64, if keep { 1.0 } else { 0.0 }))
        .collect();

    // ---- Gene annotation → SNP-sets by containment ----
    let genes = vec![
        GeneRegion::new(0, "GENE1", 1, 10_000, 19_000),
        GeneRegion::new(1, "GENE2", 1, 20_000, 39_000),
        GeneRegion::new(2, "GENE3", 2, 10_000, 24_000),
        GeneRegion::new(3, "GENE4", 2, 25_000, 39_000),
    ];
    let sets = snp_sets_from_genes(&loci, &genes);
    for (g, s) in genes.iter().zip(&sets) {
        println!("{}: {} variants", g.name, s.len());
    }

    // ---- Phenotype: survival driven by a variant inside GENE3 ----
    let causal = sets[2].members[1];
    let phenotypes: Vec<Survival> = (0..n)
        .map(|i| {
            let hazard = 2.5f64.powi(i32::from(rows[causal].dosages[i]));
            Survival {
                time: sparkscore_stats::dist::sample_exponential(&mut rng, hazard / 12.0),
                event: rng.gen::<f64>() < 0.85,
            }
        })
        .collect();
    rows.truncate(m); // (no-op; emphasizes rows are final here)

    // ---- Distributed analysis ----
    let engine = Engine::builder(ClusterSpec::m3_2xlarge(4)).build();
    let gm = engine.parallelize(
        rows.iter()
            .map(|r| (r.id, r.dosages.clone()))
            .collect::<Vec<_>>(),
        8,
    );
    let weights_rdd = engine.parallelize(weights, 2);
    let ctx = SparkScoreContext::from_parts(
        Arc::clone(&engine),
        Phenotype::Survival(phenotypes),
        gm,
        weights_rdd,
        &sets,
        AnalysisOptions::default(),
    );
    let run = ctx.monte_carlo(299, 9, true);

    println!("\ngene-level results (B = {}):", run.num_replicates);
    let pvalues = run.pvalues();
    for ((score, p), gene) in run.observed.iter().zip(&pvalues).zip(&genes) {
        let marker = if gene.id == 2 {
            "  <-- harbors causal variant"
        } else {
            ""
        };
        println!(
            "  {}: SKAT = {:>9.2}, p = {:.3}{marker}",
            gene.name, score.score, p
        );
    }
    assert_eq!(run.top_sets(1)[0].0, 2, "GENE3 must rank first");
    println!(
        "\ndetected GENE3; virtual cluster time {:.1}s",
        run.virtual_secs
    );
    println!("{}", sparkscore_obs::live_digest(&engine.memory_snapshot()));
}
