//! job_service — the always-on multi-tenant analysis service: three
//! tenants submitting gene queries against one shared cohort, with the
//! full ops surface (queue/tenants tables, metrics, tenant-attributed
//! flight recorder) scrapeable while it runs.
//!
//! Run with: `cargo run --release -p sparkscore-core --example job_service -- [seconds]`
//!
//! Prints `ops endpoint listening on 127.0.0.1:<port>`, then serves gene
//! queries until the deadline. While it runs, scrape it from another
//! shell — plain `nc` works, and so does bash's `/dev/tcp`:
//!
//! ```text
//! exec 3<>/dev/tcp/127.0.0.1/<port>; echo queue >&3; cat <&3
//! exec 3<>/dev/tcp/127.0.0.1/<port>; echo tenants >&3; cat <&3
//! exec 3<>/dev/tcp/127.0.0.1/<port>; echo metrics >&3; cat <&3
//! exec 3<>/dev/tcp/127.0.0.1/<port>; echo trace >&3; cat <&3 > dump.jsonl
//! cargo run -p sparkscore-obs --bin trace -- report --json dump.jsonl
//! ```
//!
//! All tenants share the cohort's single cached `U` contributions
//! dataset: the first query materializes it, every later query — any
//! tenant, any gene — hits the block cache, and the final metrics line
//! shows the cross-job hit count.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, AnalysisService, SparkScoreContext};
use sparkscore_data::{GwasDataset, SyntheticConfig};
use sparkscore_obs::OpsServer;
use sparkscore_rdd::{
    Engine, EventListener, FlightRecorder, JobService, Registry, RegistryListener, ShutdownMode,
    TenantConfig,
};

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let registry = Arc::new(Registry::new());
    let recorder = Arc::new(FlightRecorder::with_capacity(256, 16));
    let engine = Engine::builder(ClusterSpec::test_small(4))
        .listener(
            Arc::new(RegistryListener::with_registry(Arc::clone(&registry)))
                as Arc<dyn EventListener>,
        )
        .listener(Arc::clone(&recorder) as Arc<dyn EventListener>)
        .build();

    // Three tenants with different shares: "genomics-lab" gets twice the
    // throughput of the others when everyone is backlogged.
    let quota = |weight| TenantConfig {
        max_queued: 32,
        max_running: 1,
        weight,
    };
    let service = JobService::builder(Arc::clone(&engine))
        .workers(2)
        .queue_capacity(64)
        .tenant("genomics-lab", quota(2))
        .tenant("biobank", quota(1))
        .tenant("clinic", quota(1))
        .registry(Arc::clone(&registry))
        .build();

    let server = OpsServer::builder()
        .registry(registry)
        .recorder(recorder)
        .service(Arc::clone(&service))
        .memory(Arc::clone(engine.memory_ledger()))
        .start()
        .expect("bind ops endpoint");
    println!("ops endpoint listening on {}", server.local_addr());
    // The smoke scraper parses that line for the port; don't leave it
    // sitting in a pipe buffer.
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    // One shared cohort; every tenant's queries reuse its cached U.
    let mut config = SyntheticConfig::small(42);
    config.patients = 120;
    config.snps = 300;
    config.snp_sets = 12;
    let dataset = GwasDataset::generate(&config);
    let ctx = SparkScoreContext::from_memory(
        Arc::clone(&engine),
        &dataset,
        8,
        AnalysisOptions::default(),
    );
    let analysis = AnalysisService::new(Arc::clone(&service));
    analysis.register_cohort("ukb-synthetic", ctx);

    let tenants = ["genomics-lab", "biobank", "clinic"];
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut submitted = 0u64;
    let mut answered = 0u64;
    while Instant::now() < deadline {
        // A burst of queries round-robined over tenants and genes, then
        // wait for the answers so the queue breathes (and rejections
        // from the bounded queue stay visible in the `queue` counters).
        let jobs: Vec<u64> = (0..6)
            .filter_map(|i| {
                let tenant = tenants[(submitted as usize + i) % tenants.len()];
                let set = (submitted + i as u64) % 12;
                analysis.submit_set_query(tenant, "ukb-synthetic", set).ok()
            })
            .collect();
        submitted += 6;
        for job in jobs {
            if analysis.wait_result(job).is_some() {
                answered += 1;
            }
        }
    }

    service.shutdown(ShutdownMode::Drain);
    let m = engine.metrics_snapshot();
    println!(
        "\nanswered {answered} of {submitted} queries; cache hits {} misses {} (shared U reuse)",
        m.cache_hits, m.cache_misses
    );
    server.stop();
}
