//! A full GWAS survival screen with a planted association — the paper's
//! motivating scenario: time-to-death phenotypes with censoring, Cox
//! efficient scores, SKAT SNP-set statistics, and both resampling schemes
//! compared, plus Westfall–Young family-wise adjusted p-values.
//!
//! Inputs go through the full distributed path: serialized to the DFS as
//! text files (Algorithm 1 step 1, "Read input files from HDFS") and
//! parsed inside map tasks.
//!
//! Run with: `cargo run --release --example gwas_survival`

use std::sync::Arc;

use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, SparkScoreContext};
use sparkscore_data::{write_dataset_to_dfs, GwasDataset, SyntheticConfig};
use sparkscore_rdd::Engine;
use sparkscore_stats::pvalue::westfall_young_adjusted;
use sparkscore_stats::resample::mc_weights;
use sparkscore_stats::score::{CoxScore, ScoreModel};
use sparkscore_stats::skat_all;

fn main() {
    let engine = Engine::builder(ClusterSpec::m3_2xlarge(6))
        .dfs_block_size(64 * 1024)
        .build();

    // Cohort with a planted hazard signal: carriers of SNP 7's minor
    // allele die 2.5× faster per allele copy.
    let mut config = SyntheticConfig::small(2024);
    config.patients = 250;
    config.snps = 400;
    config.snp_sets = 20;
    let mut dataset = GwasDataset::generate(&config);
    dataset.plant_survival_signal(7, 2.5);
    let causal_set = dataset
        .sets
        .iter()
        .find(|s| s.members.contains(&7))
        .expect("SNP 7 is in some set")
        .id;
    println!("planted: SNP 7 (hazard ratio 2.5/allele) in SNP-set {causal_set}");

    // Ship the inputs to the DFS and analyze from there.
    let (paths, _) = write_dataset_to_dfs(engine.dfs(), "/gwas", &dataset).expect("fresh DFS");
    println!("DFS inputs: {}", engine.dfs().list_files().join(", "));
    let ctx = SparkScoreContext::from_dfs(Arc::clone(&engine), &paths, AnalysisOptions::default())
        .expect("inputs written above");

    // Monte Carlo (Algorithm 3) and permutation (Algorithm 2), B = 199.
    let mc = ctx.monte_carlo(199, 11, true);
    let perm = ctx.permutation(199, 12);

    println!("\nset   SKAT          p(MC)   p(perm)");
    let mc_p = mc.pvalues();
    let perm_p = perm.pvalues();
    let mut order: Vec<usize> = (0..mc.observed.len()).collect();
    order.sort_by(|&a, &b| mc_p[a].partial_cmp(&mc_p[b]).expect("no NaN p-values"));
    for &k in order.iter().take(6) {
        let s = &mc.observed[k];
        let marker = if s.set == causal_set {
            "  <-- planted"
        } else {
            ""
        };
        println!(
            "{:>3}   {:>10.2}    {:.3}   {:.3}{marker}",
            s.set, s.score, mc_p[k], perm_p[k]
        );
    }

    // Family-wise adjustment: rebuild the MC replicate matrix with the
    // sequential reference (same statistics) and apply Westfall–Young.
    let model = CoxScore::new(&dataset.phenotypes);
    let rows = dataset.genotype_rows();
    let contribs: Vec<Vec<f64>> = rows.iter().map(|g| model.contributions(g)).collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let replicates: Vec<Vec<f64>> = (0..199)
        .map(|_| {
            let z = mc_weights(&mut rng, dataset.phenotypes.len());
            let scores: Vec<f64> = contribs
                .iter()
                .map(|c| c.iter().zip(&z).map(|(u, zi)| u * zi).sum())
                .collect();
            skat_all(&scores, &dataset.weights, &dataset.sets)
        })
        .collect();
    let observed: Vec<f64> = mc.observed.iter().map(|s| s.score).collect();
    let adjusted = westfall_young_adjusted(&observed, &replicates);
    let k_causal = mc
        .observed
        .iter()
        .position(|s| s.set == causal_set)
        .expect("causal set present");
    println!(
        "\nplanted set {causal_set}: marginal p = {:.3}, Westfall–Young adjusted p = {:.3}",
        mc_p[k_causal], adjusted[k_causal]
    );
    println!(
        "verdict: {}",
        if adjusted[k_causal] <= 0.05 {
            "association detected after family-wise correction"
        } else {
            "not significant after correction (increase B or effect size)"
        }
    );

    println!(
        "\nvirtual cluster time: MC {:.1}s vs permutation {:.1}s ({}x)",
        mc.virtual_secs,
        perm.virtual_secs,
        (perm.virtual_secs / mc.virtual_secs).round()
    );
}
