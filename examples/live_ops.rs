//! live_ops — the full live observability plane on a continuously running
//! engine: flight recorder, live gauges, pool profiler, and the line-based
//! ops endpoint.
//!
//! Run with: `cargo run --release -p sparkscore-core --example live_ops -- [seconds]`
//!
//! Prints `ops endpoint listening on 127.0.0.1:<port>`, then runs repeated
//! Monte Carlo scoring rounds until the deadline. While it runs, scrape it
//! from another shell — plain `nc` works, and so does bash's `/dev/tcp`
//! where `nc` is missing:
//!
//! ```text
//! exec 3<>/dev/tcp/127.0.0.1/<port>; echo jobs >&3; cat <&3
//! exec 3<>/dev/tcp/127.0.0.1/<port>; echo metrics >&3; cat <&3
//! exec 3<>/dev/tcp/127.0.0.1/<port>; echo memory >&3; cat <&3
//! exec 3<>/dev/tcp/127.0.0.1/<port>; echo trace >&3; cat <&3 > dump.jsonl
//! cargo run -p sparkscore-obs --bin trace -- report dump.jsonl
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, SparkScoreContext};
use sparkscore_data::{GwasDataset, SyntheticConfig};
use sparkscore_obs::OpsServer;
use sparkscore_rdd::{
    Engine, EventListener, FlightRecorder, PoolProfiler, Registry, RegistryListener,
};

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    // The three live data sources: a shared registry fed by the event bus,
    // the always-on flight recorder, and the sampling pool profiler.
    let registry = Arc::new(Registry::new());
    let recorder = Arc::new(FlightRecorder::new());
    let engine = Engine::builder(ClusterSpec::test_small(4))
        .listener(
            Arc::new(RegistryListener::with_registry(Arc::clone(&registry)))
                as Arc<dyn EventListener>,
        )
        .listener(Arc::clone(&recorder) as Arc<dyn EventListener>)
        .build();
    let profiler = Arc::new(
        PoolProfiler::builder(&engine)
            .interval(Duration::from_millis(5))
            .registry(Arc::clone(&registry))
            .recorder(Arc::clone(&recorder))
            .start(),
    );
    let server = OpsServer::builder()
        .registry(registry)
        .recorder(recorder)
        .profiler(Arc::clone(&profiler))
        .memory(Arc::clone(engine.memory_ledger()))
        .start()
        .expect("bind ops endpoint");
    println!("ops endpoint listening on {}", server.local_addr());
    // The smoke scraper parses that line for the port; don't leave it
    // sitting in a pipe buffer.
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    // A small synthetic cohort so individual rounds are quick and several
    // jobs cycle through the recorder while a scraper watches.
    let mut config = SyntheticConfig::small(42);
    config.patients = 120;
    config.snps = 300;
    config.snp_sets = 12;
    let dataset = GwasDataset::generate(&config);
    let ctx = SparkScoreContext::from_memory(
        Arc::clone(&engine),
        &dataset,
        8,
        AnalysisOptions::default(),
    );

    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut rounds = 0u64;
    while Instant::now() < deadline {
        let run = ctx.monte_carlo(19, rounds, true);
        rounds += 1;
        println!(
            "round {rounds}: {} replicates, {:.2} s virtual",
            run.num_replicates, run.virtual_secs
        );
    }

    println!("\nran {rounds} scoring round(s); final pool profile:");
    print!("{}", profiler.report());
    profiler.stop();
    server.stop();
}
