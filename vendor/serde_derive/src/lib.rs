//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` stand-in's value-tree traits, for the shapes the
//! workspace actually derives on: non-generic structs with named fields.
//! The input is parsed directly from the token stream (no `syn`/`quote`,
//! which are equally unreachable offline); anything fancier than a plain
//! named-field struct is rejected with a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Parse `struct Name { a: T, b: U, ... }` out of a derive input stream,
/// skipping attributes and visibility modifiers.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(...)`).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => {
            return Err(format!(
                "vendored serde_derive supports only structs with named fields, found {other:?}"
            ))
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "vendored serde_derive does not support generic struct `{name}`"
                ))
            }
            Some(_) => continue,
            None => {
                return Err(format!(
                    "struct `{name}` has no named-field body (tuple/unit structs unsupported)"
                ))
            }
        }
    };
    // Parse `attrs? vis? name : type ,` items inside the brace group.
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        match toks.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next();
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        let fname = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name in `{name}`, found {other:?}")),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}.{fname}`, found {other:?}"
                ))
            }
        }
        // Consume the type: everything up to a top-level comma. Nested
        // groups arrive as single token trees, but generic angle brackets
        // are punctuation, so track their depth.
        let mut angle_depth = 0i32;
        for tok in toks.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(fname);
    }
    if fields.is_empty() {
        return Err(format!("struct `{name}` has no fields to serialize"));
    }
    Ok(StructShape { name, fields })
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let pairs: String = shape
        .fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{pairs}])\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let name = &shape.name;
    let fields: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(v.get({f:?}).ok_or_else(|| \
                     ::serde::Error::new(concat!(\"missing field `\", {f:?}, \"` in {name}\")))?)?,",
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {fields} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
