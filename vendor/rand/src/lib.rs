//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of `rand` it uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12-based `StdRng`, so code that
//! asserted exact draw sequences would observe different (still
//! deterministic and well-distributed) values. The workspace's tests
//! assert statistical properties, not exact streams.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible "from the standard distribution" (`rng.gen::<T>()`).
/// Floats are uniform in `[0, 1)`; integers uniform over the full range.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing generator methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u8..7);
            assert!((3..7).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn standard_float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements almost surely move");
    }
}
