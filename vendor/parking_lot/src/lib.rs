//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it actually uses: `Mutex` and
//! `RwLock` with non-poisoning guards. Locks are backed by `std::sync`;
//! a poisoned lock (a panic while held) is recovered rather than
//! propagated, matching `parking_lot`'s no-poisoning semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized>(StdRwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdRwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.inner.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
