//! The generic JSON-shaped value tree shared by the vendored `serde` and
//! `serde_json` stand-ins.
//!
//! Objects preserve insertion order (a `Vec` of pairs rather than a map):
//! event-log lines stay humanly diffable and round-trip byte-for-byte.

/// A JSON number. Integers and floats are kept distinct so 64-bit counters
/// (task counts, byte counts, virtual nanoseconds) survive a round trip
/// without floating-point truncation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    Int(i128),
    Float(f64),
}

/// A JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            // Accept floats that are exactly integral: a parser or producer
            // may have widened an integer.
            Value::Number(Number::Float(f)) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => {
                Some(*f as i128)
            }
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|i| u64::try_from(i).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

// Scalars convert both by value and behind a shared reference (`&u32`
// from iterator adapters, etc.); a blanket `From<&T>` would conflict with
// `From<&String>` under coherence, so the reference impls are spelled out
// per type here.
macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i128))
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::from(*v)
            }
        }
    )*};
}
impl_value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::from(*v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<&f32> for Value {
    fn from(v: &f32) -> Value {
        Value::from(*v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

// Covers `Vec<Value>` too, via the reflexive `From<Value> for Value`.
impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl<T, const N: usize> From<[T; N]> for Value
where
    Value: From<T>,
{
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(t) => Value::from(t),
            None => Value::Null,
        }
    }
}

/// Escape a string into JSON text form (with surrounding quotes).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match n {
        Number::Int(i) => out.push_str(&i.to_string()),
        Number::Float(f) if f.is_finite() => {
            let text = format!("{f}");
            out.push_str(&text);
            // Keep floats recognizably floats in the text form.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Infinity; mirror JavaScript's JSON.stringify.
        Number::Float(_) => out.push_str("null"),
    }
}

/// Append compact JSON text for `v` to `out`.
pub fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// `Display` prints compact JSON — `format!("{value}")` produces one
/// machine-readable line. (The pretty printer lives in `serde_json`.)
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_get_and_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::from(1u64)),
            ("b".into(), Value::from("x")),
        ]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert!(v.get("c").is_none());
    }

    #[test]
    fn integral_float_coerces_to_int() {
        assert_eq!(Value::Number(Number::Float(7.0)).as_i128(), Some(7));
        assert_eq!(Value::Number(Number::Float(7.5)).as_i128(), None);
    }

    #[test]
    fn u64_counter_survives_exactly() {
        let big = u64::MAX - 3;
        assert_eq!(Value::from(big).as_u64(), Some(big));
    }
}
