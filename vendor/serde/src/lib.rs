//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! value-tree serialization framework under serde's names: a [`Serialize`]
//! trait lowering to [`Value`], a [`Deserialize`] trait raising from it,
//! and `#[derive(Serialize, Deserialize)]` for structs with named fields
//! (from the sibling `serde_derive` stand-in). The JSON text layer lives in
//! the vendored `serde_json`, which re-exports [`Value`].
//!
//! This is intentionally the *value-tree* design (serialize to a generic
//! tree, then print) rather than upstream serde's zero-copy visitor
//! design: the workspace serializes small config structs, metrics
//! snapshots, and engine events, where tree cost is irrelevant and the
//! simple design keeps the vendored surface auditable.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Error raised when a [`Value`] cannot be raised into a typed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Lower a value into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Raise a typed value from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and common containers.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i128))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i128().ok_or_else(|| {
                    Error::new(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::new(format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

/// `&'static str` deserializes by leaking the owned string: the workspace
/// only deserializes such fields from a handful of config documents per
/// process, so the leak is bounded and intentional (upstream serde cannot
/// express this at all for `'static`).
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn out_of_range_integer_rejected() {
        let v = Value::Number(Number::Int(300));
        assert!(u8::from_value(&v).is_err());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(bool::from_value(&Value::String("no".into())).is_err());
        assert!(String::from_value(&Value::Bool(false)).is_err());
    }
}
