//! Value-generation strategies.
//!
//! A [`Strategy`] produces one value per case from the deterministic case
//! RNG. Ranges, tuples, string patterns, and `any::<T>()` are covered;
//! `collection::vec` lives in [`crate::collection`].

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// Generates one value per test case.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_std!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// String patterns: `"[a-z]{0,20}"`-style character-class generators.
// ---------------------------------------------------------------------------

enum PatternPiece {
    /// (candidate characters, min repeats, max repeats)
    Class(Vec<char>, usize, usize),
    Literal(char),
}

fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let piece = if c == '[' {
            let mut candidates = Vec::new();
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some(lo) => {
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars
                                .next()
                                .unwrap_or_else(|| panic!("bad class in pattern {pattern:?}"));
                            assert!(hi != ']', "bad range in pattern {pattern:?}");
                            for v in lo as u32..=hi as u32 {
                                candidates.extend(char::from_u32(v));
                            }
                        } else {
                            candidates.push(lo);
                        }
                    }
                    None => panic!("unterminated class in pattern {pattern:?}"),
                }
            }
            assert!(!candidates.is_empty(), "empty class in pattern {pattern:?}");
            // Optional {m}, {m,n} repetition.
            if chars.peek() == Some(&'{') {
                chars.next();
                let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition min"),
                        n.trim().parse().expect("bad repetition max"),
                    ),
                    None => {
                        let m: usize = body.trim().parse().expect("bad repetition count");
                        (m, m)
                    }
                };
                assert!(min <= max, "inverted repetition in pattern {pattern:?}");
                PatternPiece::Class(candidates, min, max)
            } else {
                PatternPiece::Class(candidates, 1, 1)
            }
        } else {
            assert!(
                !"{}()*+?|\\.^$".contains(c),
                "vendored proptest supports only [class]{{m,n}} patterns, got {pattern:?}"
            );
            PatternPiece::Literal(c)
        };
        pieces.push(piece);
    }
    pieces
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            match piece {
                PatternPiece::Literal(c) => out.push(c),
                PatternPiece::Class(candidates, min, max) => {
                    let n = rng.gen_range(min..=max);
                    for _ in 0..n {
                        out.push(candidates[rng.gen_range(0..candidates.len())]);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_with_literals_and_class() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = "snp[0-9]{2,4}".generate(&mut rng);
            assert!(s.starts_with("snp"));
            let digits = &s[3..];
            assert!((2..=4).contains(&digits.len()));
            assert!(digits.bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn empty_repetition_allowed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_empty = false;
        for _ in 0..200 {
            let s = "[a-z]{0,2}".generate(&mut rng);
            assert!(s.len() <= 2);
            saw_empty |= s.is_empty();
        }
        assert!(saw_empty, "min bound 0 must be reachable");
    }
}
