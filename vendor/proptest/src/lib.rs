//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro over strategies
//! built from ranges, tuples, `any::<T>()`, simple string patterns, and
//! [`collection::vec`]. Cases are generated from a deterministic
//! per-function RNG; a failing case panics with the seed's case index.
//!
//! Deliberate simplifications versus upstream: no shrinking (a failure
//! reports the failing inputs via the assertion message instead), no
//! persisted failure seeds, and string strategies support character-class
//! patterns like `"[a-z]{0,20}"` rather than full regexes.

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, Strategy};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property function.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps offline CI fast while still
        // exercising the size/value space of every strategy in this repo.
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    pub use crate::ProptestConfig as Config;
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-(function, case) generator: every run of the test
    /// suite sees the same inputs, in the spirit of a fixed failure file.
    pub fn case_rng(fn_name: &str, case: u32) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in fn_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x5bf0_3635)
    }
}

/// Define property-test functions: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__rt::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                // The body's prop_assert! panics carry the case number via
                // this closure's panic payload context.
                let __run = || $body;
                __run();
            }
        }
    )*};
}

/// Assert within a property body (maps to `assert!`; no shrink pass).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples(x in 1u32..10, (a, b) in (0u8..4, -2.0f64..2.0)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((-2.0..2.0).contains(&b));
        }

        #[test]
        fn vectors_and_any(v in collection::vec(0u64..100, 3..=7), flag in any::<bool>()) {
            prop_assert!((3..=7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
            let _ = flag;
        }

        #[test]
        fn string_patterns(s in "[a-z]{1,10}") {
            prop_assert!((1..=10).contains(&s.len()));
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| Strategy::generate(&(0u64..1000), &mut crate::__rt::case_rng("x", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| Strategy::generate(&(0u64..1000), &mut crate::__rt::case_rng("x", c)))
            .collect();
        assert_eq!(a, b);
    }
}
