//! Collection strategies: [`vec`].

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy: length drawn from `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nested_vec_strategies() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = vec(vec(0.0f64..10.0, 3..=3), 1..40);
        for _ in 0..50 {
            let rows = strat.generate(&mut rng);
            assert!((1..40).contains(&rows.len()));
            assert!(rows.iter().all(|r| r.len() == 3));
        }
    }
}
