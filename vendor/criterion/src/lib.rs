//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the benchmark-harness surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (with `sample_size` / `warm_up_time` /
//! `measurement_time`), [`Bencher::iter`] / [`Bencher::iter_custom`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Deliberate simplifications versus upstream: no statistical analysis,
//! HTML reports, or outlier detection. Each benchmark runs one warm-up
//! sample and then up to `sample_size` measured samples (bounded by the
//! group's `measurement_time` budget), and a `min / median / max` line is
//! printed per benchmark.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` if they prefer it
/// over `std::hint::black_box`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { label: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f` with the wall clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Let the closure measure its own duration for `iters` iterations —
    /// the hook the virtual-time benches use to report simulated seconds.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// Top-level harness state; mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    /// Upstream parses CLI flags here; the stand-in accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// A named set of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measurement_time = budget;
        self
    }

    /// Warm-up is a single untimed sample regardless of the requested
    /// duration; the requested value is accepted for API compatibility.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.run_samples(&mut f);
        self.report(&id.label, &samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let samples = self.run_samples(&mut |b: &mut Bencher| f(b, input));
        self.report(&id.label, &samples);
        self
    }

    pub fn finish(self) {}

    fn run_samples<F: FnMut(&mut Bencher)>(&self, f: &mut F) -> Vec<Duration> {
        // One untimed warm-up sample.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);

        let started = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
        samples
    }

    fn report(&self, label: &str, samples: &[Duration]) {
        let mut sorted = samples.to_vec();
        sorted.sort();
        let min = sorted.first().copied().unwrap_or_default();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let max = sorted.last().copied().unwrap_or_default();
        let full = if self.name.is_empty() {
            label.to_string()
        } else {
            format!("{}/{}", self.name, label)
        };
        println!(
            "bench {full:<48} samples={} min={min:?} median={median:?} max={max:?}",
            sorted.len()
        );
    }
}

/// Accepted for API compatibility; the stand-in reports wall time only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Declare a group of benchmark functions, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` running each declared group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(200));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * x
            })
        });
        group.finish();
        // 1 warm-up + up to 3 measured samples, 1 iteration each.
        assert!((2..=4).contains(&calls));
    }

    #[test]
    fn iter_custom_reports_caller_duration() {
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter_custom(|n| Duration::from_nanos(n * 10));
        assert_eq!(b.elapsed, Duration::from_nanos(50));
    }
}
