//! Recursive-descent JSON parser producing [`Value`] trees.
//!
//! Integers parse to `Number::Int`, anything with a fraction or exponent
//! to `Number::Float`, preserving 64-bit counters exactly. String escapes
//! cover the JSON set including `\uXXXX` (with surrogate pairs).

use serde::value::{Number, Value};

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse one complete JSON document (trailing whitespace allowed).
pub fn from_str_value(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.error("empty"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|_| self.error(format!("invalid float '{text}'")))
        } else {
            text.parse::<i128>()
                .map(|i| Value::Number(Number::Int(i)))
                .map_err(|_| self.error(format!("invalid integer '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(from_str_value("null").unwrap(), Value::Null);
        assert_eq!(from_str_value("true").unwrap(), Value::Bool(true));
        assert_eq!(
            from_str_value("-17").unwrap(),
            Value::Number(Number::Int(-17))
        );
        assert_eq!(
            from_str_value("2.5e3").unwrap(),
            Value::Number(Number::Float(2500.0))
        );
        assert_eq!(
            from_str_value("\"a\\nb\"").unwrap(),
            Value::String("a\nb".into())
        );
    }

    #[test]
    fn nested_structures() {
        let v = from_str_value(r#" {"a": [1, {"b": null}], "c": "d"} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            from_str_value(r#""é😀""#).unwrap(),
            Value::String("é😀".into())
        );
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(from_str_value("{\"a\": }").is_err());
        assert!(from_str_value("[1, 2").is_err());
        assert!(from_str_value("12 34").is_err());
        assert!(from_str_value("").is_err());
    }
}
