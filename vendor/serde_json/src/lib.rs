//! Offline stand-in for `serde_json`: the JSON text layer over the
//! vendored `serde` value tree.
//!
//! Provides what the workspace uses: the [`json!`] macro, [`to_string`] /
//! [`to_string_pretty`] / [`to_writer`], [`from_str`] / [`from_value`] /
//! [`to_value`], and [`Value`] with a `Display` impl printing compact
//! JSON. Numbers distinguish integers from floats so 64-bit counters
//! round-trip exactly (see `serde::value`).

mod parse;

pub use parse::{from_str_value, ParseError};
pub use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};

/// Errors from this crate: JSON text errors or typed-raise errors.
#[derive(Debug)]
pub enum Error {
    Parse(ParseError),
    Raise(serde::Error),
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Raise(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::Raise(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Lower any `Serialize` into a [`Value`].
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Raise a typed value out of a [`Value`].
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize to indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Serialize compact JSON text into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    Ok(write!(writer, "{}", value.to_value())?)
}

/// Parse JSON text and raise it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    Ok(T::from_value(&from_str_value(text)?)?)
}

use serde::value::{write_compact, write_escaped};

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// `Value`'s compact-JSON `Display` impl lives with the type in
// `serde::value` (orphan rule); the pretty printer above is the only
// text-layer piece unique to this crate.

/// Build a [`Value`] from JSON-shaped syntax.
///
/// Supports the forms the workspace uses: object literals with string-literal
/// keys and expression values, array literals of expressions, `null`, and
/// bare expressions convertible via `Value::from`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($value)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "run",
            "iters": 17u64,
            "secs": 1.25,
            "flags": vec![Value::from(true), Value::from(false)],
            "nested": json!({"inner": 1u8}),
        });
        assert_eq!(v.get("name").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("iters").unwrap().as_u64(), Some(17));
        assert_eq!(
            v.get("nested").unwrap().get("inner").unwrap().as_u64(),
            Some(1)
        );
        let text = v.to_string();
        assert!(text.starts_with('{') && text.contains("\"iters\":17"));
    }

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "a": 1u64,
            "b": [1u8, 2u8, 3u8],
            "c": "he said \"hi\"\n",
            "d": -2.5,
            "e": json!(null),
        });
        let text = v.to_string();
        let back = from_str_value(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"x": [1u8, 2u8], "y": json!({"z": "w"})});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str_value(&pretty).unwrap(), v);
    }

    #[test]
    fn big_u64_round_trips_exactly() {
        let big = u64::MAX - 1;
        let v = json!({ "n": big });
        let back = from_str_value(&v.to_string()).unwrap();
        assert_eq!(back.get("n").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn float_stays_float_in_text() {
        let v = json!({ "f": 2.0f64 });
        assert_eq!(v.to_string(), "{\"f\":2.0}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let v = json!({ "f": f64::NAN });
        assert_eq!(v.to_string(), "{\"f\":null}");
    }
}
