//! End-to-end fault tolerance: injected faults (node death, cache loss,
//! shuffle loss) during a full SparkScore analysis must not change any
//! statistical result — only the engine's recovery counters.

use std::sync::Arc;

use sparkscore_cluster::{ClusterSpec, FaultPlan, NodeId};
use sparkscore_core::{AnalysisOptions, SparkScoreContext};
use sparkscore_data::{write_dataset_to_dfs, GwasDataset, SyntheticConfig};
use sparkscore_rdd::Engine;

fn dataset(seed: u64) -> GwasDataset {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.patients = 30;
    cfg.snps = 100;
    cfg.snp_sets = 6;
    GwasDataset::generate(&cfg)
}

fn engine(nodes: u32) -> Arc<Engine> {
    Engine::builder(ClusterSpec::test_small(nodes))
        .host_threads(2)
        .dfs_block_size(2048)
        .dfs_replication(2)
        .build()
}

fn baseline_counts(ds: &GwasDataset) -> (Vec<f64>, Vec<usize>) {
    let ctx = SparkScoreContext::from_memory(engine(3), ds, 4, AnalysisOptions::default());
    let run = ctx.monte_carlo(15, 42, true);
    (
        run.observed.iter().map(|s| s.score).collect(),
        run.counts_ge,
    )
}

fn assert_matches_baseline(run: &sparkscore_core::ResamplingRun, scores: &[f64], counts: &[usize]) {
    for (got, want) in run.observed.iter().zip(scores) {
        assert!(
            (got.score - want).abs() <= 1e-9 * (1.0 + want.abs()),
            "observed statistic changed under faults: {} vs {want}",
            got.score
        );
    }
    assert_eq!(
        run.counts_ge, counts,
        "resampling counters changed under faults"
    );
}

#[test]
fn node_death_mid_analysis_preserves_results() {
    let ds = dataset(1);
    let (scores, counts) = baseline_counts(&ds);

    let e = engine(3);
    e.set_fault_plan(FaultPlan::kill_node_after(NodeId(1), 25));
    let ctx = SparkScoreContext::from_memory(Arc::clone(&e), &ds, 4, AnalysisOptions::default());
    let run = ctx.monte_carlo(15, 42, true);
    assert_matches_baseline(&run, &scores, &counts);
    assert!(
        !e.cluster().node(NodeId(1)).is_alive(),
        "the kill must have fired"
    );
}

#[test]
fn node_death_with_dfs_inputs_recovers_from_replicas() {
    let ds = dataset(2);
    let e = engine(3);
    let (paths, _) = write_dataset_to_dfs(e.dfs(), "/gwas", &ds).unwrap();
    let ctx =
        SparkScoreContext::from_dfs(Arc::clone(&e), &paths, AnalysisOptions::default()).unwrap();
    let clean = ctx.monte_carlo(10, 7, true);

    let e2 = engine(3);
    write_dataset_to_dfs(e2.dfs(), "/gwas", &ds).unwrap();
    e2.set_fault_plan(FaultPlan::kill_node_after(NodeId(0), 30));
    let ctx2 =
        SparkScoreContext::from_dfs(Arc::clone(&e2), &paths, AnalysisOptions::default()).unwrap();
    let faulty = ctx2.monte_carlo(10, 7, true);

    assert_eq!(clean.counts_ge, faulty.counts_ge);
    for (a, b) in clean.observed.iter().zip(&faulty.observed) {
        assert!((a.score - b.score).abs() <= 1e-9 * (1.0 + b.score.abs()));
    }
}

#[test]
fn periodic_cache_loss_forces_recompute_but_not_errors() {
    let ds = dataset(3);
    let (scores, counts) = baseline_counts(&ds);

    let e = engine(3);
    e.set_fault_plan(FaultPlan::none().with_cached_block_loss_every(10));
    let ctx = SparkScoreContext::from_memory(Arc::clone(&e), &ds, 4, AnalysisOptions::default());
    let run = ctx.monte_carlo(15, 42, true);
    assert_matches_baseline(&run, &scores, &counts);
    assert!(
        run.metrics.recomputed_partitions > 0,
        "cache loss must force lineage recomputation: {:?}",
        run.metrics
    );
}

#[test]
fn periodic_shuffle_loss_reruns_map_tasks() {
    let ds = dataset(4);
    let (scores, counts) = baseline_counts(&ds);

    let e = engine(3);
    e.set_fault_plan(FaultPlan::none().with_shuffle_loss_every(7));
    let ctx = SparkScoreContext::from_memory(Arc::clone(&e), &ds, 4, AnalysisOptions::default());
    let run = ctx.monte_carlo(15, 42, true);
    assert_matches_baseline(&run, &scores, &counts);
    assert!(
        run.metrics.shuffle_map_reruns > 0,
        "shuffle loss must force map re-runs: {:?}",
        run.metrics
    );
}

#[test]
fn combined_faults_still_converge() {
    let ds = dataset(5);
    let (scores, counts) = baseline_counts(&ds);

    let e = engine(4);
    e.set_fault_plan(
        FaultPlan::kill_node_after(NodeId(2), 40)
            .with_cached_block_loss_every(9)
            .with_shuffle_loss_every(11),
    );
    let ctx = SparkScoreContext::from_memory(Arc::clone(&e), &ds, 6, AnalysisOptions::default());
    let run = ctx.monte_carlo(15, 42, true);
    assert_matches_baseline(&run, &scores, &counts);
}
