//! Service-level end-to-end harness: the always-on multi-tenant analysis
//! service driven by seeded schedules, replayed byte-reproducibly.
//!
//! The determinism protocol: one worker thread, the service started
//! paused, the whole schedule submitted up front, then resumed — so the
//! dispatch order is the pure stride schedule — and a cost model with
//! `cpu_slowdown = 0`, so virtual task durations are a pure function of
//! counted work units rather than measured host time. With both pinned,
//! the engine's event stream (virtual clock, job/stage/task ids, cache
//! traffic) is a pure function of the seed. The only wall-clock numbers
//! left in the trace report — kernel wall splits and span totals — are
//! canonicalized to zero before byte comparison; everything else must
//! match exactly across runs.

use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkscore_cluster::{ClusterSpec, CostModel, FaultPlan, NodeId};
use sparkscore_core::{AnalysisOptions, AnalysisService, QueryError, SparkScoreContext};
use sparkscore_data::{GwasDataset, SyntheticConfig};
use sparkscore_obs::{cache_roi, report_json, ExecutionTrace};
use sparkscore_rdd::events::parse_event_log;
use sparkscore_rdd::{
    Engine, EngineEvent, EventListener, EventLogListener, JobService, JobState, RejectReason,
    ShutdownMode, TenantConfig,
};

const PARTITIONS: usize = 4;
const TENANTS: usize = 8;
const QUERIES_PER_TENANT: usize = 50;

fn log_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sparkscore-service-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}.jsonl"))
}

fn cohort_dataset() -> GwasDataset {
    let mut cfg = SyntheticConfig::small(42);
    cfg.patients = 60;
    cfg.snps = 150;
    cfg.snp_sets = 10;
    GwasDataset::generate(&cfg)
}

fn tenant_name(i: usize) -> String {
    format!("tenant-{i:02}")
}

/// One full service run from a seed: 8 tenants, 50 gene queries each,
/// submitted in a seeded shuffle against a paused single-worker service,
/// then resumed and drained. Returns the completion order, the
/// canonicalized trace report, and the raw event log.
fn run_service_schedule(seed: u64, log_name: &str) -> (Vec<u64>, String, String) {
    let path = log_path(log_name);
    let log = Arc::new(EventLogListener::to_file(&path).expect("temp dir writable"));
    let engine = Engine::builder(ClusterSpec::test_small(4))
        // One host thread: which pool thread runs a task decides whose
        // scratch buffers it reuses, so parallel hosts leak scheduling
        // jitter into the scratch-reuse counters.
        .host_threads(1)
        // Virtual durations from counted work only: measured host time
        // would leak wall-clock jitter into the trace report.
        .cost_model(CostModel {
            cpu_slowdown: 0.0,
            ..CostModel::default()
        })
        .listener(Arc::clone(&log) as Arc<dyn EventListener>)
        .build();
    let mut builder = JobService::builder(Arc::clone(&engine))
        .workers(1)
        .queue_capacity(TENANTS * QUERIES_PER_TENANT)
        .start_paused();
    for i in 0..TENANTS {
        builder = builder.tenant(
            tenant_name(i),
            TenantConfig {
                max_queued: QUERIES_PER_TENANT,
                max_running: 1,
                // Uneven shares so the stride schedule is non-trivial.
                weight: 1 + (i % 3) as u64,
            },
        );
    }
    let service = builder.build();
    let analysis = AnalysisService::new(Arc::clone(&service));
    let ctx = SparkScoreContext::from_memory(
        Arc::clone(&engine),
        &cohort_dataset(),
        PARTITIONS,
        AnalysisOptions::default(),
    );
    analysis.register_cohort("ukb-synthetic", ctx);

    // Seeded schedule: each tenant gets exactly QUERIES_PER_TENANT
    // queries, interleaved by a seeded shuffle, gene sets seeded too.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut slots: Vec<usize> = (0..TENANTS)
        .flat_map(|t| std::iter::repeat_n(t, QUERIES_PER_TENANT))
        .collect();
    for i in (1..slots.len()).rev() {
        slots.swap(i, rng.gen_range(0..=i));
    }
    let jobs: Vec<u64> = slots
        .iter()
        .map(|&t| {
            let set = rng.gen_range(0u64..10);
            analysis
                .submit_set_query(&tenant_name(t), "ukb-synthetic", set)
                .expect("schedule fits the queue bounds")
        })
        .collect();
    service.resume();
    service.drain();

    // Quota conservation at the drain point: everything submitted is
    // terminal, nothing queued or running, per-tenant stats add up.
    let status = service.queue_status();
    assert_eq!(status.queued, 0);
    assert_eq!(status.running, 0);
    assert_eq!(status.stats.submitted, jobs.len() as u64);
    assert_eq!(status.stats.rejected, 0);
    assert_eq!(
        status.stats.dispatched,
        status.stats.completed + status.stats.failed
    );
    assert_eq!(
        status.stats.submitted,
        status.stats.dispatched + status.stats.cancelled
    );
    assert_eq!(status.stats.failed, 0, "every query must succeed");
    let tenants = service.tenants();
    assert_eq!(tenants.len(), TENANTS);
    for t in &tenants {
        assert_eq!(t.stats.submitted, QUERIES_PER_TENANT as u64, "{}", t.name);
        assert_eq!(t.stats.completed, QUERIES_PER_TENANT as u64, "{}", t.name);
        assert_eq!(t.queued, 0);
        assert_eq!(t.running, 0);
    }
    assert_eq!(
        tenants.iter().map(|t| t.stats.completed).sum::<u64>(),
        status.stats.completed
    );
    for &job in &jobs {
        assert_eq!(service.job_state(job), Some(JobState::Completed));
    }

    let order = service.completion_order();
    service.shutdown(ShutdownMode::Drain);
    log.flush().expect("flush event log");
    let text = std::fs::read_to_string(&path).expect("log written");
    let trace = ExecutionTrace::parse(&text).expect("parse own log");
    (order, canonical_report(&trace), text)
}

/// Render the trace report as JSON with the wall-clock-dependent fields
/// zeroed: kernel wall splits and span totals are host-time measurements
/// and legitimately vary run to run; everything else must not.
fn canonical_report(trace: &ExecutionTrace) -> String {
    use serde_json::Value;

    fn field_mut<'a>(v: &'a mut Value, key: &str) -> Option<&'a mut Value> {
        match v {
            Value::Object(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    let mut v = report_json(trace);
    if let Some(kernels) = field_mut(&mut v, "kernels") {
        for key in ["kernel_task_wall_ns", "total_task_wall_ns"] {
            if let Some(f) = field_mut(kernels, key) {
                *f = Value::from(0u64);
            }
        }
    }
    if let Some(Value::Array(spans)) = field_mut(&mut v, "spans") {
        for s in spans {
            if let Some(f) = field_mut(s, "total_ns") {
                *f = Value::from(0u64);
            }
        }
    }
    v.to_string()
}

#[test]
fn seeded_service_runs_replay_byte_reproducibly() {
    let (order_a, report_a, text_a) = run_service_schedule(1234, "replay_a");
    let (order_b, report_b, _) = run_service_schedule(1234, "replay_b");
    assert_eq!(
        order_a, order_b,
        "same seed must replay the same completion order"
    );
    assert_eq!(
        report_a, report_b,
        "same seed must replay to an identical canonical trace report"
    );
    let (order_c, _, _) = run_service_schedule(4321, "replay_c");
    assert_ne!(order_a, order_c, "a different seed reshuffles the schedule");

    // The shared cached U: materialized exactly once (one CacheAdmitted
    // per partition), every later query — 399 of them — hits it.
    let mut admitted = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for event in parse_event_log(&text_a).expect("parse raw events") {
        match event {
            EngineEvent::CacheAdmitted { .. } => admitted += 1,
            EngineEvent::TaskEnd { metrics, .. } => {
                hits += metrics.cache_hits;
                misses += metrics.cache_misses;
            }
            _ => {}
        }
    }
    assert_eq!(
        admitted, PARTITIONS as u64,
        "U must be materialized exactly once"
    );
    assert_eq!(misses, PARTITIONS as u64);
    assert_eq!(
        hits,
        ((TENANTS * QUERIES_PER_TENANT - 1) * PARTITIONS) as u64,
        "every query after the first reads U from the cache"
    );
    let trace = ExecutionTrace::parse(&text_a).unwrap();
    let roi = cache_roi(&trace);
    assert!(roi.hits > 0, "cross-job cache ROI must be visible: {roi:?}");
    assert!(roi.est_saved_ns > 0, "{roi:?}");
}

#[test]
fn admission_control_rejects_with_exact_reasons_at_the_service_api() {
    let engine = Engine::builder(ClusterSpec::test_small(2))
        .host_threads(2)
        .build();
    let service = JobService::builder(Arc::clone(&engine))
        .workers(1)
        .queue_capacity(3)
        .start_paused()
        .tenant(
            "small",
            TenantConfig {
                max_queued: 2,
                max_running: 1,
                weight: 1,
            },
        )
        .tenant(
            "other",
            TenantConfig {
                max_queued: 8,
                max_running: 1,
                weight: 1,
            },
        )
        .build();
    let analysis = AnalysisService::new(Arc::clone(&service));
    let ctx = SparkScoreContext::from_memory(
        Arc::clone(&engine),
        &cohort_dataset(),
        2,
        AnalysisOptions::default(),
    );
    analysis.register_cohort("cohort", ctx);

    assert!(matches!(
        analysis.submit_set_query("small", "nonexistent", 0),
        Err(QueryError::UnknownCohort)
    ));
    assert!(matches!(
        analysis.submit_set_query("nobody", "cohort", 0),
        Err(QueryError::Rejected(RejectReason::UnknownTenant))
    ));
    analysis.submit_set_query("small", "cohort", 0).unwrap();
    analysis.submit_set_query("small", "cohort", 1).unwrap();
    assert!(matches!(
        analysis.submit_set_query("small", "cohort", 2),
        Err(QueryError::Rejected(RejectReason::TenantQueueFull {
            limit: 2
        }))
    ));
    analysis.submit_set_query("other", "cohort", 0).unwrap();
    assert!(matches!(
        analysis.submit_set_query("other", "cohort", 1),
        Err(QueryError::Rejected(RejectReason::QueueFull {
            capacity: 3
        }))
    ));
    service.resume();
    service.drain();
    let stats = service.queue_status().stats;
    assert_eq!(stats.submitted, 3);
    assert_eq!(
        stats.rejected, 3,
        "unknown-tenant, tenant-full, and queue-full all counted"
    );
    assert_eq!(stats.completed, 3);
    service.shutdown(ShutdownMode::Drain);
}

/// Fault-injection satellite: a node dies mid-schedule under concurrent
/// tenants. Every job must still reach a terminal state, every score
/// must match a no-fault oracle, and the injected fault plus the cache
/// recovery it forces must be visible in the JSONL event log.
#[test]
fn node_loss_mid_schedule_recovers_and_matches_the_no_fault_oracle() {
    // Oracle: the observed pass on an identical, fault-free engine.
    let oracle_engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .build();
    let oracle_ctx = SparkScoreContext::from_memory(
        oracle_engine,
        &cohort_dataset(),
        PARTITIONS,
        AnalysisOptions::default(),
    );
    let oracle: std::collections::BTreeMap<u64, f64> = oracle_ctx
        .observed()
        .scores
        .iter()
        .map(|s| (s.set, s.score))
        .collect();

    let path = log_path("fault_injection");
    let log = Arc::new(EventLogListener::to_file(&path).expect("temp dir writable"));
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .listener(Arc::clone(&log) as Arc<dyn EventListener>)
        .build();
    let quota = TenantConfig {
        max_queued: 16,
        max_running: 1,
        weight: 1,
    };
    let service = JobService::builder(Arc::clone(&engine))
        .workers(2)
        .queue_capacity(64)
        .tenant("t0", quota)
        .tenant("t1", quota)
        .tenant("t2", quota)
        .build();
    let analysis = AnalysisService::new(Arc::clone(&service));
    let ctx = SparkScoreContext::from_memory(
        Arc::clone(&engine),
        &cohort_dataset(),
        PARTITIONS,
        AnalysisOptions::default(),
    );
    analysis.register_cohort("cohort", ctx);
    // Node 1 dies after 25 tasks — a few queries in, with the cached U
    // partially resident on the dead node.
    engine.set_fault_plan(FaultPlan::kill_node_after(NodeId(1), 25));

    let mut jobs = Vec::new();
    for round in 0..12u64 {
        for t in 0..3 {
            let job = analysis
                .submit_set_query(&format!("t{t}"), "cohort", round % 10)
                .expect("within quota");
            jobs.push((job, round % 10));
        }
    }
    for &(job, set) in &jobs {
        let result = analysis
            .wait_result(job)
            .expect("job reached a terminal state");
        assert_eq!(service.job_state(job), Some(JobState::Completed));
        assert_eq!(
            result.score, oracle[&set],
            "set {set} must match the no-fault oracle after recovery"
        );
    }
    assert!(
        !engine.cluster().node(NodeId(1)).is_alive(),
        "the fault plan must actually have fired"
    );
    service.shutdown(ShutdownMode::Drain);
    log.flush().expect("flush event log");

    let text = std::fs::read_to_string(&path).expect("log written");
    let mut fault_injected = 0;
    let mut blocks_lost = 0;
    for event in parse_event_log(&text).expect("parse raw events") {
        match event {
            EngineEvent::FaultInjected { .. } => fault_injected += 1,
            EngineEvent::CacheEvicted { pressure, .. } if !pressure => blocks_lost += 1,
            _ => {}
        }
    }
    assert!(fault_injected >= 1, "the node kill must be in the log");
    assert!(
        blocks_lost >= 1,
        "losing the node must drop its cached U blocks"
    );
    let m = engine.metrics_snapshot();
    assert!(
        m.recomputed_partitions > 0,
        "recovery must recompute the lost U partitions: {m:?}"
    );
}
