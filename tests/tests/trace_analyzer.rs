//! Acceptance tests for the trace analyzer against real SparkScore runs:
//! the critical path reported for an experiment-C-style workload must
//! match the engine's shuffle-dependency structure, the cache-ROI totals
//! must equal the sums of the per-task `TaskMetrics` counters in the log,
//! and a diff between the permutation (Algorithm 2) and cached-multiplier
//! (Algorithm 3) pipelines must attribute strictly more cache ROI to the
//! multiplier run.

use std::path::PathBuf;
use std::sync::Arc;

use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, SparkScoreContext};
use sparkscore_data::{GwasDataset, SyntheticConfig};
use sparkscore_obs::{cache_roi, critical_paths, diff_report, report, ExecutionTrace};
use sparkscore_rdd::events::parse_event_log;
use sparkscore_rdd::{Engine, EngineEvent, EventListener, EventLogListener, StageKind};

fn log_path(name: &str) -> PathBuf {
    std::env::temp_dir()
        .join(format!("sparkscore-trace-accept-{}", std::process::id()))
        .join(format!("{name}.jsonl"))
}

fn dataset() -> GwasDataset {
    let mut cfg = SyntheticConfig::small(7);
    cfg.patients = 50;
    cfg.snps = 120;
    cfg.snp_sets = 6;
    GwasDataset::generate(&cfg)
}

/// Run `work` on a small observed cluster, flush, and return the raw log.
fn logged_run(name: &str, cache_budget: Option<u64>, work: impl Fn(&SparkScoreContext)) -> String {
    let path = log_path(name);
    let log = Arc::new(EventLogListener::to_file(&path).expect("temp dir writable"));
    let mut builder = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .listener(Arc::clone(&log) as Arc<dyn EventListener>);
    if let Some(bytes) = cache_budget {
        builder = builder.cache_budget_bytes(bytes);
    }
    let engine = builder.build();
    let ctx = SparkScoreContext::from_memory(engine, &dataset(), 6, AnalysisOptions::default());
    work(&ctx);
    log.flush().expect("flush event log");
    std::fs::read_to_string(&path).expect("log written")
}

#[test]
fn critical_path_matches_shuffle_structure_and_roi_matches_task_sums() {
    // Experiment-C style: a cache-constrained Monte Carlo run (the strong
    // scaling workload), so hits, misses, and evictions all appear.
    let text = logged_run("experiment_c_style", Some(64 * 1024), |ctx| {
        let run = ctx.monte_carlo(4, 11, true);
        assert!(run.metrics.tasks > 0);
    });
    let trace = ExecutionTrace::parse(&text).expect("parse own log");

    // Critical paths: each job's chain must mirror the engine's stage
    // dependency structure — every parent shuffle-map stage before the
    // final result stage, and the path length equal to the sum of the
    // chain's stage makespans.
    let paths = critical_paths(&trace);
    assert!(!paths.is_empty(), "MC run produced jobs");
    let mut saw_shuffle_chain = false;
    for p in &paths {
        assert!(!p.stages.is_empty(), "job {} has stages", p.job);
        let (last, parents) = p.stages.split_last().unwrap();
        assert_eq!(
            last.kind,
            Some(StageKind::Result),
            "job {}'s path ends at its result stage",
            p.job
        );
        for parent in parents {
            assert_eq!(
                parent.kind,
                Some(StageKind::ShuffleMap),
                "job {}'s upstream path stages are shuffle-map stages",
                p.job
            );
        }
        saw_shuffle_chain |= !parents.is_empty();
        assert_eq!(
            p.path_ns,
            p.stages.iter().map(|s| s.makespan_ns).sum::<u64>()
        );
        assert!(
            p.path_ns <= p.virtual_advance_ns,
            "path cannot exceed the job's observed virtual advance"
        );
    }
    assert!(
        saw_shuffle_chain,
        "the scoring pipeline shuffles, so some path must cross a shuffle dependency"
    );

    // Cache ROI: totals must be exactly the sums of the per-task counters
    // in the log, summed here independently from the raw events.
    let (mut hits, mut misses, mut recomputed) = (0u64, 0u64, 0u64);
    for event in parse_event_log(&text).expect("parse raw events") {
        if let EngineEvent::TaskEnd { metrics, .. } = event {
            hits += metrics.cache_hits;
            misses += metrics.cache_misses;
            recomputed += metrics.recomputed_partitions;
        }
    }
    let roi = cache_roi(&trace);
    assert_eq!(
        (roi.hits, roi.misses, roi.recomputed),
        (hits, misses, recomputed)
    );
    assert!(roi.hits > 0, "cached multiplier run must hit the cache");
    assert!(
        roi.misses > 0,
        "a 64 KiB budget must force misses in this workload"
    );

    // And the rendered report must carry the same numbers and structure.
    let rendered = report(&trace);
    assert!(rendered.contains("== critical paths =="), "{rendered}");
    assert!(rendered.contains("[ShuffleMap] -> "), "{rendered}");
    assert!(
        rendered.contains(&format!("cache ROI: hits={hits} misses={misses}")),
        "{rendered}"
    );
}

#[test]
fn multiplier_run_shows_strictly_higher_cache_roi_than_permutation() {
    // Algorithm 2 (permutation: no reusable intermediate) vs Algorithm 3
    // (Monte Carlo with the cached U RDD), same workload and iterations.
    let perm = logged_run("alg2_permutation", None, |ctx| {
        ctx.permutation(4, 21);
    });
    let mc = logged_run("alg3_multiplier", None, |ctx| {
        ctx.monte_carlo(4, 21, true);
    });
    let perm_trace = ExecutionTrace::parse(&perm).unwrap();
    let mc_trace = ExecutionTrace::parse(&mc).unwrap();

    let perm_roi = cache_roi(&perm_trace);
    let mc_roi = cache_roi(&mc_trace);
    assert!(
        mc_roi.hits > perm_roi.hits,
        "multiplier must reuse the cached U RDD more: {mc_roi:?} vs {perm_roi:?}"
    );
    assert!(
        mc_roi.est_saved_ns > perm_roi.est_saved_ns,
        "multiplier must save strictly more virtual time: {mc_roi:?} vs {perm_roi:?}"
    );

    // The diff report must name the multiplier run as the cache winner.
    let diff = diff_report(
        "alg2-permutation",
        &perm_trace,
        "alg3-multiplier",
        &mc_trace,
    );
    assert!(
        diff.contains("alg3-multiplier saves an estimated"),
        "{diff}"
    );
}
