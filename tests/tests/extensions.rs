//! Extension features: burden combination, variant-by-variant analysis,
//! and covariate-adjusted inference through the distributed pipeline.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, CombineMethod, Phenotype, SparkScoreContext};
use sparkscore_data::{GwasDataset, SyntheticConfig};
use sparkscore_rdd::Engine;
use sparkscore_stats::dist::sample_standard_normal;
use sparkscore_stats::score::{CoxScore, ScoreModel};
use sparkscore_stats::skat::{burden_statistic, SnpSet};

fn engine() -> Arc<Engine> {
    Engine::builder(ClusterSpec::test_small(3))
        .host_threads(2)
        .build()
}

fn dataset(seed: u64) -> GwasDataset {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.patients = 40;
    cfg.snps = 80;
    cfg.snp_sets = 6;
    GwasDataset::generate(&cfg)
}

#[test]
fn burden_pipeline_matches_reference() {
    let ds = dataset(3);
    let opts = AnalysisOptions {
        combine: CombineMethod::Burden,
        ..AnalysisOptions::default()
    };
    let ctx = SparkScoreContext::from_memory(engine(), &ds, 4, opts);
    let obs = ctx.observed();
    let model = CoxScore::new(&ds.phenotypes);
    let rows = ds.genotype_rows();
    let scores: Vec<f64> = rows.iter().map(|g| model.score(g)).collect();
    for (got, set) in obs.scores.iter().zip(&ds.sets) {
        let want = burden_statistic(&scores, &ds.weights, set);
        assert!(
            (got.score - want).abs() <= 1e-9 * (1.0 + want.abs()),
            "set {}: burden {} vs reference {}",
            set.id,
            got.score,
            want
        );
    }
}

#[test]
fn burden_and_skat_rank_differently_on_mixed_signs() {
    // Two SNPs with opposite effect directions in one set: SKAT sees both,
    // burden cancels. Build it explicitly.
    let mut rng = StdRng::seed_from_u64(10);
    let n = 200;
    let g_plus: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
    let g_minus: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            2.0 * f64::from(g_plus[i]) - 2.0 * f64::from(g_minus[i])
                + 0.5 * sample_standard_normal(&mut rng)
        })
        .collect();
    let sets = vec![SnpSet::new(0, vec![0, 1])];

    let e = engine();
    let gm = e.parallelize(vec![(0u64, g_plus), (1, g_minus)], 2);
    let weights = e.parallelize(vec![(0u64, 1.0), (1, 1.0)], 1);

    let skat_p = SparkScoreContext::from_parts(
        Arc::clone(&e),
        Phenotype::Quantitative(y.clone()),
        gm.clone(),
        weights.clone(),
        &sets,
        AnalysisOptions::default(),
    )
    .monte_carlo(199, 4, true)
    .pvalues()[0];

    let burden_p = SparkScoreContext::from_parts(
        Arc::clone(&e),
        Phenotype::Quantitative(y),
        gm,
        weights,
        &sets,
        AnalysisOptions {
            combine: CombineMethod::Burden,
            ..AnalysisOptions::default()
        },
    )
    .monte_carlo(199, 4, true)
    .pvalues()[0];

    assert!(
        skat_p <= 0.01,
        "SKAT must catch opposite-sign effects: {skat_p}"
    );
    assert!(
        burden_p > skat_p,
        "burden ({burden_p}) should be weaker than SKAT ({skat_p}) here"
    );
}

#[test]
fn per_snp_asymptotic_flags_the_causal_variant() {
    let mut cfg = SyntheticConfig::small(11);
    cfg.patients = 300;
    cfg.snps = 50;
    cfg.snp_sets = 5;
    let mut ds = GwasDataset::generate(&cfg);
    ds.plant_survival_signal(12, 3.0);
    let ctx = SparkScoreContext::from_memory(engine(), &ds, 4, AnalysisOptions::default());
    let rows = ctx.per_snp_asymptotic();
    assert_eq!(rows.len(), 50);
    for (j, r) in rows.iter().enumerate() {
        assert_eq!(r.snp, j as u64, "sorted by SNP id");
        assert!((0.0..=1.0).contains(&r.pvalue));
        assert!(r.variance >= 0.0);
    }
    let best = rows
        .iter()
        .min_by(|a, b| a.pvalue.partial_cmp(&b.pvalue).expect("no NaN"))
        .expect("rows non-empty");
    assert_eq!(best.snp, 12, "the planted variant must rank first");
    assert!(best.pvalue < 1e-6, "planted p = {}", best.pvalue);
}

#[test]
fn covariate_adjustment_kills_confounded_set_in_full_pipeline() {
    // Trait driven by a covariate; one SNP correlates with the covariate
    // (confounded), another is truly causal. Unadjusted: both sets
    // significant. Adjusted: only the causal one survives.
    let mut rng = StdRng::seed_from_u64(77);
    let n = 400;
    let confounder: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
    let g_confounded: Vec<u8> = confounder
        .iter()
        .map(|&c| {
            let p = 1.0 / (1.0 + (-2.0 * c).exp());
            u8::from(rng.gen::<f64>() < p) + u8::from(rng.gen::<f64>() < p)
        })
        .collect();
    let g_causal: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            3.0 * confounder[i] + 1.0 * f64::from(g_causal[i]) + sample_standard_normal(&mut rng)
        })
        .collect();
    let sets = vec![SnpSet::new(0, vec![0]), SnpSet::new(1, vec![1])];

    let run_with = |phenotype: Phenotype| {
        let e = engine();
        let gm = e.parallelize(vec![(0u64, g_confounded.clone()), (1, g_causal.clone())], 2);
        let weights = e.parallelize(vec![(0u64, 1.0), (1, 1.0)], 1);
        SparkScoreContext::from_parts(
            Arc::clone(&e),
            phenotype,
            gm,
            weights,
            &sets,
            AnalysisOptions::default(),
        )
        .monte_carlo(399, 9, true)
        .pvalues()
    };

    let raw = run_with(Phenotype::Quantitative(y.clone()));
    assert!(
        raw[0] <= 0.05,
        "confounded set looks significant unadjusted: {raw:?}"
    );

    let adj = run_with(Phenotype::QuantitativeAdjusted {
        values: y,
        covariates: vec![confounder],
    });
    assert!(
        adj[0] > 0.05,
        "adjustment must kill the confounded set: {adj:?}"
    );
    assert!(
        adj[1] <= 0.05,
        "the causal set must survive adjustment: {adj:?}"
    );
}

#[test]
#[should_panic(expected = "does not support covariate adjustment")]
fn permutation_with_covariates_is_rejected() {
    let e = engine();
    let gm = e.parallelize(vec![(0u64, vec![0u8, 1, 2, 1])], 1);
    let weights = e.parallelize(vec![(0u64, 1.0)], 1);
    let ctx = SparkScoreContext::from_parts(
        Arc::clone(&e),
        Phenotype::QuantitativeAdjusted {
            values: vec![1.0, 2.0, 3.0, 4.0],
            covariates: vec![vec![0.1, 0.3, 0.2, 0.4]],
        },
        gm,
        weights,
        &[SnpSet::new(0, vec![0])],
        AnalysisOptions::default(),
    );
    let _ = ctx.permutation(2, 1);
}
