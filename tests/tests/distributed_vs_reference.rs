//! The distributed pipelines must reproduce the sequential reference
//! implementations exactly (same seeds → same replicate sequences → same
//! counters), from both in-memory and DFS-text inputs.

use std::sync::Arc;

use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, SparkScoreContext};
use sparkscore_data::{write_dataset_to_dfs, GwasDataset, SyntheticConfig, WeightScheme};
use sparkscore_rdd::Engine;
use sparkscore_stats::resample;
use sparkscore_stats::score::CoxScore;

fn engine(nodes: u32) -> Arc<Engine> {
    Engine::builder(ClusterSpec::test_small(nodes))
        .host_threads(4)
        .dfs_block_size(4096)
        .build()
}

fn dataset(seed: u64) -> GwasDataset {
    let mut cfg = SyntheticConfig::small(seed);
    cfg.patients = 40;
    cfg.snps = 120;
    cfg.snp_sets = 8;
    cfg.weights = WeightScheme::skat_default();
    GwasDataset::generate(&cfg)
}

fn assert_scores_close(distributed: &[sparkscore_core::SetScore], reference: &[f64]) {
    assert_eq!(distributed.len(), reference.len());
    for (d, &r) in distributed.iter().zip(reference) {
        assert!(
            (d.score - r).abs() <= 1e-9 * (1.0 + r.abs()),
            "set {}: distributed {} vs reference {}",
            d.set,
            d.score,
            r
        );
    }
}

#[test]
fn observed_skat_matches_reference_from_memory() {
    let ds = dataset(21);
    let ctx = SparkScoreContext::from_memory(engine(3), &ds, 5, AnalysisOptions::default());
    let obs = ctx.observed();
    let model = CoxScore::new(&ds.phenotypes);
    let reference = resample::observed_skat(&model, &ds.genotype_rows(), &ds.weights, &ds.sets);
    assert_scores_close(&obs.scores, &reference);
}

#[test]
fn observed_skat_matches_reference_from_dfs_text() {
    let ds = dataset(22);
    let e = engine(3);
    let (paths, _) = write_dataset_to_dfs(e.dfs(), "/gwas", &ds).unwrap();
    let ctx = SparkScoreContext::from_dfs(Arc::clone(&e), &paths, AnalysisOptions::default())
        .expect("inputs exist");
    let obs = ctx.observed();
    let model = CoxScore::new(&ds.phenotypes);
    let reference = resample::observed_skat(&model, &ds.genotype_rows(), &ds.weights, &ds.sets);
    // Text serialization rounds survival times to 1e-6; tolerance reflects
    // that, scaled by the squared-score magnitudes.
    for (d, &r) in obs.scores.iter().zip(&reference) {
        assert!(
            (d.score - r).abs() <= 1e-3 * (1.0 + r.abs()),
            "set {}: {} vs {}",
            d.set,
            d.score,
            r
        );
    }
}

#[test]
fn monte_carlo_counts_match_reference_exactly() {
    let ds = dataset(23);
    let ctx = SparkScoreContext::from_memory(engine(2), &ds, 4, AnalysisOptions::default());
    let run = ctx.monte_carlo(50, 99, true);
    let model = CoxScore::new(&ds.phenotypes);
    let reference =
        resample::monte_carlo(&model, &ds.genotype_rows(), &ds.weights, &ds.sets, 50, 99);
    assert_scores_close(&run.observed, &reference.observed);
    assert_eq!(run.counts_ge, reference.counts_ge);
    assert_eq!(run.pvalues(), reference.pvalues());
}

#[test]
fn monte_carlo_without_cache_matches_too() {
    let ds = dataset(29);
    let ctx = SparkScoreContext::from_memory(engine(2), &ds, 4, AnalysisOptions::default());
    let run = ctx.monte_carlo(25, 7, false);
    let model = CoxScore::new(&ds.phenotypes);
    let reference =
        resample::monte_carlo(&model, &ds.genotype_rows(), &ds.weights, &ds.sets, 25, 7);
    assert_eq!(run.counts_ge, reference.counts_ge);
}

#[test]
fn permutation_counts_match_reference_exactly() {
    let ds = dataset(31);
    let ctx = SparkScoreContext::from_memory(engine(2), &ds, 4, AnalysisOptions::default());
    let run = ctx.permutation(30, 5);
    let model = CoxScore::new(&ds.phenotypes);
    let reference = resample::permutation(
        &model,
        |p| model.permuted(p),
        &ds.genotype_rows(),
        &ds.weights,
        &ds.sets,
        30,
        5,
    );
    assert_scores_close(&run.observed, &reference.observed);
    assert_eq!(run.counts_ge, reference.counts_ge);
}

#[test]
fn dfs_and_memory_paths_agree() {
    let ds = dataset(37);
    let e = engine(3);
    let (paths, _) = write_dataset_to_dfs(e.dfs(), "/gwas2", &ds).unwrap();
    let from_dfs = SparkScoreContext::from_dfs(Arc::clone(&e), &paths, AnalysisOptions::default())
        .unwrap()
        .observed();
    let from_mem =
        SparkScoreContext::from_memory(engine(3), &ds, 4, AnalysisOptions::default()).observed();
    for (a, b) in from_dfs.scores.iter().zip(&from_mem.scores) {
        assert_eq!(a.set, b.set);
        assert!(
            (a.score - b.score).abs() <= 1e-3 * (1.0 + b.score.abs()),
            "set {}: dfs {} vs mem {}",
            a.set,
            a.score,
            b.score
        );
    }
}

#[test]
fn results_insensitive_to_cluster_shape_and_partitioning() {
    let ds = dataset(41);
    let base = SparkScoreContext::from_memory(engine(1), &ds, 1, AnalysisOptions::default())
        .monte_carlo(20, 13, true);
    for (nodes, parts, reduce) in [(2u32, 3usize, 2usize), (4, 8, 5), (3, 13, 1)] {
        let ctx = SparkScoreContext::from_memory(
            engine(nodes),
            &ds,
            parts,
            AnalysisOptions {
                reduce_partitions: reduce,
                ..AnalysisOptions::default()
            },
        );
        let run = ctx.monte_carlo(20, 13, true);
        assert_eq!(
            run.counts_ge, base.counts_ge,
            "{nodes} nodes / {parts} partitions / {reduce} reducers changed the counts"
        );
        for (a, b) in run.observed.iter().zip(&base.observed) {
            assert!((a.score - b.score).abs() <= 1e-9 * (1.0 + b.score.abs()));
        }
    }
}
