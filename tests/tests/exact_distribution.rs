//! Ground-truth calibration: on a cohort tiny enough to enumerate all
//! phenotype assignments, the distributed sampled-permutation pipeline
//! must converge to the exact permutation distribution — the "exact
//! sampling distribution" the paper's abstract says resampling
//! approximates.

use std::sync::Arc;

use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, Phenotype, SparkScoreContext};
use sparkscore_rdd::Engine;
use sparkscore_stats::exact::exact_permutation_pvalues;
use sparkscore_stats::score::GaussianScore;
use sparkscore_stats::skat::SnpSet;

#[test]
fn distributed_permutation_converges_to_exact_enumeration() {
    // n = 7 patients → 5040 assignments, exactly enumerable.
    let y = vec![1.2, -0.4, 2.2, 0.3, 3.1, -1.0, 0.8];
    let rows = vec![
        vec![0u8, 1, 2, 0, 2, 0, 1],
        vec![1u8, 1, 0, 2, 0, 1, 0],
        vec![2u8, 0, 1, 1, 1, 2, 0],
    ];
    let weights = vec![1.0, 0.5, 1.5];
    let sets = vec![SnpSet::new(0, vec![0, 1]), SnpSet::new(1, vec![2])];

    let model = GaussianScore::new(&y);
    let exact = exact_permutation_pvalues(&model, |p| model.permuted(p), &rows, &weights, &sets);

    let engine = Engine::builder(ClusterSpec::test_small(2))
        .host_threads(2)
        .build();
    let gm = engine.parallelize(
        rows.iter()
            .enumerate()
            .map(|(j, r)| (j as u64, r.clone()))
            .collect::<Vec<_>>(),
        2,
    );
    let weights_rdd = engine.parallelize(
        weights
            .iter()
            .enumerate()
            .map(|(j, &w)| (j as u64, w))
            .collect::<Vec<_>>(),
        1,
    );
    let ctx = SparkScoreContext::from_parts(
        Arc::clone(&engine),
        Phenotype::Quantitative(y.clone()),
        gm,
        weights_rdd,
        &sets,
        AnalysisOptions::default(),
    );
    let sampled = ctx.permutation(3000, 17).pvalues();

    for (k, (s, e)) in sampled.iter().zip(&exact).enumerate() {
        assert!((s - e).abs() < 0.03, "set {k}: sampled {s} vs exact {e}");
    }
}
