//! Statistical behaviour of the full distributed pipeline: detection of
//! planted associations, null calibration, agreement between resampling
//! and asymptotic inference, and phenotype-model extensions (eQTL).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkscore_cluster::ClusterSpec;
use sparkscore_core::{AnalysisOptions, Phenotype, SparkScoreContext};
use sparkscore_data::{GwasDataset, SyntheticConfig};
use sparkscore_rdd::Engine;
use sparkscore_stats::asymptotic::skat_liu_pvalue;
use sparkscore_stats::score::{score_and_variance, CoxScore, ScoreModel};
use sparkscore_stats::skat::SnpSet;

fn engine() -> Arc<Engine> {
    Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .build()
}

#[test]
fn planted_survival_association_is_detected_end_to_end() {
    // Seed chosen so the planted signal lands on a common-enough SNP to be
    // detectable with 120 patients: a hazard ratio of 3 gives this design
    // only moderate power, so some seeds (e.g. 101, 42) draw datasets where
    // the MC p-value sits near 0.3 despite the planted effect.
    let mut cfg = SyntheticConfig::small(7);
    cfg.patients = 120;
    cfg.snps = 60;
    cfg.snp_sets = 6;
    let mut ds = GwasDataset::generate(&cfg);
    // Plant a strong hazard signal at SNP 0.
    ds.plant_survival_signal(0, 3.0);
    let causal_set = ds
        .sets
        .iter()
        .find(|s| s.members.contains(&0))
        .expect("SNP 0 belongs to some set")
        .id;

    let ctx = SparkScoreContext::from_memory(engine(), &ds, 4, AnalysisOptions::default());
    let run = ctx.monte_carlo(199, 9, true);
    let pvalues = run.pvalues();
    let p_causal = run
        .observed
        .iter()
        .zip(&pvalues)
        .find(|(s, _)| s.set == causal_set)
        .map(|(_, &p)| p)
        .unwrap();
    assert!(
        p_causal <= 0.02,
        "planted association must be detected (p = {p_causal}, all = {pvalues:?})"
    );
    assert_eq!(run.top_sets(1)[0].0, causal_set);
}

#[test]
fn null_pvalues_are_roughly_uniform() {
    let mut cfg = SyntheticConfig::small(202);
    cfg.patients = 100;
    cfg.snps = 200;
    cfg.snp_sets = 20;
    let ds = GwasDataset::generate(&cfg);
    let ctx = SparkScoreContext::from_memory(engine(), &ds, 4, AnalysisOptions::default());
    let ps = ctx.monte_carlo(199, 3, true).pvalues();
    let small = ps.iter().filter(|&&p| p < 0.05).count();
    assert!(
        small <= 4,
        "at most a few of 20 null sets should reach p < 0.05, got {small}: {ps:?}"
    );
    let large = ps.iter().filter(|&&p| p > 0.5).count();
    assert!(large >= 5, "p-values should spread over (0,1]: {ps:?}");
}

#[test]
fn resampling_agrees_with_liu_asymptotics_on_large_null_sample() {
    // With n = 400 patients the asymptotic mixture approximation and the
    // MC estimate of the SKAT tail should agree to ~±0.1.
    let mut cfg = SyntheticConfig::small(303);
    cfg.patients = 400;
    cfg.snps = 40;
    cfg.snp_sets = 4;
    let ds = GwasDataset::generate(&cfg);
    let ctx = SparkScoreContext::from_memory(engine(), &ds, 4, AnalysisOptions::default());
    let run = ctx.monte_carlo(499, 17, true);
    let mc_p = run.pvalues();

    let model = CoxScore::new(&ds.phenotypes);
    let rows = ds.genotype_rows();
    for (k, set) in ds.sets.iter().enumerate() {
        // Mixture weights λ_j = ω_j² V_j for the set's member SNPs.
        let lambdas: Vec<f64> = set
            .members
            .iter()
            .map(|&j| {
                let (_, v) = score_and_variance(&model.contributions(&rows[j]));
                ds.weights[j] * ds.weights[j] * v
            })
            .collect();
        let q = run.observed[k].score;
        let liu = skat_liu_pvalue(q, &lambdas);
        assert!(
            (liu - mc_p[k]).abs() < 0.12,
            "set {k}: Liu {liu:.3} vs MC {:.3}",
            mc_p[k]
        );
    }
}

#[test]
fn eqtl_quantitative_phenotype_through_from_parts() {
    // A quantitative trait driven by SNP 3 — the eQTL extension of the
    // paper's abstract, using the general constructor.
    let mut rng = StdRng::seed_from_u64(404);
    let n = 150;
    let m = 30;
    let rows: Vec<Vec<u8>> = (0..m)
        .map(|_| (0..n).map(|_| rng.gen_range(0u8..3)).collect())
        .collect();
    let trait_values: Vec<f64> = (0..n)
        .map(|i| {
            2.0 * f64::from(rows[3][i]) + sparkscore_stats::dist::sample_standard_normal(&mut rng)
        })
        .collect();
    let sets: Vec<SnpSet> = (0..6)
        .map(|k| SnpSet::new(k as u64, (5 * k..5 * k + 5).collect()))
        .collect();

    let e = engine();
    let gm = e.parallelize(
        rows.iter()
            .enumerate()
            .map(|(j, r)| (j as u64, r.clone()))
            .collect::<Vec<_>>(),
        4,
    );
    let weights = e.parallelize((0..m as u64).map(|j| (j, 1.0)).collect::<Vec<_>>(), 2);
    let ctx = SparkScoreContext::from_parts(
        Arc::clone(&e),
        Phenotype::Quantitative(trait_values),
        gm,
        weights,
        &sets,
        AnalysisOptions::default(),
    );
    let run = ctx.monte_carlo(199, 5, true);
    let top = run.top_sets(1)[0];
    assert_eq!(top.0, 0, "the set containing SNP 3 must rank first");
    assert!(
        top.1 <= 0.02,
        "eQTL signal must be significant (p = {})",
        top.1
    );
}

#[test]
fn case_control_phenotype_through_from_parts() {
    let mut rng = StdRng::seed_from_u64(505);
    let n = 200;
    let causal: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
    let cases: Vec<bool> = causal
        .iter()
        .map(|&g| rng.gen::<f64>() < 0.15 + 0.35 * f64::from(g))
        .collect();
    let noise: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
    let rows = [causal, noise];
    let sets = vec![SnpSet::new(0, vec![0]), SnpSet::new(1, vec![1])];

    let e = engine();
    let gm = e.parallelize(vec![(0u64, rows[0].clone()), (1, rows[1].clone())], 2);
    let weights = e.parallelize(vec![(0u64, 1.0), (1, 1.0)], 1);
    let ctx = SparkScoreContext::from_parts(
        Arc::clone(&e),
        Phenotype::CaseControl(cases),
        gm,
        weights,
        &sets,
        AnalysisOptions::default(),
    );
    let ps = ctx.monte_carlo(199, 11, true).pvalues();
    assert!(ps[0] <= 0.02, "causal SNP set p = {}", ps[0]);
    assert!(ps[1] > 0.05, "noise SNP set p = {}", ps[1]);
}

#[test]
fn westfall_young_adjustment_controls_the_family() {
    // Use the reference implementation on distributed observed statistics
    // to produce adjusted p-values; adjusted >= marginal everywhere.
    let mut cfg = SyntheticConfig::small(606);
    cfg.patients = 80;
    cfg.snps = 60;
    cfg.snp_sets = 6;
    let ds = GwasDataset::generate(&cfg);
    let model = CoxScore::new(&ds.phenotypes);
    let rows = ds.genotype_rows();
    let observed: Vec<f64> = sparkscore_stats::observed_skat(&model, &rows, &ds.weights, &ds.sets);

    // Build replicate matrix with the same MC scheme.
    let mut rng = StdRng::seed_from_u64(1);
    let contribs: Vec<Vec<f64>> = rows.iter().map(|g| model.contributions(g)).collect();
    let replicates: Vec<Vec<f64>> = (0..200)
        .map(|_| {
            let z = sparkscore_stats::resample::mc_weights(&mut rng, ds.phenotypes.len());
            let scores: Vec<f64> = contribs
                .iter()
                .map(|c| c.iter().zip(&z).map(|(u, zi)| u * zi).sum())
                .collect();
            sparkscore_stats::skat_all(&scores, &ds.weights, &ds.sets)
        })
        .collect();
    let marginal = sparkscore_stats::pvalue::empirical_pvalues(&observed, &replicates);
    let adjusted = sparkscore_stats::pvalue::westfall_young_adjusted(&observed, &replicates);
    for (m, a) in marginal.iter().zip(&adjusted) {
        assert!(a >= m);
        assert!(*a <= 1.0 && *a > 0.0);
    }
}
