//! `Dataset<T>` — the typed, lazy, partitioned collection (Spark's RDD).
//!
//! Transformations (`map`, `filter`, `reduce_by_key`, `join`, …) build the
//! lineage graph lazily; actions (`collect`, `count`, `reduce`, …) submit a
//! job to the [`Engine`], which plans shuffle stages, honors the block
//! cache, and recovers lost partitions from lineage. `cache()` marks the
//! dataset's partitions for storage in the engine's block cache — the
//! operation SparkScore's Monte Carlo resampling (Algorithm 3, step 2)
//! applies to the `U` RDD.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use sparkscore_dfs::DfsError;

use crate::engine::{Engine, OpGuard};
use crate::meta::{DepMeta, OpMeta};
use crate::ops::narrow::{
    CoalesceOp, FilterOp, FlatMapOp, MapOp, MapPartitionsCtxOp, MapPartitionsOp, SampleOp, UnionOp,
};
use crate::ops::shuffled::{Aggregator, CoGroupOp, ShuffledOp};
use crate::ops::source::{ParallelizeOp, TextFileOp};
use crate::ops::{materialize, Data, Op};
use crate::{OpId, ShuffleId};

/// A typed, lazy, partitioned dataset bound to an engine.
pub struct Dataset<T: Data> {
    engine: Arc<Engine>,
    op: Arc<dyn Op<T>>,
}

impl<T: Data> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::clone(&self.op),
        }
    }
}

/// Register a new operator's metadata and produce its cleanup guard.
fn register_op(
    engine: &Arc<Engine>,
    name: &str,
    num_partitions: usize,
    deps: Vec<DepMeta>,
    shuffles: Vec<ShuffleId>,
) -> (OpId, OpGuard) {
    let id = engine.new_op_id();
    engine.meta.register(OpMeta {
        id,
        name: name.to_string(),
        deps,
        num_partitions,
    });
    (id, OpGuard::new(engine, id, shuffles))
}

impl Engine {
    /// Distribute a driver-side collection over `num_partitions` partitions
    /// (Spark's `sc.parallelize`).
    pub fn parallelize<T: Data>(
        self: &Arc<Self>,
        data: Vec<T>,
        num_partitions: usize,
    ) -> Dataset<T> {
        let (id, guard) = register_op(self, "parallelize", num_partitions, vec![], vec![]);
        Dataset {
            engine: Arc::clone(self),
            op: Arc::new(ParallelizeOp::new(id, guard, data, num_partitions)),
        }
    }

    /// Open a DFS text file as a dataset of lines, one partition per block
    /// with HDFS locality hints (Spark's `sc.textFile`).
    pub fn text_file(self: &Arc<Self>, path: &str) -> Result<Dataset<String>, DfsError> {
        let meta = self.dfs().stat(path)?;
        let (id, guard) = register_op(self, "textFile", meta.num_blocks(), vec![], vec![]);
        Ok(Dataset {
            engine: Arc::clone(self),
            op: Arc::new(TextFileOp::new(id, guard, meta)),
        })
    }

    /// Open a directory of Hadoop-style `part-NNNNN` files (as produced by
    /// [`Dataset::save_as_text_file`]) as one dataset, parts in order.
    pub fn text_file_dir(self: &Arc<Self>, dir: &str) -> Result<Dataset<String>, DfsError> {
        let prefix = format!("{}/part-", dir.trim_end_matches('/'));
        let mut paths: Vec<String> = self
            .dfs()
            .list_files()
            .into_iter()
            .filter(|p| p.starts_with(&prefix))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(DfsError::FileNotFound(format!("{dir}/part-*")));
        }
        let mut parents: Vec<Arc<dyn Op<String>>> = Vec::with_capacity(paths.len());
        let mut deps = Vec::with_capacity(paths.len());
        for path in &paths {
            let meta = self.dfs().stat(path)?;
            let (id, guard) = register_op(self, "textFile", meta.num_blocks(), vec![], vec![]);
            deps.push(DepMeta {
                parent: id,
                shuffle: None,
            });
            parents.push(Arc::new(TextFileOp::new(id, guard, meta)));
        }
        let total: usize = parents.iter().map(|p| p.num_partitions()).sum();
        let (id, guard) = register_op(self, "textFileDir", total, deps, vec![]);
        Ok(Dataset {
            engine: Arc::clone(self),
            op: Arc::new(UnionOp::new(id, guard, parents)),
        })
    }
}

impl<T: Data> Dataset<T> {
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    pub fn id(&self) -> OpId {
        self.op.id()
    }

    pub fn num_partitions(&self) -> usize {
        self.op.num_partitions()
    }

    fn narrow_dep(&self) -> Vec<DepMeta> {
        vec![DepMeta {
            parent: self.op.id(),
            shuffle: None,
        }]
    }

    // ---- transformations (lazy) ----

    /// Apply `f` to every record.
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Dataset<U> {
        self.map_with_cost(1.0, f)
    }

    /// Apply `f` to every record, declaring its modeled per-record cost in
    /// work units (see [`MapOp`]) for virtual-time accounting. Results are
    /// identical to [`Dataset::map`]; only the simulated clock differs.
    pub fn map_with_cost<U: Data>(
        &self,
        cost_units: f64,
        f: impl Fn(T) -> U + Send + Sync + 'static,
    ) -> Dataset<U> {
        let (id, guard) = register_op(
            &self.engine,
            "map",
            self.num_partitions(),
            self.narrow_dep(),
            vec![],
        );
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(MapOp::new(
                id,
                guard,
                Arc::clone(&self.op),
                Arc::new(f),
                cost_units,
            )),
        }
    }

    /// Keep records satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Dataset<T> {
        let (id, guard) = register_op(
            &self.engine,
            "filter",
            self.num_partitions(),
            self.narrow_dep(),
            vec![],
        );
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(FilterOp::new(
                id,
                guard,
                Arc::clone(&self.op),
                Arc::new(pred),
            )),
        }
    }

    /// Apply `f` and flatten the results.
    pub fn flat_map<U: Data>(&self, f: impl Fn(T) -> Vec<U> + Send + Sync + 'static) -> Dataset<U> {
        let (id, guard) = register_op(
            &self.engine,
            "flatMap",
            self.num_partitions(),
            self.narrow_dep(),
            vec![],
        );
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(FlatMapOp::new(id, guard, Arc::clone(&self.op), Arc::new(f))),
        }
    }

    /// Transform a whole partition at once; `f` receives the partition
    /// index and its records.
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(usize, &[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        let (id, guard) = register_op(
            &self.engine,
            "mapPartitions",
            self.num_partitions(),
            self.narrow_dep(),
            vec![],
        );
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(MapPartitionsOp::new(
                id,
                guard,
                Arc::clone(&self.op),
                Arc::new(f),
            )),
        }
    }

    /// Like [`Dataset::map_partitions`], but `f` also receives the task
    /// context — for kernel operators that charge their own cost model and
    /// report kernel counters ([`crate::TaskCtx::add_kernel_rows`],
    /// [`crate::TaskCtx::add_scratch_reuses`]). No default work is
    /// charged; the closure is responsible for `ctx.add_work`.
    pub fn map_partitions_ctx<U: Data>(
        &self,
        f: impl Fn(&crate::TaskCtx<'_>, usize, &[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        let (id, guard) = register_op(
            &self.engine,
            "mapPartitions",
            self.num_partitions(),
            self.narrow_dep(),
            vec![],
        );
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(MapPartitionsCtxOp::new(
                id,
                guard,
                Arc::clone(&self.op),
                Arc::new(f),
            )),
        }
    }

    /// Concatenate with `other` (partitions are appended, not merged).
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        let deps = vec![
            DepMeta {
                parent: self.op.id(),
                shuffle: None,
            },
            DepMeta {
                parent: other.op.id(),
                shuffle: None,
            },
        ];
        let parts = self.num_partitions() + other.num_partitions();
        let (id, guard) = register_op(&self.engine, "union", parts, deps, vec![]);
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(UnionOp::new(
                id,
                guard,
                vec![Arc::clone(&self.op), Arc::clone(&other.op)],
            )),
        }
    }

    /// Pair every record with a key derived from it.
    pub fn key_by<K: Data>(&self, f: impl Fn(&T) -> K + Send + Sync + 'static) -> Dataset<(K, T)> {
        self.map(move |t| (f(&t), t))
    }

    /// Bernoulli sample: keep each record with probability `fraction`,
    /// deterministically in `seed`.
    pub fn sample(&self, fraction: f64, seed: u64) -> Dataset<T> {
        let (id, guard) = register_op(
            &self.engine,
            "sample",
            self.num_partitions(),
            self.narrow_dep(),
            vec![],
        );
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(SampleOp::new(
                id,
                guard,
                Arc::clone(&self.op),
                fraction,
                seed,
            )),
        }
    }

    /// Merge adjacent partitions down to at most `n`, without a shuffle.
    pub fn coalesce(&self, n: usize) -> Dataset<T> {
        let (id, guard) = register_op(
            &self.engine,
            "coalesce",
            n.min(self.num_partitions().max(1)),
            self.narrow_dep(),
            vec![],
        );
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(CoalesceOp::new(id, guard, Arc::clone(&self.op), n)),
        }
    }

    /// Pair every record with its global index in partition order.
    ///
    /// Like Spark's `zipWithIndex`, this runs a job to learn partition
    /// lengths before building the result dataset.
    pub fn zip_with_index(&self) -> Dataset<(T, u64)> {
        let lengths = self.run_partitions(|p| p.len() as u64);
        let mut offsets = Vec::with_capacity(lengths.len());
        let mut acc = 0u64;
        for len in lengths {
            offsets.push(acc);
            acc += len;
        }
        self.map_partitions(move |part, records| {
            records
                .iter()
                .enumerate()
                .map(|(i, r)| (r.clone(), offsets[part] + i as u64))
                .collect()
        })
    }

    // ---- caching ----

    /// Mark this dataset's partitions for the block cache. Lazy like
    /// Spark's: blocks are stored the first time partitions materialize.
    pub fn cache(&self) -> Dataset<T> {
        self.engine.cache.mark(self.op.id());
        self.clone()
    }

    /// Remove this dataset from the cache (Spark's `unpersist`).
    pub fn unpersist(&self) {
        let op = self.op.id();
        for (partition, bytes) in self.engine.cache.unmark(op) {
            self.engine
                .events()
                .emit_with(|| crate::events::EngineEvent::CacheEvicted {
                    op: op.0,
                    partition,
                    pressure: false,
                    bytes,
                });
        }
    }

    pub fn is_cached(&self) -> bool {
        self.engine.cache.is_marked(self.op.id())
    }

    /// Lineage tree, for debugging (Spark's `toDebugString`).
    pub fn lineage(&self) -> String {
        self.engine
            .meta
            .lineage_string(self.op.id(), &self.engine.cache)
    }

    // ---- actions (eager) ----

    /// Run a job that applies `f` to each materialized partition.
    pub fn run_partitions<R: Send>(&self, f: impl Fn(Arc<Vec<T>>) -> R + Sync) -> Vec<R> {
        let op = Arc::clone(&self.op);
        self.engine
            .run_job(op.id(), op.num_partitions(), move |part, ctx| {
                f(materialize(&op, part, ctx))
            })
    }

    /// One grid row of a distributed GEMM: run `kernel` once per partition
    /// of this dataset as engine tasks, handing each the task context (for
    /// work counters and sub-task spans), the partition index, and the
    /// materialized records. Cached datasets serve the records from the
    /// block cache, so repeated grid rows (one per broadcast operand tile)
    /// re-stream resident partitions instead of recomputing lineage.
    /// Results come back in partition order — a deterministic, shuffle-free
    /// gather the driver can fold without reassociating task-local
    /// arithmetic.
    pub fn grid_cells<R: Send>(
        &self,
        kernel: impl Fn(&crate::TaskCtx<'_>, usize, &[T]) -> R + Sync,
    ) -> Vec<R> {
        let op = Arc::clone(&self.op);
        self.engine
            .run_job(op.id(), op.num_partitions(), move |part, ctx| {
                let data = materialize(&op, part, ctx);
                kernel(ctx, part, &data)
            })
    }

    /// Gather every record to the driver, in partition order.
    pub fn collect(&self) -> Vec<T> {
        let parts = self.run_partitions(|p| p);
        let total = parts.iter().map(|p| p.len()).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Number of records.
    pub fn count(&self) -> usize {
        self.run_partitions(|p| p.len()).into_iter().sum()
    }

    /// Reduce all records with `f`; `None` on an empty dataset.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync) -> Option<T> {
        self.run_partitions(|p| p.iter().cloned().reduce(&f))
            .into_iter()
            .flatten()
            .reduce(&f)
    }

    /// Fold all records starting from `zero` in each partition, then fold
    /// the per-partition results. `f` must be associative and `zero` its
    /// identity, as in Spark.
    pub fn fold(&self, zero: T, f: impl Fn(T, T) -> T + Send + Sync) -> T {
        let z = zero.clone();
        let f = &f;
        self.run_partitions(move |p| p.iter().cloned().fold(z.clone(), f))
            .into_iter()
            .fold(zero, f)
    }

    /// First `n` records in partition order. (Materializes all partitions;
    /// Spark's incremental `take` short-circuit is not modeled.)
    pub fn take(&self, n: usize) -> Vec<T> {
        let mut v = self.collect();
        v.truncate(n);
        v
    }

    /// First record, if any.
    pub fn first(&self) -> Option<T> {
        self.take(1).into_iter().next()
    }

    /// The `n` smallest records under `cmp` (Spark's `takeOrdered`):
    /// per-partition selection, then a driver-side merge — never
    /// materializes more than `n × partitions` records on the driver.
    pub fn take_ordered(
        &self,
        n: usize,
        cmp: impl Fn(&T, &T) -> std::cmp::Ordering + Send + Sync,
    ) -> Vec<T> {
        if n == 0 {
            return Vec::new();
        }
        let cmp = &cmp;
        let mut merged: Vec<T> = self
            .run_partitions(move |p| {
                let mut local: Vec<T> = p.iter().cloned().collect();
                local.sort_by(cmp);
                local.truncate(n);
                local
            })
            .into_iter()
            .flatten()
            .collect();
        merged.sort_by(cmp);
        merged.truncate(n);
        merged
    }
}

impl Dataset<String> {
    /// Persist as Hadoop-style `part-NNNNN` text files under `dir` on the
    /// DFS (Spark's `saveAsTextFile`). One file per partition; records
    /// become lines. Re-reading with [`Engine::text_file_dir`] yields a
    /// dataset with **no lineage back to this one** — the classic way to
    /// truncate a long lineage by materializing it durably.
    pub fn save_as_text_file(&self, dir: &str) -> Result<(), DfsError> {
        let parts = self.run_partitions(|records| {
            let mut text = String::new();
            for r in records.iter() {
                text.push_str(r);
                text.push('\n');
            }
            text
        });
        let dir = dir.trim_end_matches('/');
        for (i, text) in parts.into_iter().enumerate() {
            self.engine
                .dfs()
                .write_text(&format!("{dir}/part-{i:05}"), &text)?;
        }
        Ok(())
    }
}

impl<T: Data + Hash + Eq> Dataset<T> {
    /// Unique records (order not specified), via a shuffle.
    pub fn distinct(&self, num_reduce_parts: usize) -> Dataset<T> {
        self.map(|t| (t, ()))
            .reduce_by_key(num_reduce_parts, |a, _| a)
            .keys()
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Data + Hash + Eq,
    V: Data,
{
    /// Per-key record counts, gathered to the driver.
    pub fn count_by_key(&self, num_reduce_parts: usize) -> HashMap<K, u64> {
        self.map(|(k, _)| (k, 1u64))
            .reduce_by_key(num_reduce_parts, |a, b| a + b)
            .collect_as_map()
    }

    /// Aggregate values per key from a zero value: `seq` folds a value
    /// into the accumulator, `comb` merges accumulators across partitions.
    pub fn aggregate_by_key<C: Data>(
        &self,
        zero: C,
        num_reduce_parts: usize,
        seq: impl Fn(&mut C, V) + Send + Sync + 'static,
        comb: impl Fn(&mut C, C) + Send + Sync + 'static,
    ) -> Dataset<(K, C)> {
        let seq = Arc::new(seq);
        let seq2 = Arc::clone(&seq);
        let agg = Aggregator {
            create: Arc::new(move |v| {
                let mut c = zero.clone();
                seq2(&mut c, v);
                c
            }),
            merge_value: Arc::new(move |c: &mut C, v| seq(c, v)),
            merge_combiners: Arc::new(comb),
        };
        self.combine_by_key(agg, num_reduce_parts)
    }
    /// General combine-by-key over `num_reduce_parts` output partitions.
    pub fn combine_by_key<C: Data>(
        &self,
        agg: Aggregator<V, C>,
        num_reduce_parts: usize,
    ) -> Dataset<(K, C)> {
        let sid = self.engine.new_shuffle_id();
        let deps = vec![DepMeta {
            parent: self.op.id(),
            shuffle: Some(sid),
        }];
        let (id, guard) = register_op(&self.engine, "shuffled", num_reduce_parts, deps, vec![sid]);
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(ShuffledOp::new(
                &self.engine,
                id,
                guard,
                sid,
                Arc::clone(&self.op),
                num_reduce_parts,
                agg,
            )),
        }
    }

    /// Merge values per key with `f` (map-side combining enabled).
    pub fn reduce_by_key(
        &self,
        num_reduce_parts: usize,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Dataset<(K, V)> {
        self.combine_by_key(Aggregator::reducing(f), num_reduce_parts)
    }

    /// Collect all values per key.
    pub fn group_by_key(&self, num_reduce_parts: usize) -> Dataset<(K, Vec<V>)> {
        self.combine_by_key(Aggregator::grouping(), num_reduce_parts)
    }

    /// Re-partition by key hash, keeping individual pairs.
    pub fn partition_by(&self, num_reduce_parts: usize) -> Dataset<(K, V)> {
        self.group_by_key(num_reduce_parts).flat_map(|(k, vs)| {
            vs.into_iter()
                .map(|v| (k.clone(), v))
                .collect::<Vec<(K, V)>>()
        })
    }

    /// Transform values, keeping keys (and key partitioning semantics).
    pub fn map_values<U: Data>(
        &self,
        f: impl Fn(V) -> U + Send + Sync + 'static,
    ) -> Dataset<(K, U)> {
        self.map(move |(k, v)| (k, f(v)))
    }

    pub fn keys(&self) -> Dataset<K> {
        self.map(|(k, _)| k)
    }

    pub fn values(&self) -> Dataset<V> {
        self.map(|(_, v)| v)
    }

    /// Group both datasets by key in one pass (two shuffles, one reduce).
    pub fn co_group<W: Data>(
        &self,
        other: &Dataset<(K, W)>,
        num_reduce_parts: usize,
    ) -> Dataset<(K, (Vec<V>, Vec<W>))> {
        let sid_left = self.engine.new_shuffle_id();
        let sid_right = self.engine.new_shuffle_id();
        let deps = vec![
            DepMeta {
                parent: self.op.id(),
                shuffle: Some(sid_left),
            },
            DepMeta {
                parent: other.op.id(),
                shuffle: Some(sid_right),
            },
        ];
        let (id, guard) = register_op(
            &self.engine,
            "coGroup",
            num_reduce_parts,
            deps,
            vec![sid_left, sid_right],
        );
        Dataset {
            engine: Arc::clone(&self.engine),
            op: Arc::new(CoGroupOp::new(
                &self.engine,
                id,
                guard,
                sid_left,
                sid_right,
                Arc::clone(&self.op),
                Arc::clone(&other.op),
                num_reduce_parts,
            )),
        }
    }

    /// Inner join on key (the paper's Algorithm 1, step 9: joining the
    /// per-SNP inner sums with the SNP weights).
    pub fn join<W: Data>(
        &self,
        other: &Dataset<(K, W)>,
        num_reduce_parts: usize,
    ) -> Dataset<(K, (V, W))> {
        self.co_group(other, num_reduce_parts)
            .flat_map(|(k, (vs, ws))| {
                let mut out = Vec::with_capacity(vs.len() * ws.len());
                for v in &vs {
                    for w in &ws {
                        out.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
                out
            })
    }

    /// Collect to a driver-side map. Later duplicates of a key win, as in
    /// Spark's `collectAsMap`.
    pub fn collect_as_map(&self) -> HashMap<K, V> {
        self.collect().into_iter().collect()
    }
}
