//! A Spark-like dataflow engine, built from scratch for the SparkScore
//! reproduction.
//!
//! The paper implements its algorithms on Apache Spark and leans on four of
//! Spark's properties: lazy partitioned datasets with rich operators,
//! explicit in-memory **caching** (the Monte Carlo method's `U` RDD),
//! **lineage-based fault tolerance**, and cluster task scheduling with data
//! locality. This crate provides all four over the simulated cluster and
//! DFS substrates:
//!
//! * [`Dataset`] — lazy transformations (`map`, `filter`, `flat_map`,
//!   `map_partitions`, `union`, `key_by`, and keyed `reduce_by_key`,
//!   `group_by_key`, `combine_by_key`, `join`, `co_group`, `partition_by`)
//!   and eager actions (`collect`, `count`, `reduce`, `fold`, `take`).
//! * [`Engine`] — builds datasets (`parallelize`, `text_file`), runs jobs
//!   (stage planning at shuffle boundaries, cache-aware lineage pruning),
//!   broadcasts read-only values, applies fault plans, and accounts
//!   deterministic **virtual time** on the configured cluster shape.
//! * [`Broadcast`] — read-only values shipped once per node.
//!
//! # Example
//!
//! ```
//! use sparkscore_cluster::ClusterSpec;
//! use sparkscore_rdd::Engine;
//!
//! let engine = Engine::builder(ClusterSpec::m3_2xlarge(4)).build();
//! let squares = engine
//!     .parallelize((0u64..1000).collect::<Vec<_>>(), 8)
//!     .map(|x| x * x)
//!     .cache();
//! assert_eq!(squares.count(), 1000);
//! let total: u64 = squares.reduce(|a, b| a + b).unwrap();
//! assert_eq!(total, (0u64..1000).map(|x| x * x).sum::<u64>());
//! ```

// Closure trait objects (`Arc<dyn Fn(...) -> ... + Send + Sync>`) are the
// native vocabulary of a dataflow engine; aliasing them away would hide the
// one piece of information that matters at each site.
#![allow(clippy::type_complexity)]

pub mod cache;
pub mod context;
pub mod dataset;
pub mod engine;
pub mod estimate;
pub mod events;
pub mod gemm;
pub mod ledger;
pub mod meta;
pub mod metrics;
pub mod ops;
pub mod pool;
pub mod profiler;
pub mod recorder;
pub mod service;
pub mod shuffle;

pub use context::TaskCtx;
pub use dataset::Dataset;
pub use engine::{Broadcast, Engine, EngineBuilder};
pub use estimate::EstimateSize;
pub use events::{
    ConsoleProgressListener, EngineEvent, EventBus, EventListener, EventLogListener, FaultDetail,
    MemoryEventListener, RegistryListener, SpanContext, StageKind, StageSummaryListener,
    TaskMetrics,
};
pub use gemm::{plan_tiles, BroadcastTileCache, ReplicateTile};
pub use ledger::{MemCategory, MemReading, MemoryLedger};
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use ops::shuffled::Aggregator;
pub use ops::Data;
pub use pool::{ParticipantSnapshot, ParticipantState, PoolDiagnostics, PoolSnapshot};
pub use profiler::{PoolProfile, PoolProfiler, ProfilerBuilder};
pub use recorder::{set_thread_tenant, FlightRecorder, JobStatus};
pub use service::{
    AdmissionQueue, JobInfo, JobService, JobServiceBuilder, JobState, QueueStats, QueueStatus,
    RejectReason, ServiceConfig, ShutdownMode, TenantConfig, TenantStatus,
};
pub use shuffle::SHUFFLE_SHARDS;

/// Identifier of one operator in a lineage graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u64);

/// Identifier of one shuffle dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShuffleId(pub u64);
