//! Sampling pool profiler: wall-clock attribution of executor time.
//!
//! [`PoolProfiler`] runs a background thread that periodically snapshots
//! the executor pool ([`crate::pool::PoolDiagnostics::snapshot`]) — each
//! participant's running/stealing/parked state, the span it is executing,
//! and the live queue depths — and accumulates the samples into a
//! wall-clock-attributed profile: `state_samples × interval` per
//! participant. Each sample also refreshes a set of live gauges (cache
//! bytes and pressure, shuffle store occupancy, flight-recorder backlog)
//! in an optional shared [`Registry`], so the ops endpoint's `metrics`
//! output reflects the engine's *current* state, not just event-derived
//! aggregates.
//!
//! The profiler holds only a `Weak<Engine>`: dropping the engine stops
//! the sampling thread on its next tick, so a profiler can never keep an
//! engine (or its pool threads) alive.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use crate::engine::Engine;
use crate::ledger::MemCategory;
use crate::metrics::{Gauge, Registry};
use crate::pool::ParticipantState;
use crate::recorder::FlightRecorder;

/// Default sampling interval.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(10);

/// Accumulated attribution for one pool participant.
#[derive(Debug, Clone, Default)]
pub struct ParticipantProfile {
    /// Samples seen in each state.
    pub running_samples: u64,
    pub stealing_samples: u64,
    pub parked_samples: u64,
    /// Span id observed at the latest sample (0 = between tasks).
    pub current_span: u64,
    /// State observed at the latest sample.
    pub current_state: ParticipantState,
}

impl ParticipantProfile {
    /// Estimated wall time in each state (`samples × interval`).
    pub fn attributed_ns(&self, interval_ns: u64) -> (u64, u64, u64) {
        (
            self.running_samples * interval_ns,
            self.stealing_samples * interval_ns,
            self.parked_samples * interval_ns,
        )
    }

    fn busy_fraction(&self) -> f64 {
        let total = self.running_samples + self.stealing_samples + self.parked_samples;
        if total == 0 {
            return 0.0;
        }
        self.running_samples as f64 / total as f64
    }
}

/// A point-in-time copy of the profiler's accumulated state.
#[derive(Debug, Clone, Default)]
pub struct PoolProfile {
    /// Total sampling ticks taken.
    pub samples: u64,
    /// Sampling interval, nanoseconds.
    pub interval_ns: u64,
    pub participants: Vec<ParticipantProfile>,
    /// Samples during which a stage was being executed.
    pub stage_active_samples: u64,
    /// Deepest total task-queue backlog observed in any single sample.
    pub max_queue_depth: usize,
}

impl PoolProfile {
    /// Deterministically formatted text report (values depend on timing).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pool profile: {} samples @ {}ms, stage active in {} ({} max queued tasks)",
            self.samples,
            self.interval_ns / 1_000_000,
            self.stage_active_samples,
            self.max_queue_depth,
        );
        let _ = writeln!(out, "participant  running  stealing  parked  busy%  span");
        for (i, p) in self.participants.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<11}  {:<7}  {:<8}  {:<6}  {:<5.1}  {}",
                i,
                p.running_samples,
                p.stealing_samples,
                p.parked_samples,
                100.0 * p.busy_fraction(),
                p.current_span,
            );
        }
        out
    }
}

struct ProfilerShared {
    stop: AtomicBool,
    profile: Mutex<PoolProfile>,
}

/// Live gauges the sampler refreshes each tick.
struct LiveGauges {
    cache_used_bytes: Arc<Gauge>,
    cache_budget_bytes: Arc<Gauge>,
    cache_pressure_pct: Arc<Gauge>,
    shuffle_stored_bytes: Arc<Gauge>,
    shuffle_shard_occupancy_max: Arc<Gauge>,
    shuffle_shards_occupied: Arc<Gauge>,
    pool_running: Arc<Gauge>,
    pool_stealing: Arc<Gauge>,
    pool_parked: Arc<Gauge>,
    pool_queue_depth: Arc<Gauge>,
    recorder_backlog_events: Arc<Gauge>,
    /// Per-category ledger gauges, in [`MemCategory::ALL`] order.
    mem_used: Vec<Arc<Gauge>>,
    mem_peak: Vec<Arc<Gauge>>,
}

impl LiveGauges {
    fn new(registry: &Registry) -> Self {
        let g = |name: &str, help: &str| registry.gauge(name, help);
        LiveGauges {
            cache_used_bytes: g(
                "sparkscore_cache_used_bytes",
                "Bytes resident in the block cache",
            ),
            cache_budget_bytes: g("sparkscore_cache_budget_bytes", "Block cache byte budget"),
            cache_pressure_pct: g(
                "sparkscore_cache_pressure_pct",
                "Cache fill as a percentage of the budget",
            ),
            shuffle_stored_bytes: g(
                "sparkscore_shuffle_stored_bytes",
                "Bytes held as shuffle map outputs",
            ),
            shuffle_shard_occupancy_max: g(
                "sparkscore_shuffle_shard_occupancy_max",
                "Map outputs in the fullest shuffle lock shard",
            ),
            shuffle_shards_occupied: g(
                "sparkscore_shuffle_shards_occupied",
                "Shuffle lock shards holding at least one map output",
            ),
            pool_running: g(
                "sparkscore_pool_participants_running",
                "Pool participants executing tasks at the last sample",
            ),
            pool_stealing: g(
                "sparkscore_pool_participants_stealing",
                "Pool participants scanning for work at the last sample",
            ),
            pool_parked: g(
                "sparkscore_pool_participants_parked",
                "Pool participants idle at the last sample",
            ),
            pool_queue_depth: g(
                "sparkscore_pool_queue_depth",
                "Unclaimed tasks across all participant ranges at the last sample",
            ),
            recorder_backlog_events: g(
                "sparkscore_recorder_backlog_events",
                "Events retained by the flight recorder",
            ),
            mem_used: MemCategory::ALL
                .iter()
                .map(|c| {
                    registry.gauge(
                        &format!("sparkscore_mem_{}_used_bytes", c.name()),
                        "Bytes currently resident in this memory-ledger category",
                    )
                })
                .collect(),
            mem_peak: MemCategory::ALL
                .iter()
                .map(|c| {
                    registry.gauge(
                        &format!("sparkscore_mem_{}_peak_bytes", c.name()),
                        "High watermark of this memory-ledger category",
                    )
                })
                .collect(),
        }
    }
}

/// Builder for a [`PoolProfiler`]; see the module docs.
pub struct ProfilerBuilder {
    engine: Weak<Engine>,
    interval: Duration,
    registry: Option<Arc<Registry>>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl ProfilerBuilder {
    /// Sampling interval (default [`DEFAULT_INTERVAL`]).
    pub fn interval(mut self, interval: Duration) -> Self {
        self.interval = interval.max(Duration::from_micros(100));
        self
    }

    /// Registry to refresh live gauges in each sample (e.g. the one behind
    /// a [`crate::events::RegistryListener`], so `metrics` scrapes see
    /// both event aggregates and live state).
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Flight recorder whose retention backlog should be exported.
    pub fn recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Start the sampling thread.
    pub fn start(self) -> PoolProfiler {
        let shared = Arc::new(ProfilerShared {
            stop: AtomicBool::new(false),
            profile: Mutex::new(PoolProfile {
                interval_ns: u64::try_from(self.interval.as_nanos()).unwrap_or(u64::MAX),
                ..PoolProfile::default()
            }),
        });
        let gauges = self.registry.as_ref().map(|r| LiveGauges::new(r));
        let thread_shared = Arc::clone(&shared);
        let engine = self.engine;
        let recorder = self.recorder;
        let interval = self.interval;
        let handle = std::thread::Builder::new()
            .name("sparkscore-profiler".to_string())
            .spawn(move || {
                sample_loop(&thread_shared, &engine, gauges, recorder, interval);
            })
            .expect("spawn profiler thread");
        PoolProfiler {
            shared,
            handle: Mutex::new(Some(handle)),
        }
    }
}

fn sample_loop(
    shared: &ProfilerShared,
    engine: &Weak<Engine>,
    gauges: Option<LiveGauges>,
    recorder: Option<Arc<FlightRecorder>>,
    interval: Duration,
) {
    while !shared.stop.load(Ordering::Acquire) {
        let Some(engine) = engine.upgrade() else {
            break; // engine gone: nothing left to sample
        };
        let snap = engine.pool_diagnostics().snapshot();
        let queue_depth: usize = snap.participants.iter().map(|p| p.queue_depth).sum();

        {
            let mut profile = shared.profile.lock();
            profile.samples += 1;
            if profile.participants.len() < snap.participants.len() {
                profile
                    .participants
                    .resize_with(snap.participants.len(), ParticipantProfile::default);
            }
            for (acc, p) in profile.participants.iter_mut().zip(&snap.participants) {
                match p.state {
                    ParticipantState::Running => acc.running_samples += 1,
                    ParticipantState::Stealing => acc.stealing_samples += 1,
                    ParticipantState::Parked => acc.parked_samples += 1,
                }
                acc.current_span = p.current_span;
                acc.current_state = p.state;
            }
            if snap.stage_active {
                profile.stage_active_samples += 1;
            }
            profile.max_queue_depth = profile.max_queue_depth.max(queue_depth);
        }

        if let Some(g) = &gauges {
            let used = engine.cache_used_bytes();
            let budget = engine.cache_budget_bytes();
            g.cache_used_bytes.set(used as i64);
            g.cache_budget_bytes.set(budget as i64);
            g.cache_pressure_pct
                .set((used * 100).checked_div(budget).unwrap_or(0) as i64);
            g.shuffle_stored_bytes
                .set(engine.shuffle_stored_bytes() as i64);
            let occupancy = engine.shuffle_shard_occupancy();
            g.shuffle_shard_occupancy_max
                .set(occupancy.iter().copied().max().unwrap_or(0) as i64);
            g.shuffle_shards_occupied
                .set(occupancy.iter().filter(|&&n| n > 0).count() as i64);
            let count = |state: ParticipantState| {
                snap.participants
                    .iter()
                    .filter(|p| p.state == state)
                    .count() as i64
            };
            g.pool_running.set(count(ParticipantState::Running));
            g.pool_stealing.set(count(ParticipantState::Stealing));
            g.pool_parked.set(count(ParticipantState::Parked));
            g.pool_queue_depth.set(queue_depth as i64);
            for (i, r) in engine.memory_snapshot().iter().enumerate() {
                g.mem_used[i].set(r.used as i64);
                g.mem_peak[i].set(r.peak as i64);
            }
            if let Some(rec) = &recorder {
                g.recorder_backlog_events.set(rec.backlog_events() as i64);
            }
        }

        drop(engine); // do not hold the engine across the sleep
        std::thread::sleep(interval);
    }
}

/// Handle to the running sampler. Stops (and joins) on [`PoolProfiler::stop`]
/// or drop.
pub struct PoolProfiler {
    shared: Arc<ProfilerShared>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl PoolProfiler {
    /// Start building a profiler for `engine`.
    pub fn builder(engine: &Arc<Engine>) -> ProfilerBuilder {
        ProfilerBuilder {
            engine: Arc::downgrade(engine),
            interval: DEFAULT_INTERVAL,
            registry: None,
            recorder: None,
        }
    }

    /// Current accumulated profile.
    pub fn profile(&self) -> PoolProfile {
        self.shared.profile.lock().clone()
    }

    /// Deterministically formatted text report of [`PoolProfiler::profile`].
    pub fn report(&self) -> String {
        self.profile().report()
    }

    /// Stop the sampling thread and wait for it to exit. Idempotent.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PoolProfiler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkscore_cluster::ClusterSpec;

    #[test]
    fn profiler_samples_and_stops() {
        let engine = Engine::builder(ClusterSpec::test_small(2))
            .host_threads(2)
            .build();
        let profiler = PoolProfiler::builder(&engine)
            .interval(Duration::from_millis(1))
            .start();
        // Run some work while sampling.
        for _ in 0..5 {
            let n: u64 = engine
                .parallelize((0u64..40_000).collect::<Vec<_>>(), 8)
                .map(|x| x.wrapping_mul(2654435761).rotate_left(7))
                .filter(|x| x % 3 != 0)
                .count() as u64;
            assert!(n > 0);
        }
        std::thread::sleep(Duration::from_millis(10));
        profiler.stop();
        let profile = profiler.profile();
        assert!(profile.samples > 0, "sampler must have ticked");
        assert_eq!(profile.participants.len(), 2);
        let report = profile.report();
        assert!(report.contains("pool profile:"), "{report}");
        let frozen = profile.samples;
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(profiler.profile().samples, frozen, "stop() halts sampling");
    }

    #[test]
    fn profiler_exports_live_gauges() {
        let registry = Arc::new(Registry::new());
        let recorder = Arc::new(FlightRecorder::new());
        let engine = Engine::builder(ClusterSpec::test_small(2))
            .host_threads(2)
            .listener(Arc::clone(&recorder) as Arc<dyn crate::events::EventListener>)
            .build();
        let profiler = PoolProfiler::builder(&engine)
            .interval(Duration::from_millis(1))
            .registry(Arc::clone(&registry))
            .recorder(Arc::clone(&recorder))
            .start();
        let cached = engine
            .parallelize((0u64..10_000).collect::<Vec<_>>(), 4)
            .map(|x| x + 1)
            .cache();
        assert_eq!(cached.count(), 10_000);
        std::thread::sleep(Duration::from_millis(10));
        profiler.stop();
        let text = registry.render_prometheus();
        assert!(text.contains("sparkscore_cache_used_bytes"), "{text}");
        assert!(
            text.contains("sparkscore_pool_participants_parked"),
            "{text}"
        );
        let used = registry.gauge("sparkscore_cache_used_bytes", "").get();
        assert!(used > 0, "cached blocks must show up in the gauge");
        let mem_used = registry
            .gauge("sparkscore_mem_block_cache_used_bytes", "")
            .get();
        assert_eq!(mem_used, used, "ledger gauge mirrors the cache gauge");
        assert!(
            text.contains("sparkscore_mem_shuffle_store_peak_bytes"),
            "{text}"
        );
        let backlog = registry
            .gauge("sparkscore_recorder_backlog_events", "")
            .get();
        assert!(backlog > 0, "recorder saw the job's events");
    }

    #[test]
    fn dropping_the_engine_stops_the_sampler() {
        let engine = Engine::builder(ClusterSpec::test_small(2))
            .host_threads(1)
            .build();
        let profiler = PoolProfiler::builder(&engine)
            .interval(Duration::from_millis(1))
            .start();
        drop(engine);
        // The thread exits on its next upgrade failure; stop() then joins
        // promptly rather than blocking forever.
        std::thread::sleep(Duration::from_millis(5));
        profiler.stop();
    }
}
