//! Always-on multi-tenant job service: the front-end that turns the
//! engine from "one binary, one job" into a long-running server.
//!
//! Two layers live here:
//!
//! * [`AdmissionQueue`] — a **pure** admission + scheduling data
//!   structure (no threads, no clocks): bounded global queue,
//!   per-tenant quotas, reject-with-reason admission, and a stride
//!   (weighted-fair) pick that never starves a nonempty tenant and is
//!   FIFO within each tenant. Being pure makes it exhaustively
//!   property-testable in isolation.
//! * [`JobService`] — the threaded wrapper: worker threads pull jobs
//!   from the queue and run them against one shared [`Engine`] (the
//!   persistent executor pool serializes concurrent stage submissions,
//!   so jobs interleave safely at stage granularity). Submission is
//!   asynchronous; callers get a job id back immediately and can
//!   [`JobService::wait`] on it. Panicking or erroring payloads land in
//!   [`JobState::Failed`] without taking the service down.
//!
//! The service is deterministic when driven deterministically: with one
//! worker and a paused submit-batch/resume protocol, the dispatch order
//! is exactly the stride schedule of the submitted jobs, and the
//! engine's virtual clock makes every job's cost reproducible — the
//! property the service-level test harness replays byte-for-byte.
//!
//! Observability: each worker tags its thread with the running job's
//! tenant (see [`crate::recorder::set_thread_tenant`]) so the flight
//! recorder attributes engine jobs to tenants, and an optional
//! [`Registry`] gets `sparkscore_service_*` counters and gauges.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::Engine;
use crate::metrics::{Counter, Gauge, Registry};
use crate::recorder::set_thread_tenant;

/// Pass advance for a weight-1 tenant; a tenant of weight `w` advances
/// `STRIDE_QUANTUM / w` per dispatched job, so higher weights are picked
/// proportionally more often.
pub const STRIDE_QUANTUM: u64 = 1 << 20;

/// Per-tenant quotas and scheduling weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Jobs this tenant may hold in the queue at once.
    pub max_queued: usize,
    /// Jobs this tenant may have running at once.
    pub max_running: usize,
    /// Fair-share weight (clamped to ≥ 1): a weight-3 tenant receives
    /// three dispatches for every one a weight-1 tenant receives, when
    /// both are backlogged.
    pub weight: u64,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            max_queued: 64,
            max_running: 1,
            weight: 1,
        }
    }
}

/// Why a submission was refused. Admission control answers immediately
/// and never silently drops: the caller always learns which bound it hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant was never registered.
    UnknownTenant,
    /// The service-wide queue bound is reached.
    QueueFull { capacity: usize },
    /// The tenant's own queued-job quota is reached.
    TenantQueueFull { limit: usize },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::UnknownTenant => write!(f, "unknown tenant"),
            RejectReason::QueueFull { capacity } => {
                write!(f, "service queue full (capacity {capacity})")
            }
            RejectReason::TenantQueueFull { limit } => {
                write!(f, "tenant queue full (limit {limit})")
            }
            RejectReason::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// Lifecycle of one service job. `Completed`, `Failed`, `Cancelled`, and
/// `TimedOut` are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Completed,
    Failed,
    Cancelled,
    /// Expired at its wall-clock queue deadline before a worker picked it
    /// (see [`JobService::submit_with_deadline`]). Running jobs are never
    /// killed — a deadline bounds time *to dispatch*, not execution.
    TimedOut,
}

impl JobState {
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled | JobState::TimedOut
        )
    }

    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
        }
    }
}

/// Monotonic job-flow counters; conservation between them is the
/// accounting invariant the property tests pin down
/// (see [`AdmissionQueue::conserved`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Admitted submissions.
    pub submitted: u64,
    /// Refused submissions (any [`RejectReason`]).
    pub rejected: u64,
    /// Jobs handed to a worker.
    pub dispatched: u64,
    /// Dispatched jobs that finished successfully.
    pub completed: u64,
    /// Dispatched jobs that finished in error (or panicked).
    pub failed: u64,
    /// Queued jobs removed before dispatch.
    pub cancelled: u64,
}

#[derive(Debug)]
struct TenantState {
    config: TenantConfig,
    /// Queued job ids in FIFO order.
    queue: VecDeque<u64>,
    running: usize,
    /// Stride-scheduler virtual pass; the eligible tenant with the
    /// smallest pass is picked next.
    pass: u64,
    stats: QueueStats,
}

/// Pure bounded multi-tenant admission queue with stride (weighted-fair)
/// scheduling. No threads, no interior mutability — drive it with `&mut`
/// and every interleaving is replayable.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    next_job: u64,
    tenants: BTreeMap<String, TenantState>,
    queued_total: usize,
    running_total: usize,
    /// Pass of the most recently picked tenant (pre-advance): the
    /// scheduler's global virtual time. A tenant going from idle to
    /// backlogged fast-forwards here so its accumulated "unused" credit
    /// cannot starve everyone else.
    global_pass: u64,
    stats: QueueStats,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` queued jobs service-wide.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            next_job: 0,
            tenants: BTreeMap::new(),
            queued_total: 0,
            running_total: 0,
            global_pass: 0,
            stats: QueueStats::default(),
        }
    }

    /// Register (or reconfigure) a tenant. Reconfiguring keeps its queue
    /// and counters.
    pub fn register_tenant(&mut self, name: &str, config: TenantConfig) {
        self.tenants
            .entry(name.to_string())
            .and_modify(|t| t.config = config)
            .or_insert_with(|| TenantState {
                config,
                queue: VecDeque::new(),
                running: 0,
                pass: 0,
                stats: QueueStats::default(),
            });
    }

    /// Admit one job for `tenant`, or say exactly why not.
    pub fn submit(&mut self, tenant: &str) -> Result<u64, RejectReason> {
        let capacity = self.capacity;
        let global_pass = self.global_pass;
        let Some(t) = self.tenants.get_mut(tenant) else {
            self.stats.rejected += 1;
            return Err(RejectReason::UnknownTenant);
        };
        if self.queued_total >= capacity {
            t.stats.rejected += 1;
            self.stats.rejected += 1;
            return Err(RejectReason::QueueFull { capacity });
        }
        if t.queue.len() >= t.config.max_queued {
            let limit = t.config.max_queued;
            t.stats.rejected += 1;
            self.stats.rejected += 1;
            return Err(RejectReason::TenantQueueFull { limit });
        }
        // A tenant re-entering after idling joins at the scheduler's
        // current virtual time instead of with banked credit.
        if t.queue.is_empty() && t.running == 0 {
            t.pass = t.pass.max(global_pass);
        }
        let job = self.next_job;
        self.next_job += 1;
        t.queue.push_back(job);
        t.stats.submitted += 1;
        self.stats.submitted += 1;
        self.queued_total += 1;
        Ok(job)
    }

    /// Dispatch the next job: among tenants with queued work and spare
    /// running quota, the one with the smallest pass wins (ties broken by
    /// tenant name, so picking is total-ordered and deterministic); FIFO
    /// within the tenant.
    pub fn pick(&mut self) -> Option<(String, u64)> {
        let name = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.queue.is_empty() && t.running < t.config.max_running)
            .min_by_key(|(name, t)| (t.pass, name.as_str()))?
            .0
            .clone();
        let t = self.tenants.get_mut(&name).expect("picked tenant exists");
        let job = t.queue.pop_front().expect("picked tenant has queued work");
        self.global_pass = t.pass;
        t.pass += STRIDE_QUANTUM / t.config.weight.clamp(1, STRIDE_QUANTUM);
        t.running += 1;
        t.stats.dispatched += 1;
        self.stats.dispatched += 1;
        self.queued_total -= 1;
        self.running_total += 1;
        Some((name, job))
    }

    /// Record the end of a dispatched job for `tenant`.
    pub fn finish(&mut self, tenant: &str, failed: bool) {
        let t = self
            .tenants
            .get_mut(tenant)
            .expect("finish() for an unregistered tenant");
        assert!(t.running > 0, "finish() without a running job");
        t.running -= 1;
        self.running_total -= 1;
        if failed {
            t.stats.failed += 1;
            self.stats.failed += 1;
        } else {
            t.stats.completed += 1;
            self.stats.completed += 1;
        }
    }

    /// Remove a still-queued job. `false` if it is not queued for
    /// `tenant` (already dispatched, cancelled, or never admitted).
    pub fn cancel(&mut self, tenant: &str, job: u64) -> bool {
        let Some(t) = self.tenants.get_mut(tenant) else {
            return false;
        };
        let Some(i) = t.queue.iter().position(|&j| j == job) else {
            return false;
        };
        t.queue.remove(i);
        t.stats.cancelled += 1;
        self.stats.cancelled += 1;
        self.queued_total -= 1;
        true
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn queued_total(&self) -> usize {
        self.queued_total
    }

    pub fn running_total(&self) -> usize {
        self.running_total
    }

    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    pub fn tenant_queued(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.queue.len())
    }

    pub fn tenant_running(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.running)
    }

    pub fn tenant_stats(&self, tenant: &str) -> Option<QueueStats> {
        self.tenants.get(tenant).map(|t| t.stats)
    }

    /// Queued job ids of `tenant`, FIFO order.
    pub fn tenant_queue(&self, tenant: &str) -> Vec<u64> {
        self.tenants
            .get(tenant)
            .map_or_else(Vec::new, |t| t.queue.iter().copied().collect())
    }

    /// Per-tenant status rows, sorted by tenant name.
    pub fn tenant_statuses(&self) -> Vec<TenantStatus> {
        self.tenants
            .iter()
            .map(|(name, t)| TenantStatus {
                name: name.clone(),
                weight: t.config.weight.max(1),
                max_queued: t.config.max_queued,
                max_running: t.config.max_running,
                queued: t.queue.len(),
                running: t.running,
                pass: t.pass,
                stats: t.stats,
            })
            .collect()
    }

    /// The accounting invariant: globally and per tenant,
    /// `submitted = queued + dispatched + cancelled` and
    /// `dispatched = running + completed + failed` — no job is ever lost
    /// or double-counted across any interleaving.
    pub fn conserved(&self) -> bool {
        let conserves = |s: &QueueStats, queued: usize, running: usize| {
            s.submitted == queued as u64 + s.dispatched + s.cancelled
                && s.dispatched == running as u64 + s.completed + s.failed
        };
        if !conserves(&self.stats, self.queued_total, self.running_total) {
            return false;
        }
        let mut queued = 0;
        let mut running = 0;
        for t in self.tenants.values() {
            if !conserves(&t.stats, t.queue.len(), t.running) {
                return false;
            }
            queued += t.queue.len();
            running += t.running;
        }
        queued == self.queued_total && running == self.running_total
    }
}

/// One row of the `tenants` status table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStatus {
    pub name: String,
    pub weight: u64,
    pub max_queued: usize,
    pub max_running: usize,
    pub queued: usize,
    pub running: usize,
    /// Stride-scheduler virtual pass (diagnostic).
    pub pass: u64,
    pub stats: QueueStats,
}

/// Service-wide status snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueStatus {
    pub capacity: usize,
    pub queued: usize,
    pub running: usize,
    pub paused: bool,
    pub shutting_down: bool,
    pub stats: QueueStats,
}

/// One row of the live job table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInfo {
    pub id: u64,
    pub tenant: String,
    pub state: JobState,
}

/// How [`JobService::shutdown`] treats still-queued jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Run everything already admitted, then stop.
    Drain,
    /// Cancel queued jobs; only jobs already running finish.
    Abort,
}

/// Service tunables beyond the per-tenant quotas.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Service-wide queued-job bound.
    pub queue_capacity: usize,
    /// Worker threads pulling from the queue. One worker yields fully
    /// deterministic dispatch *and* execution order.
    pub workers: usize,
    /// Terminal job records retained for status queries before the
    /// oldest are pruned (bounds the memory of an always-on service).
    pub terminal_history: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 256,
            workers: 2,
            terminal_history: 4096,
        }
    }
}

/// A job payload runs against the shared engine and reports success or a
/// failure message; panics are caught and treated as failures.
pub type JobResult = Result<(), String>;
type Payload = Box<dyn FnOnce(&Arc<Engine>) -> JobResult + Send + 'static>;

struct JobRecord {
    tenant: String,
    state: JobState,
    error: Option<String>,
}

struct ServiceMetrics {
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    cancelled: Arc<Counter>,
    timed_out: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    running_jobs: Arc<Gauge>,
}

impl ServiceMetrics {
    fn new(registry: &Registry, tenants: usize) -> Self {
        registry
            .gauge(
                "sparkscore_service_tenants",
                "Tenants registered with the job service",
            )
            .set(tenants as i64);
        ServiceMetrics {
            submitted: registry.counter(
                "sparkscore_service_submitted_total",
                "Jobs admitted to the service queue",
            ),
            rejected: registry.counter(
                "sparkscore_service_rejected_total",
                "Submissions refused by admission control",
            ),
            completed: registry.counter(
                "sparkscore_service_completed_total",
                "Service jobs finished successfully",
            ),
            failed: registry.counter(
                "sparkscore_service_failed_total",
                "Service jobs finished in error",
            ),
            cancelled: registry.counter(
                "sparkscore_service_cancelled_total",
                "Queued service jobs cancelled before dispatch",
            ),
            timed_out: registry.counter(
                "sparkscore_service_timed_out_total",
                "Queued service jobs expired at their wall-clock deadline",
            ),
            queue_depth: registry.gauge(
                "sparkscore_service_queue_depth",
                "Jobs currently queued service-wide",
            ),
            running_jobs: registry.gauge(
                "sparkscore_service_running_jobs",
                "Service jobs currently running",
            ),
        }
    }

    fn sync(&self, queue: &AdmissionQueue) {
        self.queue_depth.set(queue.queued_total() as i64);
        self.running_jobs.set(queue.running_total() as i64);
    }
}

struct ServiceState {
    queue: AdmissionQueue,
    jobs: BTreeMap<u64, JobRecord>,
    payloads: BTreeMap<u64, Payload>,
    /// Wall-clock dispatch deadlines of still-queued jobs; a worker
    /// expires entries whose instant has passed before its next pick.
    deadlines: BTreeMap<u64, Instant>,
    paused: bool,
    shutdown: Option<ShutdownMode>,
    /// Ids of dispatched jobs in the order they reached a terminal
    /// state — with one worker this is the deterministic replay record.
    completion_order: Vec<u64>,
    terminal_history: usize,
    terminal_count: usize,
}

impl ServiceState {
    /// Move `job` to a terminal state and prune old terminal records past
    /// the history bound.
    fn finish_job(&mut self, job: u64, state: JobState, error: Option<String>) {
        if let Some(rec) = self.jobs.get_mut(&job) {
            rec.state = state;
            rec.error = error;
        }
        self.terminal_count += 1;
        if self.terminal_count > self.terminal_history {
            let victim = self
                .jobs
                .iter()
                .find(|(_, r)| r.state.is_terminal())
                .map(|(&id, _)| id);
            if let Some(id) = victim {
                self.jobs.remove(&id);
                self.terminal_count -= 1;
            }
            if self.completion_order.len() > self.terminal_history {
                let excess = self.completion_order.len() - self.terminal_history;
                self.completion_order.drain(..excess);
            }
        }
    }
}

struct Shared {
    engine: Arc<Engine>,
    state: Mutex<ServiceState>,
    /// Signalled when work may have become pickable (submission, resume,
    /// a completion freeing running quota, shutdown).
    work: Condvar,
    /// Signalled on every terminal transition.
    done: Condvar,
    metrics: Option<ServiceMetrics>,
}

/// Configures and starts a [`JobService`].
pub struct JobServiceBuilder {
    engine: Arc<Engine>,
    config: ServiceConfig,
    tenants: Vec<(String, TenantConfig)>,
    registry: Option<Arc<Registry>>,
    start_paused: bool,
}

impl JobServiceBuilder {
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    pub fn terminal_history(mut self, jobs: usize) -> Self {
        self.config.terminal_history = jobs.max(1);
        self
    }

    /// Register a tenant; submissions for unregistered tenants are
    /// rejected with [`RejectReason::UnknownTenant`].
    pub fn tenant(mut self, name: impl Into<String>, config: TenantConfig) -> Self {
        self.tenants.push((name.into(), config));
        self
    }

    /// Export `sparkscore_service_*` counters and gauges to `registry`.
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Start with dispatch paused: submissions queue but nothing runs
    /// until [`JobService::resume`] — the deterministic-batch protocol
    /// the test harness uses.
    pub fn start_paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Spawn the workers and return the running service.
    pub fn build(self) -> Arc<JobService> {
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        for (name, cfg) in &self.tenants {
            queue.register_tenant(name, *cfg);
        }
        let metrics = self
            .registry
            .as_ref()
            .map(|r| ServiceMetrics::new(r, self.tenants.len()));
        let shared = Arc::new(Shared {
            engine: self.engine,
            state: Mutex::new(ServiceState {
                queue,
                jobs: BTreeMap::new(),
                payloads: BTreeMap::new(),
                deadlines: BTreeMap::new(),
                paused: self.start_paused,
                shutdown: None,
                completion_order: Vec::new(),
                terminal_history: self.config.terminal_history,
                terminal_count: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            metrics,
        });
        let workers = (0..self.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sparkscore-svc-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Arc::new(JobService {
            shared,
            workers: Mutex::new(Some(workers)),
        })
    }
}

/// The running multi-tenant job service. See the module docs.
pub struct JobService {
    shared: Arc<Shared>,
    workers: Mutex<Option<Vec<JoinHandle<()>>>>,
}

/// Expire still-queued jobs whose wall-clock deadline has passed:
/// admission-queue bookkeeping via `cancel` (conservation holds), a
/// typed [`JobState::TimedOut`] terminal record, and the service metric.
/// Returns whether anything expired (waiters need a `done` signal).
fn expire_deadlines(shared: &Shared, st: &mut ServiceState) -> bool {
    let now = Instant::now();
    let expired: Vec<u64> = st
        .deadlines
        .iter()
        .filter(|(_, &d)| d <= now)
        .map(|(&j, _)| j)
        .collect();
    let mut any = false;
    for job in expired {
        st.deadlines.remove(&job);
        let Some(tenant) = st
            .jobs
            .get(&job)
            .filter(|r| r.state == JobState::Queued)
            .map(|r| r.tenant.clone())
        else {
            continue;
        };
        if st.queue.cancel(&tenant, job) {
            st.payloads.remove(&job);
            st.finish_job(
                job,
                JobState::TimedOut,
                Some("queue deadline exceeded".to_string()),
            );
            if let Some(m) = &shared.metrics {
                m.timed_out.inc();
            }
            any = true;
        }
    }
    if any {
        if let Some(m) = &shared.metrics {
            m.sync(&st.queue);
        }
    }
    any
}

fn worker_loop(shared: &Shared) {
    loop {
        let (tenant, job, payload) = {
            let mut st = shared.state.lock().expect("service lock");
            loop {
                // Deadlines expire on wall time regardless of pause or
                // drain state — a paused service still times jobs out.
                if expire_deadlines(shared, &mut st) {
                    shared.done.notify_all();
                }
                if let Some(mode) = st.shutdown {
                    let done = match mode {
                        ShutdownMode::Abort => true,
                        ShutdownMode::Drain => st.queue.queued_total() == 0,
                    };
                    if done {
                        return;
                    }
                    // Drain with queued work: keep dispatching below.
                }
                if !st.paused {
                    if let Some((tenant, job)) = st.queue.pick() {
                        st.deadlines.remove(&job);
                        let payload = st.payloads.remove(&job).expect("picked job has a payload");
                        if let Some(rec) = st.jobs.get_mut(&job) {
                            rec.state = JobState::Running;
                        }
                        if let Some(m) = &shared.metrics {
                            m.sync(&st.queue);
                        }
                        break (tenant, job, payload);
                    }
                }
                // Sleep until woken — or until the earliest pending
                // deadline, so expiry needs no external nudge.
                match st.deadlines.values().min().copied() {
                    Some(earliest) => {
                        let timeout = earliest.saturating_duration_since(Instant::now());
                        let (guard, _) = shared
                            .work
                            .wait_timeout(st, timeout.max(Duration::from_micros(50)))
                            .expect("service lock");
                        st = guard;
                    }
                    None => st = shared.work.wait(st).expect("service lock"),
                }
            }
        };
        // Tag the thread so every engine event this job emits (the event
        // bus runs listeners on the emitting thread) is attributed to
        // the tenant by the flight recorder.
        set_thread_tenant(Some(&tenant));
        let outcome = catch_unwind(AssertUnwindSafe(|| payload(&shared.engine)));
        set_thread_tenant(None);
        let (failed, error) = match outcome {
            Ok(Ok(())) => (false, None),
            Ok(Err(msg)) => (true, Some(msg)),
            Err(panic) => (true, Some(panic_message(&*panic))),
        };
        let mut st = shared.state.lock().expect("service lock");
        st.queue.finish(&tenant, failed);
        let state = if failed {
            JobState::Failed
        } else {
            JobState::Completed
        };
        st.finish_job(job, state, error);
        st.completion_order.push(job);
        if let Some(m) = &shared.metrics {
            if failed {
                m.failed.inc();
            } else {
                m.completed.inc();
            }
            m.sync(&st.queue);
        }
        drop(st);
        // A completion can free per-tenant running quota, or satisfy a
        // drain: wake both sides.
        shared.work.notify_all();
        shared.done.notify_all();
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic".to_string()
    }
}

impl JobService {
    pub fn builder(engine: Arc<Engine>) -> JobServiceBuilder {
        JobServiceBuilder {
            engine,
            config: ServiceConfig::default(),
            tenants: Vec::new(),
            registry: None,
            start_paused: false,
        }
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Submit one job for `tenant`. Returns the job id immediately — the
    /// payload runs later on a worker thread.
    pub fn submit(
        &self,
        tenant: &str,
        payload: impl FnOnce(&Arc<Engine>) -> JobResult + Send + 'static,
    ) -> Result<u64, RejectReason> {
        self.submit_inner(tenant, None, Box::new(payload))
    }

    /// Submit one job that must be *dispatched* within `deadline` of
    /// submission: if no worker picks it up in time (backlog, pause, or
    /// drain), it expires into the terminal [`JobState::TimedOut`] instead
    /// of running stale. A job already running when the instant passes is
    /// unaffected — deadlines bound queue latency, not execution time.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        deadline: Duration,
        payload: impl FnOnce(&Arc<Engine>) -> JobResult + Send + 'static,
    ) -> Result<u64, RejectReason> {
        self.submit_inner(tenant, Some(deadline), Box::new(payload))
    }

    fn submit_inner(
        &self,
        tenant: &str,
        deadline: Option<Duration>,
        payload: Payload,
    ) -> Result<u64, RejectReason> {
        let deadline = deadline.map(|d| Instant::now() + d);
        let mut st = self.shared.state.lock().expect("service lock");
        if st.shutdown.is_some() {
            if let Some(m) = &self.shared.metrics {
                m.rejected.inc();
            }
            return Err(RejectReason::ShuttingDown);
        }
        let outcome = st.queue.submit(tenant);
        match &outcome {
            Ok(job) => {
                st.jobs.insert(
                    *job,
                    JobRecord {
                        tenant: tenant.to_string(),
                        state: JobState::Queued,
                        error: None,
                    },
                );
                st.payloads.insert(*job, payload);
                if let Some(d) = deadline {
                    st.deadlines.insert(*job, d);
                }
                if let Some(m) = &self.shared.metrics {
                    m.submitted.inc();
                    m.sync(&st.queue);
                }
                drop(st);
                self.shared.work.notify_all();
            }
            Err(_) => {
                if let Some(m) = &self.shared.metrics {
                    m.rejected.inc();
                }
            }
        }
        outcome
    }

    /// Cancel a still-queued job. `false` once it is running or terminal.
    pub fn cancel(&self, job: u64) -> bool {
        let mut st = self.shared.state.lock().expect("service lock");
        let Some(tenant) = st
            .jobs
            .get(&job)
            .filter(|r| r.state == JobState::Queued)
            .map(|r| r.tenant.clone())
        else {
            return false;
        };
        if !st.queue.cancel(&tenant, job) {
            return false;
        }
        st.payloads.remove(&job);
        st.deadlines.remove(&job);
        st.finish_job(job, JobState::Cancelled, None);
        if let Some(m) = &self.shared.metrics {
            m.cancelled.inc();
            m.sync(&st.queue);
        }
        drop(st);
        self.shared.done.notify_all();
        true
    }

    /// Stop dispatching new jobs (running jobs continue).
    pub fn pause(&self) {
        self.shared.state.lock().expect("service lock").paused = true;
    }

    /// Resume dispatching.
    pub fn resume(&self) {
        self.shared.state.lock().expect("service lock").paused = false;
        self.shared.work.notify_all();
    }

    /// Block until `job` reaches a terminal state; `None` for an id this
    /// service never admitted (or whose record was pruned).
    pub fn wait(&self, job: u64) -> Option<JobState> {
        let mut st = self.shared.state.lock().expect("service lock");
        loop {
            match st.jobs.get(&job) {
                None => return None,
                Some(rec) if rec.state.is_terminal() => return Some(rec.state),
                Some(_) => st = self.shared.done.wait(st).expect("service lock"),
            }
        }
    }

    /// Block until nothing is queued or running. (With the service
    /// paused this waits only for running jobs.)
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().expect("service lock");
        while st.queue.queued_total() > 0 || st.queue.running_total() > 0 {
            st = self.shared.done.wait(st).expect("service lock");
        }
    }

    /// Stop the service: refuse new submissions, handle queued jobs per
    /// `mode`, and join every worker. Idempotent (later calls keep the
    /// first mode).
    pub fn shutdown(&self, mode: ShutdownMode) {
        {
            let mut st = self.shared.state.lock().expect("service lock");
            if st.shutdown.is_none() {
                st.shutdown = Some(mode);
            }
            st.paused = false;
            if st.shutdown == Some(ShutdownMode::Abort) {
                let queued: Vec<(String, u64)> = st
                    .jobs
                    .iter()
                    .filter(|(_, r)| r.state == JobState::Queued)
                    .map(|(&id, r)| (r.tenant.clone(), id))
                    .collect();
                for (tenant, job) in queued {
                    if st.queue.cancel(&tenant, job) {
                        st.payloads.remove(&job);
                        st.deadlines.remove(&job);
                        st.finish_job(job, JobState::Cancelled, None);
                        if let Some(m) = &self.shared.metrics {
                            m.cancelled.inc();
                        }
                    }
                }
                if let Some(m) = &self.shared.metrics {
                    m.sync(&st.queue);
                }
            }
        }
        self.shared.work.notify_all();
        self.shared.done.notify_all();
        let handles = self.workers.lock().expect("worker handles").take();
        if let Some(handles) = handles {
            for h in handles {
                let _ = h.join();
            }
        }
    }

    /// Current state of one job.
    pub fn job_state(&self, job: u64) -> Option<JobState> {
        self.shared
            .state
            .lock()
            .expect("service lock")
            .jobs
            .get(&job)
            .map(|r| r.state)
    }

    /// The failure message of a [`JobState::Failed`] job.
    pub fn job_error(&self, job: u64) -> Option<String> {
        self.shared
            .state
            .lock()
            .expect("service lock")
            .jobs
            .get(&job)
            .and_then(|r| r.error.clone())
    }

    /// Dispatched job ids in terminal order — the deterministic replay
    /// record under a single worker.
    pub fn completion_order(&self) -> Vec<u64> {
        self.shared
            .state
            .lock()
            .expect("service lock")
            .completion_order
            .clone()
    }

    /// Service-wide status snapshot.
    pub fn queue_status(&self) -> QueueStatus {
        let st = self.shared.state.lock().expect("service lock");
        QueueStatus {
            capacity: st.queue.capacity(),
            queued: st.queue.queued_total(),
            running: st.queue.running_total(),
            paused: st.paused,
            shutting_down: st.shutdown.is_some(),
            stats: st.queue.stats(),
        }
    }

    /// Per-tenant status rows, sorted by tenant name.
    pub fn tenants(&self) -> Vec<TenantStatus> {
        self.shared
            .state
            .lock()
            .expect("service lock")
            .queue
            .tenant_statuses()
    }

    /// Every retained job (queued, running, and recent terminal), by id.
    pub fn jobs(&self) -> Vec<JobInfo> {
        self.shared
            .state
            .lock()
            .expect("service lock")
            .jobs
            .iter()
            .map(|(&id, r)| JobInfo {
                id,
                tenant: r.tenant.clone(),
                state: r.state,
            })
            .collect()
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown(ShutdownMode::Drain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue_with(tenants: &[(&str, TenantConfig)], capacity: usize) -> AdmissionQueue {
        let mut q = AdmissionQueue::new(capacity);
        for (name, cfg) in tenants {
            q.register_tenant(name, *cfg);
        }
        q
    }

    #[test]
    fn admission_rejects_with_exact_reason() {
        let cfg = TenantConfig {
            max_queued: 2,
            max_running: 1,
            weight: 1,
        };
        let mut q = queue_with(&[("a", cfg), ("b", cfg)], 3);
        assert_eq!(q.submit("nobody"), Err(RejectReason::UnknownTenant));
        q.submit("a").unwrap();
        q.submit("a").unwrap();
        assert_eq!(
            q.submit("a"),
            Err(RejectReason::TenantQueueFull { limit: 2 })
        );
        q.submit("b").unwrap();
        assert_eq!(q.submit("b"), Err(RejectReason::QueueFull { capacity: 3 }));
        assert_eq!(q.stats().rejected, 3);
        assert_eq!(q.stats().submitted, 3);
        assert!(q.conserved());
    }

    #[test]
    fn pick_is_fifo_within_tenant_and_respects_running_quota() {
        let cfg = TenantConfig {
            max_queued: 8,
            max_running: 1,
            weight: 1,
        };
        let mut q = queue_with(&[("a", cfg)], 16);
        let j0 = q.submit("a").unwrap();
        let j1 = q.submit("a").unwrap();
        assert_eq!(q.pick(), Some(("a".to_string(), j0)));
        assert_eq!(q.pick(), None, "max_running=1 blocks the second pick");
        q.finish("a", false);
        assert_eq!(q.pick(), Some(("a".to_string(), j1)));
        q.finish("a", true);
        assert_eq!(q.stats().completed, 1);
        assert_eq!(q.stats().failed, 1);
        assert!(q.conserved());
    }

    #[test]
    fn stride_pick_is_weight_proportional() {
        let mk = |w| TenantConfig {
            max_queued: 64,
            max_running: 64,
            weight: w,
        };
        let mut q = queue_with(&[("heavy", mk(3)), ("light", mk(1))], 128);
        for _ in 0..40 {
            q.submit("heavy").unwrap();
            q.submit("light").unwrap();
        }
        let mut heavy = 0;
        let mut light = 0;
        for _ in 0..40 {
            let (name, _) = q.pick().unwrap();
            match name.as_str() {
                "heavy" => heavy += 1,
                _ => light += 1,
            }
        }
        // 3:1 weights → 30/10 over any long window (±1 for phase).
        assert!(
            (29..=31).contains(&heavy),
            "heavy got {heavy} of 40 picks, want ~30"
        );
        assert!(light >= 9, "light starved: {light} of 40 picks");
        assert!(q.conserved());
    }

    #[test]
    fn idle_tenant_joins_at_current_pass_without_banked_credit() {
        let cfg = TenantConfig {
            max_queued: 64,
            max_running: 64,
            weight: 1,
        };
        let mut q = queue_with(&[("busy", cfg), ("idle", cfg)], 256);
        for _ in 0..50 {
            q.submit("busy").unwrap();
        }
        for _ in 0..20 {
            q.pick().unwrap();
        }
        // "idle" arrives late; it must not now win 20 picks in a row.
        for _ in 0..10 {
            q.submit("idle").unwrap();
        }
        let mut consecutive_idle = 0;
        let mut max_consecutive = 0;
        for _ in 0..20 {
            let (name, _) = q.pick().unwrap();
            if name == "idle" {
                consecutive_idle += 1;
                max_consecutive = max_consecutive.max(consecutive_idle);
            } else {
                consecutive_idle = 0;
            }
        }
        assert!(
            max_consecutive <= 2,
            "late joiner monopolized the queue: {max_consecutive} consecutive picks"
        );
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let cfg = TenantConfig::default();
        let mut q = queue_with(&[("a", cfg)], 16);
        let j0 = q.submit("a").unwrap();
        let j1 = q.submit("a").unwrap();
        assert!(q.cancel("a", j1));
        assert!(!q.cancel("a", j1), "already cancelled");
        let (_, picked) = q.pick().unwrap();
        assert_eq!(picked, j0);
        assert!(!q.cancel("a", j0), "running jobs cannot be cancelled");
        q.finish("a", false);
        assert_eq!(q.stats().cancelled, 1);
        assert!(q.conserved());
    }
}
