//! Distributed-GEMM planning for multiplier resampling.
//!
//! Algorithm 3's resampling pass is a `B×n` by `n×m` matrix multiply.
//! The grid layout splits the replicate axis into tiles
//! ([`plan_tiles`]) and runs one engine task per (replicate-tile ×
//! `U`-partition) cell via [`crate::Dataset::grid_cells`]; the driver
//! broadcasts each tile's `n×k` multiplier block as the shared operand.
//! [`BroadcastTileCache`] memoizes those broadcasts so repeated analyses
//! over the same seed (the multi-tenant service replaying gene queries
//! against one cohort) ship each tile to the executors once instead of
//! once per query.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{Broadcast, Engine};

/// One tile of the replicate axis of the resampling GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicateTile {
    /// Tile ordinal (0-based, in replicate order).
    pub index: usize,
    /// First replicate covered by the tile.
    pub start: usize,
    /// Replicates in the tile (`<= tile` for the last one).
    pub width: usize,
}

/// Split `total` replicates into tiles of at most `tile` replicates.
/// Tiles partition `0..total` contiguously and in order, matching the
/// tile loop of the single-task blocked oracle — the grid's replicate
/// stream is the oracle's stream cut at the same boundaries.
pub fn plan_tiles(total: usize, tile: usize) -> Vec<ReplicateTile> {
    assert!(tile > 0, "tile width must be positive");
    let mut tiles = Vec::with_capacity(total.div_ceil(tile));
    let mut start = 0;
    while start < total {
        let width = tile.min(total - start);
        tiles.push(ReplicateTile {
            index: tiles.len(),
            start,
            width,
        });
        start += width;
    }
    tiles
}

struct CacheInner<K> {
    map: HashMap<K, Broadcast<Vec<f64>>>,
    /// Insertion order for FIFO eviction at capacity.
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
}

/// A bounded memo of broadcast multiplier tiles, keyed by whatever
/// identifies a tile's content (typically `(seed, start, width)`).
///
/// The cache never *generates* tiles — callers hand it the drawn values —
/// because multiplier tiles come from one sequential RNG stream: skipping
/// a draw on a hit would desynchronize every later tile. What it saves is
/// the re-broadcast: the virtual network charge and the per-node copy of
/// shipping an identical `n×k` block again for the next query over the
/// same seed.
pub struct BroadcastTileCache<K: Eq + Hash + Clone> {
    engine: Arc<Engine>,
    capacity: usize,
    inner: Mutex<CacheInner<K>>,
}

impl<K: Eq + Hash + Clone> BroadcastTileCache<K> {
    /// Cache holding at most `capacity` broadcast tiles (FIFO eviction).
    pub fn new(engine: Arc<Engine>, capacity: usize) -> Self {
        assert!(capacity > 0, "tile cache capacity must be positive");
        BroadcastTileCache {
            engine,
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// The broadcast for `key`, reusing a cached handle when one exists.
    /// On a miss, `tile` is broadcast (charging virtual network time) and
    /// retained; the caller must guarantee that equal keys always carry
    /// equal tile contents.
    pub fn get_or_broadcast(&self, key: K, tile: Vec<f64>) -> Broadcast<Vec<f64>> {
        {
            let mut inner = self.inner.lock();
            if let Some(b) = inner.map.get(&key) {
                let b = b.clone();
                inner.hits += 1;
                return b;
            }
        }
        // Broadcast outside the lock: it charges virtual time and may
        // contend with tasks reading the clock.
        let b = self.engine.broadcast(tile);
        let mut inner = self.inner.lock();
        inner.misses += 1;
        if let Some(prev) = inner.map.insert(key.clone(), b.clone()) {
            // Raced with another query broadcasting the same tile; keep
            // ours, drop theirs — both carry identical contents.
            drop(prev);
        } else {
            inner.order.push_back(key);
            if inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
        b
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Broadcast tiles currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no tiles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkscore_cluster::ClusterSpec;

    #[test]
    fn tiles_partition_the_replicate_axis() {
        let tiles = plan_tiles(101, 32);
        assert_eq!(tiles.len(), 4);
        assert_eq!(
            tiles[0],
            ReplicateTile {
                index: 0,
                start: 0,
                width: 32
            }
        );
        assert_eq!(
            tiles[3],
            ReplicateTile {
                index: 3,
                start: 96,
                width: 5
            }
        );
        let covered: usize = tiles.iter().map(|t| t.width).sum();
        assert_eq!(covered, 101);
        for w in tiles.windows(2) {
            assert_eq!(w[0].start + w[0].width, w[1].start);
        }
        assert!(plan_tiles(0, 8).is_empty());
    }

    #[test]
    fn tile_cache_hits_on_repeat_and_evicts_fifo() {
        let engine = Engine::builder(ClusterSpec::test_small(2)).build();
        let cache: BroadcastTileCache<(u64, u64)> = BroadcastTileCache::new(engine, 2);
        let a = cache.get_or_broadcast((7, 0), vec![1.0, 2.0]);
        let a2 = cache.get_or_broadcast((7, 0), vec![1.0, 2.0]);
        assert_eq!(a.value(), a2.value());
        assert_eq!(cache.stats(), (1, 1));
        cache.get_or_broadcast((7, 1), vec![3.0]);
        // Third insert evicts (7, 0) — the oldest — so it misses again.
        cache.get_or_broadcast((7, 2), vec![4.0]);
        assert_eq!(cache.len(), 2);
        cache.get_or_broadcast((7, 0), vec![1.0, 2.0]);
        assert_eq!(cache.stats(), (1, 4));
    }
}
