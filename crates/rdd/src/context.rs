//! Per-task execution context.
//!
//! A [`TaskCtx`] travels down the operator chain while a partition is
//! computed on a host thread. It exposes the engine (for cache, shuffle,
//! and DFS access) and accumulates the task's *work counters* — weighted
//! records, input bytes, shuffle bytes, and locality preferences — which
//! the engine later converts into a [`sparkscore_cluster::VirtualTask`]
//! for virtual-time scheduling. Counters use `Cell`s: a context belongs to
//! exactly one thread for its lifetime.

use std::cell::{Cell, RefCell};

use sparkscore_cluster::{CostModel, NodeId, VirtualTask};

use crate::engine::Engine;
use crate::events::SpanContext;

/// One completed sub-task interval recorded through
/// [`TaskCtx::time_span`], drained into the stage's event batch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanRecord {
    pub span: SpanContext,
    pub label: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// Context for one running task.
pub struct TaskCtx<'a> {
    engine: &'a Engine,
    partition: usize,
    started: std::time::Instant,
    /// The task's span (zero when the engine is untraced).
    span: SpanContext,
    work_units: Cell<f64>,
    input_bytes: Cell<u64>,
    shuffle_read_bytes: Cell<u64>,
    shuffle_write_bytes: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    recomputed: Cell<u64>,
    kernel_rows: Cell<u64>,
    packed_kernel_rows: Cell<u64>,
    scratch_reuses: Cell<u64>,
    replicates_run: Cell<u64>,
    replicates_saved: Cell<u64>,
    preferred: RefCell<Vec<NodeId>>,
    spans: RefCell<Vec<SpanRecord>>,
}

impl<'a> TaskCtx<'a> {
    pub fn new(engine: &'a Engine, partition: usize) -> Self {
        Self::with_span(engine, partition, SpanContext::NONE)
    }

    /// A context carrying causal identity: sub-task intervals recorded via
    /// [`TaskCtx::time_span`] are parented to `span`.
    pub(crate) fn with_span(engine: &'a Engine, partition: usize, span: SpanContext) -> Self {
        TaskCtx {
            engine,
            partition,
            started: std::time::Instant::now(),
            span,
            work_units: Cell::new(0.0),
            input_bytes: Cell::new(0),
            shuffle_read_bytes: Cell::new(0),
            shuffle_write_bytes: Cell::new(0),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
            recomputed: Cell::new(0),
            kernel_rows: Cell::new(0),
            packed_kernel_rows: Cell::new(0),
            scratch_reuses: Cell::new(0),
            replicates_run: Cell::new(0),
            replicates_saved: Cell::new(0),
            preferred: RefCell::new(Vec::new()),
            spans: RefCell::new(Vec::new()),
        }
    }

    #[inline]
    pub fn engine(&self) -> &'a Engine {
        self.engine
    }

    #[inline]
    pub fn partition(&self) -> usize {
        self.partition
    }

    /// The task's span context (`NONE` when the engine is untraced).
    #[inline]
    pub fn span(&self) -> SpanContext {
        self.span
    }

    /// Whether this task is being traced — sub-task spans are recorded.
    #[inline]
    pub fn traced(&self) -> bool {
        !self.span.is_none()
    }

    /// Time `f` as a sub-task span (kernel call, shuffle fetch, cache
    /// recompute). On an untraced task this is a single branch and a plain
    /// call — no clock reads, no allocation.
    #[inline]
    pub fn time_span<R>(&self, label: &'static str, f: impl FnOnce() -> R) -> R {
        if self.span.is_none() {
            return f();
        }
        let start_ns = self.engine.mono_ns();
        let r = f();
        let end_ns = self.engine.mono_ns();
        self.spans.borrow_mut().push(SpanRecord {
            span: self.span.child(self.engine.new_span_id()),
            label,
            start_ns,
            end_ns,
        });
        r
    }

    /// Drain the recorded sub-task spans (stage batch emission).
    pub(crate) fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans.borrow_mut())
    }

    /// Record `n` records of operator work at relative `weight` (1.0 = a
    /// plain map over small records).
    #[inline]
    pub fn add_work(&self, n: usize, weight: f64) {
        self.work_units
            .set(self.work_units.get() + n as f64 * weight);
    }

    /// Record bytes read from the DFS (locality decided by the scheduler).
    #[inline]
    pub fn add_input_bytes(&self, bytes: u64) {
        self.input_bytes.set(self.input_bytes.get() + bytes);
    }

    /// Record bytes fetched from shuffle outputs.
    #[inline]
    pub fn add_shuffle_read(&self, bytes: u64) {
        self.shuffle_read_bytes
            .set(self.shuffle_read_bytes.get() + bytes);
    }

    /// Record bytes written to shuffle buckets (map-side tasks).
    #[inline]
    pub fn add_shuffle_write(&self, bytes: u64) {
        self.shuffle_write_bytes
            .set(self.shuffle_write_bytes.get() + bytes);
    }

    /// Record one cached-block read.
    #[inline]
    pub fn note_cache_hit(&self) {
        self.cache_hits.set(self.cache_hits.get() + 1);
    }

    /// Record one cache lookup that missed.
    #[inline]
    pub fn note_cache_miss(&self) {
        self.cache_misses.set(self.cache_misses.get() + 1);
    }

    /// Record one lineage recomputation of a previously-resident block.
    #[inline]
    pub fn note_recompute(&self) {
        self.recomputed.set(self.recomputed.get() + 1);
    }

    /// Record `n` kernel rows processed (SNP × patient cells for the score
    /// kernels) — lets trace reports attribute kernel vs engine time.
    #[inline]
    pub fn add_kernel_rows(&self, n: u64) {
        self.kernel_rows.set(self.kernel_rows.get() + n);
    }

    /// Record `n` kernel rows served by packed-direct bit kernels (no
    /// byte unpack) — a subset of [`TaskCtx::add_kernel_rows`]'s total,
    /// so trace reports can split packed vs unpacked work.
    #[inline]
    pub fn add_packed_kernel_rows(&self, n: u64) {
        self.packed_kernel_rows
            .set(self.packed_kernel_rows.get() + n);
    }

    /// Record `n` thread-local scratch-buffer reuses (kernel calls served
    /// without touching the allocator).
    #[inline]
    pub fn add_scratch_reuses(&self, n: u64) {
        self.scratch_reuses.set(self.scratch_reuses.get() + n);
    }

    /// Record `n` resampling row-replicate units computed (one SNP row
    /// perturbed for one replicate in the distributed GEMM).
    #[inline]
    pub fn add_replicates_run(&self, n: u64) {
        self.replicates_run.set(self.replicates_run.get() + n);
    }

    /// Record `n` resampling row-replicate units *skipped* inside an
    /// executed tile because the owning gene set's sequential stopping
    /// rule had already decided — the observable early-stop saving.
    #[inline]
    pub fn add_replicates_saved(&self, n: u64) {
        self.replicates_saved.set(self.replicates_saved.get() + n);
    }

    /// Declare that running on `node` would make this task's reads local
    /// (input block replica or cached block location).
    pub fn add_preferred(&self, node: NodeId) {
        let mut p = self.preferred.borrow_mut();
        if !p.contains(&node) {
            p.push(node);
        }
    }

    pub fn add_preferred_all(&self, nodes: &[NodeId]) {
        for &n in nodes {
            self.add_preferred(n);
        }
    }

    pub fn work_units(&self) -> f64 {
        self.work_units.get()
    }

    pub fn input_bytes(&self) -> u64 {
        self.input_bytes.get()
    }

    pub fn shuffle_read_bytes(&self) -> u64 {
        self.shuffle_read_bytes.get()
    }

    pub fn shuffle_write_bytes(&self) -> u64 {
        self.shuffle_write_bytes.get()
    }

    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.get()
    }

    pub fn recomputed(&self) -> u64 {
        self.recomputed.get()
    }

    pub fn kernel_rows(&self) -> u64 {
        self.kernel_rows.get()
    }

    pub fn packed_kernel_rows(&self) -> u64 {
        self.packed_kernel_rows.get()
    }

    pub fn scratch_reuses(&self) -> u64 {
        self.scratch_reuses.get()
    }

    pub fn replicates_run(&self) -> u64 {
        self.replicates_run.get()
    }

    pub fn replicates_saved(&self) -> u64 {
        self.replicates_saved.get()
    }

    /// Measured host execution time so far, nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Convert the task's measurements into a schedulable virtual task.
    ///
    /// The compute cost is the task's **measured host execution time**
    /// scaled by [`CostModel::cpu_slowdown`] (modelling the JVM/Spark
    /// record pipeline the paper ran on), plus any explicitly counted
    /// record work. Measuring — rather than counting records — captures
    /// the real asymmetry between, say, parsing a genotype line (~µs) and
    /// one multiply-add (~ns), which is exactly the asymmetry behind the
    /// paper's cached-Monte-Carlo speedups.
    pub fn to_virtual_task(&self, model: &CostModel) -> VirtualTask {
        let measured_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        VirtualTask {
            compute_ns: model.task_compute_ns(measured_ns)
                + model.compute_ns(self.work_units.get()),
            input_bytes: self.input_bytes.get(),
            preferred_nodes: self.preferred.borrow().clone(),
            shuffle_bytes: self.shuffle_read_bytes.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use sparkscore_cluster::ClusterSpec;

    fn engine() -> std::sync::Arc<Engine> {
        Engine::builder(ClusterSpec::test_small(2)).build()
    }

    #[test]
    fn counters_accumulate() {
        let e = engine();
        let ctx = TaskCtx::new(&e, 3);
        assert_eq!(ctx.partition(), 3);
        ctx.add_work(100, 1.0);
        ctx.add_work(50, 2.0);
        assert_eq!(ctx.work_units(), 200.0);
        ctx.add_input_bytes(1024);
        ctx.add_shuffle_read(10);
        ctx.add_shuffle_read(5);
        assert_eq!(ctx.input_bytes(), 1024);
        assert_eq!(ctx.shuffle_read_bytes(), 15);
    }

    #[test]
    fn preferred_nodes_dedup() {
        let e = engine();
        let ctx = TaskCtx::new(&e, 0);
        ctx.add_preferred(NodeId(1));
        ctx.add_preferred(NodeId(1));
        ctx.add_preferred_all(&[NodeId(0), NodeId(1)]);
        let vt = ctx.to_virtual_task(&CostModel::default());
        assert_eq!(vt.preferred_nodes, vec![NodeId(1), NodeId(0)]);
    }

    #[test]
    fn virtual_task_uses_cost_model() {
        let e = engine();
        let ctx = TaskCtx::new(&e, 0);
        ctx.add_work(1000, 1.0);
        ctx.add_input_bytes(77);
        let model = CostModel {
            ns_per_record_unit: 10.0,
            ..CostModel::default()
        };
        let vt = ctx.to_virtual_task(&model);
        // Counter-based floor plus the (tiny) measured execution time.
        assert!(vt.compute_ns >= 10_000, "compute {}", vt.compute_ns);
        assert_eq!(vt.input_bytes, 77);
        assert_eq!(vt.shuffle_bytes, 0);
    }

    #[test]
    fn measured_time_contributes_to_compute_cost() {
        let e = engine();
        let ctx = TaskCtx::new(&e, 0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let vt = ctx.to_virtual_task(&CostModel::default());
        // 5 ms measured × default slowdown (4×) ≥ 20 ms virtual.
        assert!(
            vt.compute_ns >= 20_000_000,
            "measured time must be scaled in: {}",
            vt.compute_ns
        );
    }
}
