//! Dataset operators.
//!
//! Each operator implements [`Op`]: given a partition index and a task
//! context, produce the partition's records. Narrow operators recursively
//! pull their parent's partition through [`materialize`], which is where
//! block-cache hits short-circuit lineage; wide operators read shuffle
//! buckets written by a registered map stage.

pub mod narrow;
pub mod shuffled;
pub mod source;

use std::sync::Arc;

use crate::context::TaskCtx;
use crate::estimate::EstimateSize;
use crate::metrics::Metrics;
use crate::OpId;

/// Element types that can flow through datasets.
///
/// `EstimateSize` is part of the bound so any dataset can be cached and any
/// keyed dataset can be shuffled with byte accounting.
pub trait Data: Clone + Send + Sync + EstimateSize + 'static {}
impl<T: Clone + Send + Sync + EstimateSize + 'static> Data for T {}

/// One operator in a lineage graph.
pub trait Op<T: Data>: Send + Sync + 'static {
    fn id(&self) -> OpId;
    fn num_partitions(&self) -> usize;
    /// Produce partition `part`'s records. Must be deterministic: lineage
    /// recovery recomputes partitions and expects identical data.
    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<T>;
    fn name(&self) -> &str;
}

/// Materialize one partition, honoring the block cache.
///
/// For an op marked `cache()`: a resident block is returned immediately
/// (recording the cache-local node as a locality preference); a miss
/// computes the partition, stores it, and counts a *recomputation* if the
/// block had been resident before (i.e. it was evicted or lost).
pub fn materialize<T: Data>(op: &Arc<dyn Op<T>>, part: usize, ctx: &TaskCtx<'_>) -> Arc<Vec<T>> {
    let engine = ctx.engine();
    let id = op.id();
    if !engine.cache.is_marked(id) {
        return Arc::new(op.compute(part, ctx));
    }
    if let Some(block) = engine.cache.get::<T>(id, part) {
        Metrics::bump(&engine.metrics.cache_hits);
        ctx.note_cache_hit();
        ctx.add_preferred(block.node);
        return block.data;
    }
    Metrics::bump(&engine.metrics.cache_misses);
    ctx.note_cache_miss();
    if engine.cache.was_ever_present(id, part) {
        Metrics::bump(&engine.metrics.recomputed_partitions);
        ctx.note_recompute();
    }
    let data = ctx.time_span("cache:recompute", || Arc::new(op.compute(part, ctx)));
    let node = engine.node_for_block(id.0, part as u64);
    let outcome = engine.cache.put(id, part, Arc::clone(&data), node);
    Metrics::add(&engine.metrics.cache_evictions, outcome.evicted_blocks());
    for &(victim_op, victim_part, victim_bytes) in &outcome.evicted {
        engine
            .events()
            .emit_with(|| crate::events::EngineEvent::CacheEvicted {
                op: victim_op.0,
                partition: victim_part,
                pressure: true,
                bytes: victim_bytes,
            });
    }
    if outcome.stored {
        engine
            .events()
            .emit_with(|| crate::events::EngineEvent::CacheAdmitted {
                op: id.0,
                partition: part,
                bytes: outcome.bytes,
            });
    } else {
        engine
            .events()
            .emit_with(|| crate::events::EngineEvent::CacheRejected {
                op: id.0,
                partition: part,
                bytes: outcome.bytes,
            });
    }
    data
}
