//! Source operators: in-memory collections and DFS text files.

use std::sync::Arc;

use sparkscore_dfs::{text::block_lines, FileMeta};

use crate::context::TaskCtx;
use crate::engine::OpGuard;
use crate::metrics::Metrics;
use crate::ops::{Data, Op};
use crate::OpId;

/// A driver-side collection split into `n` partitions (`sc.parallelize`).
pub struct ParallelizeOp<T: Data> {
    id: OpId,
    partitions: Arc<Vec<Vec<T>>>,
    _guard: OpGuard,
}

impl<T: Data> ParallelizeOp<T> {
    pub(crate) fn new(id: OpId, guard: OpGuard, data: Vec<T>, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        let n = data.len();
        let mut partitions: Vec<Vec<T>> = (0..num_partitions).map(|_| Vec::new()).collect();
        if n > 0 {
            // Contiguous ranges, sizes differing by at most one.
            let base = n / num_partitions;
            let extra = n % num_partitions;
            let mut it = data.into_iter();
            for (i, slot) in partitions.iter_mut().enumerate() {
                let take = base + usize::from(i < extra);
                slot.extend(it.by_ref().take(take));
            }
        }
        ParallelizeOp {
            id,
            partitions: Arc::new(partitions),
            _guard: guard,
        }
    }
}

impl<T: Data> Op<T> for ParallelizeOp<T> {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<T> {
        let data = &self.partitions[part];
        // Driver memory → executor: cheap, but not free.
        ctx.add_work(data.len(), 0.2);
        data.clone()
    }

    fn name(&self) -> &str {
        "parallelize"
    }
}

/// A DFS text file, one partition per block (`sc.textFile`).
pub struct TextFileOp {
    id: OpId,
    meta: FileMeta,
    _guard: OpGuard,
}

impl TextFileOp {
    pub(crate) fn new(id: OpId, guard: OpGuard, meta: FileMeta) -> Self {
        TextFileOp {
            id,
            meta,
            _guard: guard,
        }
    }

    pub fn path(&self) -> &str {
        &self.meta.path
    }
}

impl Op<String> for TextFileOp {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.meta.blocks.len()
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<String> {
        let engine = ctx.engine();
        let (block_id, bytes) = self.meta.blocks[part];
        ctx.add_preferred_all(&engine.dfs().block_locations(block_id));
        ctx.add_input_bytes(bytes);
        Metrics::add(&engine.metrics.input_bytes, bytes);
        let (data, _served_by) = engine.dfs().read_block(block_id, None).unwrap_or_else(|e|

                // Unrecoverable: lineage cannot rebuild source data whose
                // every replica is gone — Spark fails the job here too.
                panic!("input block lost beyond recovery for {}: {e}", self.meta.path));
        let lines: Vec<String> = block_lines(&data).map(str::to_owned).collect();
        ctx.add_work(lines.len(), 1.0);
        lines
    }

    fn name(&self) -> &str {
        "textFile"
    }
}
