//! Wide (shuffle) operators: combine-by-key and co-group.
//!
//! A wide operator's map side runs over the parent's partitions,
//! hash-partitions (and map-side combines) records into one bucket per
//! reduce partition, and registers the buckets with the engine's shuffle
//! manager. The reduce side — the operator's `compute` — fetches the
//! buckets and merges combiners. A missing bucket (lost to fault
//! injection or a node death) triggers an inline re-run of the owning map
//! task: lineage recovery at shuffle granularity.

use std::collections::hash_map::Entry;
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::context::TaskCtx;
use crate::engine::{Engine, OpGuard};
use crate::estimate::slice_bytes;
use crate::metrics::Metrics;
use crate::ops::{materialize, Data, Op};
use crate::shuffle::{Bucket, DetHashMap, HashPartitioner, ShuffleStage};
use crate::{OpId, ShuffleId};

/// How values are combined into per-key combiners (Spark's `Aggregator`).
pub struct Aggregator<V, C> {
    pub create: Arc<dyn Fn(V) -> C + Send + Sync>,
    pub merge_value: Arc<dyn Fn(&mut C, V) + Send + Sync>,
    pub merge_combiners: Arc<dyn Fn(&mut C, C) + Send + Sync>,
}

impl<V, C> Clone for Aggregator<V, C> {
    fn clone(&self) -> Self {
        Aggregator {
            create: Arc::clone(&self.create),
            merge_value: Arc::clone(&self.merge_value),
            merge_combiners: Arc::clone(&self.merge_combiners),
        }
    }
}

impl<V: Data> Aggregator<V, Vec<V>> {
    /// Collect all values per key (`group_by_key`).
    pub fn grouping() -> Self {
        Aggregator {
            create: Arc::new(|v| vec![v]),
            merge_value: Arc::new(|c, v| c.push(v)),
            merge_combiners: Arc::new(|c, mut other| c.append(&mut other)),
        }
    }
}

impl<V: Data> Aggregator<V, V> {
    /// Fold values per key with a binary function (`reduce_by_key`).
    pub fn reducing(f: impl Fn(V, V) -> V + Send + Sync + 'static) -> Self {
        let f = Arc::new(f);
        let f2 = Arc::clone(&f);
        Aggregator {
            create: Arc::new(|v| v),
            merge_value: Arc::new(move |c: &mut V, v| {
                let old = c.clone();
                *c = f(old, v);
            }),
            merge_combiners: Arc::new(move |c: &mut V, v| {
                let old = c.clone();
                *c = f2(old, v);
            }),
        }
    }
}

/// Register a shuffle's map stage: the type-erased closure the engine (or
/// inline recovery) uses to produce bucketed map outputs for `sid`.
pub(crate) fn register_shuffle_map<K, V, C>(
    engine: &Arc<Engine>,
    sid: ShuffleId,
    parent: Arc<dyn Op<(K, V)>>,
    partitioner: HashPartitioner,
    agg: Aggregator<V, C>,
) where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    let num_map_parts = parent.num_partitions();
    let run_map_task = Arc::new(move |map_part: usize, ctx: &TaskCtx<'_>| {
        let engine = ctx.engine();
        let input = materialize(&parent, map_part, ctx);
        ctx.add_work(input.len(), 1.5);
        let reduces = partitioner.num_partitions();
        let mut tables: Vec<DetHashMap<K, C>> =
            (0..reduces).map(|_| DetHashMap::default()).collect();
        for (k, v) in input.iter().cloned() {
            let r = partitioner.partition(&k);
            match tables[r].entry(k) {
                Entry::Occupied(mut e) => (agg.merge_value)(e.get_mut(), v),
                Entry::Vacant(e) => {
                    e.insert((agg.create)(v));
                }
            }
        }
        let node = engine.node_for_block(sid.0.wrapping_mul(0x9e37_79b9), map_part as u64);
        ctx.time_span("shuffle:write", || {
            let buckets: Vec<Bucket> = tables
                .into_iter()
                .map(|t| {
                    let records: Vec<(K, C)> = t.into_iter().collect();
                    let bytes = slice_bytes(&records) as u64;
                    Metrics::add(&engine.metrics.shuffle_bytes_written, bytes);
                    ctx.add_shuffle_write(bytes);
                    Bucket {
                        data: Arc::new(records),
                        bytes,
                    }
                })
                .collect();
            let stored = engine.shuffle.put_map_output(sid, map_part, buckets, node);
            engine
                .events()
                .emit_with(|| crate::events::EngineEvent::ShuffleBytesStored {
                    shuffle: sid.0,
                    map_part,
                    bytes: stored,
                });
        });
    });
    engine.shuffle.register(
        sid,
        ShuffleStage {
            num_map_parts,
            num_reduce_parts: partitioner.num_partitions(),
            run_map_task,
        },
    );
}

/// Fetch all map buckets of `sid` for `reduce_part` in one batch call
/// (one pass over the shuffle manager's lock shards instead of one lock
/// round-trip per map partition), re-running the map task inline for any
/// bucket that is missing. Returns the typed records in map-partition
/// order.
fn fetch_buckets<K, C>(
    sid: ShuffleId,
    num_map_parts: usize,
    reduce_part: usize,
    ctx: &TaskCtx<'_>,
) -> Vec<Arc<Vec<(K, C)>>>
where
    K: Data + Hash + Eq,
    C: Data,
{
    let engine = ctx.engine();
    ctx.time_span("shuffle:fetch", || {
        engine
            .shuffle
            .get_buckets(sid, reduce_part, num_map_parts)
            .into_iter()
            .enumerate()
            .map(|(map_part, bucket)| {
                // Recovery stays per-bucket: only re-run maps whose output is
                // actually gone, then re-fetch just that bucket.
                let bucket = bucket.unwrap_or_else(|| {
                    engine.rerun_map_task_inline(sid, map_part, ctx);
                    engine
                        .shuffle
                        .get_bucket(sid, map_part, reduce_part)
                        .expect("re-run map task must restore its shuffle output")
                });
                ctx.add_shuffle_read(bucket.bytes);
                Metrics::add(&engine.metrics.shuffle_bytes_read, bucket.bytes);
                bucket
                    .data
                    .downcast::<Vec<(K, C)>>()
                    .expect("shuffle bucket holds the registered record type")
            })
            .collect()
    })
}

/// Reduce side of a combine-by-key shuffle: yields `(K, C)` pairs.
pub struct ShuffledOp<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    id: OpId,
    sid: ShuffleId,
    num_map_parts: usize,
    num_reduce_parts: usize,
    merge_combiners: Arc<dyn Fn(&mut C, C) + Send + Sync>,
    _guard: OpGuard,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K, V, C> ShuffledOp<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    /// Create the reduce-side op and register the map stage with `engine`.
    pub(crate) fn new(
        engine: &Arc<Engine>,
        id: OpId,
        guard: OpGuard,
        sid: ShuffleId,
        parent: Arc<dyn Op<(K, V)>>,
        num_reduce_parts: usize,
        agg: Aggregator<V, C>,
    ) -> Self {
        let partitioner = HashPartitioner::new(num_reduce_parts);
        let num_map_parts = parent.num_partitions();
        let merge_combiners = Arc::clone(&agg.merge_combiners);
        register_shuffle_map(engine, sid, parent, partitioner, agg);
        ShuffledOp {
            id,
            sid,
            num_map_parts,
            num_reduce_parts,
            merge_combiners,
            _guard: guard,
            _marker: PhantomData,
        }
    }
}

impl<K, V, C> Op<(K, C)> for ShuffledOp<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.num_reduce_parts
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<(K, C)> {
        let mut table: DetHashMap<K, C> = DetHashMap::default();
        for records in fetch_buckets::<K, C>(self.sid, self.num_map_parts, part, ctx) {
            ctx.add_work(records.len(), 1.5);
            for (k, c) in records.iter().cloned() {
                match table.entry(k) {
                    Entry::Occupied(mut e) => (self.merge_combiners)(e.get_mut(), c),
                    Entry::Vacant(e) => {
                        e.insert(c);
                    }
                }
            }
        }
        table.into_iter().collect()
    }

    fn name(&self) -> &str {
        "shuffled"
    }
}

/// Reduce side of a two-parent co-group: yields `(K, (Vec<V>, Vec<W>))`.
pub struct CoGroupOp<K, V, W>
where
    K: Data + Hash + Eq,
    V: Data,
    W: Data,
{
    id: OpId,
    sid_left: ShuffleId,
    sid_right: ShuffleId,
    maps_left: usize,
    maps_right: usize,
    num_reduce_parts: usize,
    _guard: OpGuard,
    _marker: PhantomData<fn() -> (K, V, W)>,
}

impl<K, V, W> CoGroupOp<K, V, W>
where
    K: Data + Hash + Eq,
    V: Data,
    W: Data,
{
    /// Create the co-group reduce op, registering one map stage per parent.
    /// Both sides use the same partitioner so a key's groups co-locate.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        engine: &Arc<Engine>,
        id: OpId,
        guard: OpGuard,
        sid_left: ShuffleId,
        sid_right: ShuffleId,
        left: Arc<dyn Op<(K, V)>>,
        right: Arc<dyn Op<(K, W)>>,
        num_reduce_parts: usize,
    ) -> Self {
        let partitioner = HashPartitioner::new(num_reduce_parts);
        let maps_left = left.num_partitions();
        let maps_right = right.num_partitions();
        register_shuffle_map(engine, sid_left, left, partitioner, Aggregator::grouping());
        register_shuffle_map(
            engine,
            sid_right,
            right,
            partitioner,
            Aggregator::grouping(),
        );
        CoGroupOp {
            id,
            sid_left,
            sid_right,
            maps_left,
            maps_right,
            num_reduce_parts,
            _guard: guard,
            _marker: PhantomData,
        }
    }
}

impl<K, V, W> Op<(K, (Vec<V>, Vec<W>))> for CoGroupOp<K, V, W>
where
    K: Data + Hash + Eq,
    V: Data,
    W: Data,
{
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.num_reduce_parts
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<(K, (Vec<V>, Vec<W>))> {
        let mut table: DetHashMap<K, (Vec<V>, Vec<W>)> = DetHashMap::default();
        for records in fetch_buckets::<K, Vec<V>>(self.sid_left, self.maps_left, part, ctx) {
            ctx.add_work(records.len(), 1.5);
            for (k, mut vs) in records.iter().cloned() {
                table.entry(k).or_default().0.append(&mut vs);
            }
        }
        for records in fetch_buckets::<K, Vec<W>>(self.sid_right, self.maps_right, part, ctx) {
            ctx.add_work(records.len(), 1.5);
            for (k, mut ws) in records.iter().cloned() {
                table.entry(k).or_default().1.append(&mut ws);
            }
        }
        table.into_iter().collect()
    }

    fn name(&self) -> &str {
        "coGroup"
    }
}
