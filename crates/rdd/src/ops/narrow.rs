//! Narrow (pipelined) operators: each output partition depends on exactly
//! one parent partition, so no shuffle is needed and lineage recovery
//! recomputes a single upstream chain.

use std::sync::Arc;

use crate::context::TaskCtx;
use crate::engine::OpGuard;
use crate::ops::{materialize, Data, Op};
use crate::OpId;

/// `map`: apply `f` to every record.
///
/// `cost_units` is the modeled per-record cost of `f` in work units (one
/// unit = [`sparkscore_cluster::CostModel::ns_per_record_unit`] virtual
/// ns). The engine cannot see inside the closure, so pipelines whose
/// per-record cost on the reference platform (the paper's JVM/Spark
/// stack) differs wildly from the native Rust cost — text tokenization
/// above all — declare it here; 1.0 models a trivial record operation.
pub struct MapOp<T: Data, U: Data> {
    id: OpId,
    parent: Arc<dyn Op<T>>,
    f: Arc<dyn Fn(T) -> U + Send + Sync>,
    cost_units: f64,
    _guard: OpGuard,
}

impl<T: Data, U: Data> MapOp<T, U> {
    pub(crate) fn new(
        id: OpId,
        guard: OpGuard,
        parent: Arc<dyn Op<T>>,
        f: Arc<dyn Fn(T) -> U + Send + Sync>,
        cost_units: f64,
    ) -> Self {
        assert!(cost_units >= 0.0, "cost units must be non-negative");
        MapOp {
            id,
            parent,
            f,
            cost_units,
            _guard: guard,
        }
    }
}

impl<T: Data, U: Data> Op<U> for MapOp<T, U> {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<U> {
        let input = materialize(&self.parent, part, ctx);
        ctx.add_work(input.len(), self.cost_units);
        input.iter().cloned().map(|t| (self.f)(t)).collect()
    }

    fn name(&self) -> &str {
        "map"
    }
}

/// `filter`: keep records satisfying the predicate.
pub struct FilterOp<T: Data> {
    id: OpId,
    parent: Arc<dyn Op<T>>,
    pred: Arc<dyn Fn(&T) -> bool + Send + Sync>,
    _guard: OpGuard,
}

impl<T: Data> FilterOp<T> {
    pub(crate) fn new(
        id: OpId,
        guard: OpGuard,
        parent: Arc<dyn Op<T>>,
        pred: Arc<dyn Fn(&T) -> bool + Send + Sync>,
    ) -> Self {
        FilterOp {
            id,
            parent,
            pred,
            _guard: guard,
        }
    }
}

impl<T: Data> Op<T> for FilterOp<T> {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<T> {
        let input = materialize(&self.parent, part, ctx);
        ctx.add_work(input.len(), 0.5);
        input.iter().filter(|t| (self.pred)(t)).cloned().collect()
    }

    fn name(&self) -> &str {
        "filter"
    }
}

/// `flat_map`: apply `f` and flatten.
pub struct FlatMapOp<T: Data, U: Data> {
    id: OpId,
    parent: Arc<dyn Op<T>>,
    f: Arc<dyn Fn(T) -> Vec<U> + Send + Sync>,
    _guard: OpGuard,
}

impl<T: Data, U: Data> FlatMapOp<T, U> {
    pub(crate) fn new(
        id: OpId,
        guard: OpGuard,
        parent: Arc<dyn Op<T>>,
        f: Arc<dyn Fn(T) -> Vec<U> + Send + Sync>,
    ) -> Self {
        FlatMapOp {
            id,
            parent,
            f,
            _guard: guard,
        }
    }
}

impl<T: Data, U: Data> Op<U> for FlatMapOp<T, U> {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<U> {
        let input = materialize(&self.parent, part, ctx);
        ctx.add_work(input.len(), 1.0);
        input.iter().cloned().flat_map(|t| (self.f)(t)).collect()
    }

    fn name(&self) -> &str {
        "flatMap"
    }
}

/// `map_partitions`: transform a whole partition at once, with its index.
pub struct MapPartitionsOp<T: Data, U: Data> {
    id: OpId,
    parent: Arc<dyn Op<T>>,
    f: Arc<dyn Fn(usize, &[T]) -> Vec<U> + Send + Sync>,
    _guard: OpGuard,
}

impl<T: Data, U: Data> MapPartitionsOp<T, U> {
    pub(crate) fn new(
        id: OpId,
        guard: OpGuard,
        parent: Arc<dyn Op<T>>,
        f: Arc<dyn Fn(usize, &[T]) -> Vec<U> + Send + Sync>,
    ) -> Self {
        MapPartitionsOp {
            id,
            parent,
            f,
            _guard: guard,
        }
    }
}

impl<T: Data, U: Data> Op<U> for MapPartitionsOp<T, U> {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<U> {
        let input = materialize(&self.parent, part, ctx);
        ctx.add_work(input.len(), 1.0);
        (self.f)(part, &input)
    }

    fn name(&self) -> &str {
        "mapPartitions"
    }
}

/// `map_partitions_ctx`: whole-partition transform whose closure also
/// receives the [`TaskCtx`], so kernel-style operators can charge their
/// own work model and report kernel counters (rows processed, scratch
/// reuses). Unlike [`MapPartitionsOp`] no default work is charged — the
/// closure owns the accounting.
pub struct MapPartitionsCtxOp<T: Data, U: Data> {
    id: OpId,
    parent: Arc<dyn Op<T>>,
    f: Arc<dyn Fn(&TaskCtx<'_>, usize, &[T]) -> Vec<U> + Send + Sync>,
    _guard: OpGuard,
}

impl<T: Data, U: Data> MapPartitionsCtxOp<T, U> {
    pub(crate) fn new(
        id: OpId,
        guard: OpGuard,
        parent: Arc<dyn Op<T>>,
        f: Arc<dyn Fn(&TaskCtx<'_>, usize, &[T]) -> Vec<U> + Send + Sync>,
    ) -> Self {
        MapPartitionsCtxOp {
            id,
            parent,
            f,
            _guard: guard,
        }
    }
}

impl<T: Data, U: Data> Op<U> for MapPartitionsCtxOp<T, U> {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<U> {
        let input = materialize(&self.parent, part, ctx);
        (self.f)(ctx, part, &input)
    }

    fn name(&self) -> &str {
        "mapPartitions"
    }
}

/// `sample`: keep each record independently with probability `fraction`,
/// deterministically per (seed, partition) — no external RNG dependency,
/// a SplitMix64 stream suffices for Bernoulli thinning.
pub struct SampleOp<T: Data> {
    id: OpId,
    parent: Arc<dyn Op<T>>,
    fraction: f64,
    seed: u64,
    _guard: OpGuard,
}

impl<T: Data> SampleOp<T> {
    pub(crate) fn new(
        id: OpId,
        guard: OpGuard,
        parent: Arc<dyn Op<T>>,
        fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "sampling fraction must be in [0, 1]"
        );
        SampleOp {
            id,
            parent,
            fraction,
            seed,
            _guard: guard,
        }
    }
}

/// One step of the SplitMix64 generator.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<T: Data> Op<T> for SampleOp<T> {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<T> {
        let input = materialize(&self.parent, part, ctx);
        ctx.add_work(input.len(), 0.5);
        let mut state = self.seed ^ (part as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        let threshold = (self.fraction * u64::MAX as f64) as u64;
        input
            .iter()
            .filter(|_| splitmix64(&mut state) <= threshold)
            .cloned()
            .collect()
    }

    fn name(&self) -> &str {
        "sample"
    }
}

/// `coalesce`: merge adjacent parent partitions into `n` output
/// partitions without a shuffle (Spark's `coalesce(n, shuffle = false)`).
pub struct CoalesceOp<T: Data> {
    id: OpId,
    parent: Arc<dyn Op<T>>,
    /// Output partition → contiguous range of parent partitions.
    groups: Vec<std::ops::Range<usize>>,
    _guard: OpGuard,
}

impl<T: Data> CoalesceOp<T> {
    pub(crate) fn new(id: OpId, guard: OpGuard, parent: Arc<dyn Op<T>>, n: usize) -> Self {
        assert!(n > 0, "coalesce needs at least one output partition");
        let parents = parent.num_partitions();
        let n = n.min(parents.max(1));
        // Contiguous, balanced grouping: sizes differ by at most one.
        let base = parents / n;
        let extra = parents % n;
        let mut groups = Vec::with_capacity(n);
        let mut start = 0usize;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            groups.push(start..start + len);
            start += len;
        }
        CoalesceOp {
            id,
            parent,
            groups,
            _guard: guard,
        }
    }
}

impl<T: Data> Op<T> for CoalesceOp<T> {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        self.groups.len()
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<T> {
        let mut out = Vec::new();
        for parent_part in self.groups[part].clone() {
            out.extend(materialize(&self.parent, parent_part, ctx).iter().cloned());
        }
        out
    }

    fn name(&self) -> &str {
        "coalesce"
    }
}

/// `union`: concatenation of the parents' partitions.
pub struct UnionOp<T: Data> {
    id: OpId,
    parents: Vec<Arc<dyn Op<T>>>,
    /// Partition-count prefix sums for global→(parent, local) translation.
    offsets: Vec<usize>,
    _guard: OpGuard,
}

impl<T: Data> UnionOp<T> {
    pub(crate) fn new(id: OpId, guard: OpGuard, parents: Vec<Arc<dyn Op<T>>>) -> Self {
        assert!(!parents.is_empty(), "union needs at least one parent");
        let mut offsets = Vec::with_capacity(parents.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for p in &parents {
            total += p.num_partitions();
            offsets.push(total);
        }
        UnionOp {
            id,
            parents,
            offsets,
            _guard: guard,
        }
    }
}

impl<T: Data> Op<T> for UnionOp<T> {
    fn id(&self) -> OpId {
        self.id
    }

    fn num_partitions(&self) -> usize {
        *self.offsets.last().expect("offsets nonempty")
    }

    fn compute(&self, part: usize, ctx: &TaskCtx<'_>) -> Vec<T> {
        let which = self
            .offsets
            .windows(2)
            .position(|w| part >= w[0] && part < w[1])
            .expect("partition index within union range");
        let local = part - self.offsets[which];
        materialize(&self.parents[which], local, ctx)
            .as_ref()
            .clone()
    }

    fn name(&self) -> &str {
        "union"
    }
}
