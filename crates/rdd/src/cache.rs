//! The block cache behind `Dataset::cache()`.
//!
//! Spark's block manager stores materialized partitions in executor storage
//! memory and silently drops the least-recently-used blocks under pressure;
//! a dropped block is transparently recomputed from lineage on next access.
//! SparkScore's Algorithm 3 relies on exactly this component: the `U` RDD is
//! cached after the observed pass and re-read by all B Monte Carlo
//! iterations (the paper's Figs 4 and 5 measure the win).
//!
//! Blocks are type-erased (`Arc<dyn Any>`); typed access is recovered by
//! downcasting in [`CacheManager::get`]. Each block carries the virtual
//! node it lives on, so node deaths drop the right blocks and the task
//! scheduler can prefer cache-local placement.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use sparkscore_cluster::NodeId;

use crate::estimate::{slice_bytes, EstimateSize};
use crate::ledger::{MemCategory, MemoryLedger};
use crate::OpId;

/// A typed view of one cached block.
pub struct CachedBlock<T> {
    pub data: Arc<Vec<T>>,
    pub node: NodeId,
}

struct Entry {
    data: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    node: NodeId,
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    marked: HashSet<OpId>,
    entries: HashMap<(OpId, usize), Entry>,
    /// Keys that were present at some point — distinguishes a first
    /// materialization from a post-loss recomputation.
    ever_present: HashSet<(OpId, usize)>,
    used_bytes: u64,
    clock: u64,
}

/// Outcome of a `put`, for the engine's metrics and event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutOutcome {
    pub stored: bool,
    /// Exact byte footprint of the offered block, whether it was stored
    /// or rejected as oversized.
    pub bytes: u64,
    /// Blocks evicted under budget pressure to make room, identified with
    /// their exact bytes so the engine can emit a byte-accurate
    /// `CacheEvicted` event per victim.
    pub evicted: Vec<(OpId, usize, u64)>,
}

impl PutOutcome {
    /// Number of blocks evicted by this put.
    pub fn evicted_blocks(&self) -> u64 {
        self.evicted.len() as u64
    }
}

/// LRU block cache with a byte budget. Every byte entering or leaving the
/// cache is mirrored to the shared [`MemoryLedger`] under
/// [`MemCategory::BlockCache`], at the mutation site, while the cache lock
/// is held — the ledger never scans the cache.
pub struct CacheManager {
    inner: Mutex<CacheInner>,
    budget_bytes: u64,
    ledger: Arc<MemoryLedger>,
}

impl CacheManager {
    /// Cache over a private ledger (tests, standalone use).
    pub fn new(budget_bytes: u64) -> Self {
        Self::with_ledger(budget_bytes, Arc::new(MemoryLedger::new()))
    }

    /// Cache mirroring its residency into a shared engine ledger.
    pub fn with_ledger(budget_bytes: u64, ledger: Arc<MemoryLedger>) -> Self {
        CacheManager {
            inner: Mutex::new(CacheInner::default()),
            budget_bytes,
            ledger,
        }
    }

    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }

    /// Mark an op's partitions for caching (idempotent).
    pub fn mark(&self, op: OpId) {
        self.inner.lock().marked.insert(op);
    }

    /// Stop caching an op and drop its blocks (Spark `unpersist`).
    /// Returns each dropped block's partition and exact bytes.
    pub fn unmark(&self, op: OpId) -> Vec<(usize, u64)> {
        let mut g = self.inner.lock();
        g.marked.remove(&op);
        let keys: Vec<_> = g
            .entries
            .keys()
            .filter(|(o, _)| *o == op)
            .copied()
            .collect();
        let mut dropped = Vec::with_capacity(keys.len());
        for k in &keys {
            if let Some(e) = g.entries.remove(k) {
                g.used_bytes -= e.bytes;
                self.ledger.sub(MemCategory::BlockCache, e.bytes);
                dropped.push((k.1, e.bytes));
            }
        }
        dropped
    }

    pub fn is_marked(&self, op: OpId) -> bool {
        self.inner.lock().marked.contains(&op)
    }

    /// Fetch a block, bumping its recency. `None` on miss or type mismatch
    /// (a mismatch would be an engine bug; we treat it as a miss so lineage
    /// recomputes correct data rather than panicking in a task).
    pub fn get<T: Send + Sync + 'static>(&self, op: OpId, part: usize) -> Option<CachedBlock<T>> {
        let mut g = self.inner.lock();
        g.clock += 1;
        let clock = g.clock;
        let e = g.entries.get_mut(&(op, part))?;
        e.last_used = clock;
        let data = Arc::clone(&e.data).downcast::<Vec<T>>().ok()?;
        Some(CachedBlock { data, node: e.node })
    }

    /// Whether this exact block was ever stored (for recompute accounting).
    pub fn was_ever_present(&self, op: OpId, part: usize) -> bool {
        self.inner.lock().ever_present.contains(&(op, part))
    }

    /// Store a block on `node`. Oversized blocks (bigger than the whole
    /// budget) are not stored, like Spark's MEMORY_ONLY behaviour.
    pub fn put<T: EstimateSize + Send + Sync + 'static>(
        &self,
        op: OpId,
        part: usize,
        data: Arc<Vec<T>>,
        node: NodeId,
    ) -> PutOutcome {
        let bytes = slice_bytes(&data) as u64;
        let mut g = self.inner.lock();
        if bytes > self.budget_bytes {
            return PutOutcome {
                stored: false,
                bytes,
                evicted: Vec::new(),
            };
        }
        let mut evicted = Vec::new();
        while g.used_bytes + bytes > self.budget_bytes {
            // Evict the least recently used block.
            let victim = g
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(e) = g.entries.remove(&k) {
                        g.used_bytes -= e.bytes;
                        self.ledger.sub(MemCategory::BlockCache, e.bytes);
                        evicted.push((k.0, k.1, e.bytes));
                    }
                }
                None => break,
            }
        }
        g.clock += 1;
        let clock = g.clock;
        if let Some(old) = g.entries.insert(
            (op, part),
            Entry {
                data,
                bytes,
                node,
                last_used: clock,
            },
        ) {
            g.used_bytes -= old.bytes;
            self.ledger.sub(MemCategory::BlockCache, old.bytes);
        }
        g.used_bytes += bytes;
        self.ledger.add(MemCategory::BlockCache, bytes);
        g.ever_present.insert((op, part));
        PutOutcome {
            stored: true,
            bytes,
            evicted,
        }
    }

    /// Drop all blocks living on a dead node. Returns each lost block's
    /// identity and exact bytes.
    pub fn drop_node(&self, node: NodeId) -> Vec<(OpId, usize, u64)> {
        let mut g = self.inner.lock();
        let keys: Vec<_> = g
            .entries
            .iter()
            .filter(|(_, e)| e.node == node)
            .map(|(k, _)| *k)
            .collect();
        let mut dropped = Vec::with_capacity(keys.len());
        for k in &keys {
            if let Some(e) = g.entries.remove(k) {
                g.used_bytes -= e.bytes;
                self.ledger.sub(MemCategory::BlockCache, e.bytes);
                dropped.push((k.0, k.1, e.bytes));
            }
        }
        dropped
    }

    /// Drop the single least-recently-used block (fault injection).
    /// Returns the dropped block's identity and bytes, if any block was
    /// resident.
    pub fn drop_lru_one(&self) -> Option<(OpId, usize, u64)> {
        let mut g = self.inner.lock();
        let victim = g
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)?;
        let mut bytes = 0;
        if let Some(e) = g.entries.remove(&victim) {
            g.used_bytes -= e.bytes;
            self.ledger.sub(MemCategory::BlockCache, e.bytes);
            bytes = e.bytes;
        }
        Some((victim.0, victim.1, bytes))
    }

    /// How many partitions of `op` are currently resident.
    pub fn resident_partitions(&self, op: OpId) -> usize {
        self.inner
            .lock()
            .entries
            .keys()
            .filter(|(o, _)| *o == op)
            .count()
    }

    /// Exact bytes currently resident for `op`, summed over its cached
    /// partitions.
    pub fn resident_bytes(&self, op: OpId) -> u64 {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|((o, _), _)| *o == op)
            .map(|(_, e)| e.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn block(n: usize) -> Arc<Vec<u64>> {
        Arc::new(vec![0u64; n])
    }

    #[test]
    fn mark_get_put_round_trip() {
        let c = CacheManager::new(1 << 20);
        let op = OpId(1);
        c.mark(op);
        assert!(c.is_marked(op));
        assert!(c.get::<u64>(op, 0).is_none());
        let out = c.put(op, 0, block(10), N0);
        assert!(out.stored);
        let got = c.get::<u64>(op, 0).unwrap();
        assert_eq!(got.data.len(), 10);
        assert_eq!(got.node, N0);
    }

    #[test]
    fn type_mismatch_is_a_miss() {
        let c = CacheManager::new(1 << 20);
        c.put(OpId(1), 0, block(4), N0);
        assert!(c.get::<f64>(OpId(1), 0).is_none());
    }

    #[test]
    fn lru_eviction_under_budget_pressure() {
        // Budget fits ~2 of the 3 blocks.
        let one = slice_bytes(&vec![0u64; 100]) as u64;
        let c = CacheManager::new(2 * one + 8);
        c.put(OpId(1), 0, block(100), N0);
        c.put(OpId(1), 1, block(100), N0);
        // Touch partition 0 so partition 1 is the LRU victim.
        assert!(c.get::<u64>(OpId(1), 0).is_some());
        let out = c.put(OpId(1), 2, block(100), N0);
        assert!(out.stored);
        assert_eq!(out.bytes, one);
        assert_eq!(
            out.evicted,
            vec![(OpId(1), 1, one)],
            "victim is identified with its exact bytes"
        );
        assert_eq!(out.evicted_blocks(), 1);
        assert!(c.get::<u64>(OpId(1), 0).is_some(), "recently used survives");
        assert!(c.get::<u64>(OpId(1), 1).is_none(), "LRU evicted");
        assert!(c.get::<u64>(OpId(1), 2).is_some());
    }

    #[test]
    fn oversized_block_not_stored() {
        let c = CacheManager::new(64);
        let out = c.put(OpId(1), 0, block(1000), N0);
        assert!(!out.stored);
        assert_eq!(out.bytes, slice_bytes(&vec![0u64; 1000]) as u64);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn ever_present_tracks_recompute_eligibility() {
        let c = CacheManager::new(1 << 20);
        assert!(!c.was_ever_present(OpId(1), 0));
        let one = slice_bytes(&[0u64; 1]) as u64;
        c.put(OpId(1), 0, block(1), N0);
        assert_eq!(c.drop_lru_one(), Some((OpId(1), 0, one)));
        assert!(c.was_ever_present(OpId(1), 0));
        assert!(c.get::<u64>(OpId(1), 0).is_none());
        assert_eq!(c.drop_lru_one(), None, "cache is empty now");
    }

    #[test]
    fn drop_node_removes_only_its_blocks() {
        let c = CacheManager::new(1 << 20);
        c.put(OpId(1), 0, block(5), N0);
        c.put(OpId(1), 1, block(5), N1);
        assert_eq!(c.drop_node(N0).len(), 1);
        assert!(c.get::<u64>(OpId(1), 0).is_none());
        assert!(c.get::<u64>(OpId(1), 1).is_some());
    }

    #[test]
    fn unpersist_drops_blocks_and_mark() {
        let c = CacheManager::new(1 << 20);
        c.mark(OpId(1));
        c.put(OpId(1), 0, block(5), N0);
        c.put(OpId(1), 1, block(5), N0);
        let five = slice_bytes(&[0u64; 5]) as u64;
        let mut dropped = c.unmark(OpId(1));
        dropped.sort_unstable();
        assert_eq!(dropped, vec![(0, five), (1, five)]);
        assert!(!c.is_marked(OpId(1)));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn put_replaces_existing_without_leaking_bytes() {
        let c = CacheManager::new(1 << 20);
        c.put(OpId(1), 0, block(100), N0);
        let used_once = c.used_bytes();
        c.put(OpId(1), 0, block(100), N0);
        assert_eq!(c.used_bytes(), used_once);
    }

    #[test]
    fn resident_partitions_counts_per_op() {
        let c = CacheManager::new(1 << 20);
        c.put(OpId(1), 0, block(1), N0);
        c.put(OpId(1), 3, block(1), N0);
        c.put(OpId(2), 0, block(1), N0);
        assert_eq!(c.resident_partitions(OpId(1)), 2);
        assert_eq!(c.resident_partitions(OpId(2)), 1);
        assert_eq!(c.resident_partitions(OpId(3)), 0);
    }

    #[test]
    fn resident_bytes_sums_per_op() {
        let c = CacheManager::new(1 << 20);
        let one = slice_bytes(&[0u64; 1]) as u64;
        c.put(OpId(1), 0, block(1), N0);
        c.put(OpId(1), 3, block(1), N0);
        c.put(OpId(2), 0, block(1), N0);
        assert_eq!(c.resident_bytes(OpId(1)), 2 * one);
        assert_eq!(c.resident_bytes(OpId(2)), one);
        assert_eq!(c.resident_bytes(OpId(3)), 0);
    }

    #[test]
    fn ledger_mirrors_every_mutation_path() {
        let ledger = Arc::new(MemoryLedger::new());
        let one = slice_bytes(&vec![0u64; 100]) as u64;
        let c = CacheManager::with_ledger(2 * one + 8, Arc::clone(&ledger));
        c.put(OpId(1), 0, block(100), N0);
        c.put(OpId(1), 1, block(100), N1);
        assert_eq!(ledger.used(MemCategory::BlockCache), c.used_bytes());
        c.put(OpId(2), 0, block(100), N0); // forces an LRU eviction
        assert_eq!(ledger.used(MemCategory::BlockCache), c.used_bytes());
        c.put(OpId(2), 0, block(100), N0); // replacement
        assert_eq!(ledger.used(MemCategory::BlockCache), c.used_bytes());
        c.drop_node(N1);
        assert_eq!(ledger.used(MemCategory::BlockCache), c.used_bytes());
        c.drop_lru_one();
        assert_eq!(ledger.used(MemCategory::BlockCache), c.used_bytes());
        c.put(OpId(3), 0, block(100), N0);
        c.unmark(OpId(3));
        assert_eq!(ledger.used(MemCategory::BlockCache), c.used_bytes());
        assert_eq!(ledger.peak(MemCategory::BlockCache), 2 * one);
    }
}
