//! Operator metadata, lineage, and job planning.
//!
//! Every dataset operator registers an [`OpMeta`] describing its parents
//! and whether each edge crosses a shuffle. Before running a job the
//! engine asks [`MetaRegistry::plan_shuffles`] for the shuffles that must
//! be materialized, in dependency order — this is the DAG-scheduler step
//! that turns a lineage graph into stages, including Spark's key
//! optimization for the paper's Algorithm 3: a lineage subtree whose root
//! is **fully cached** is pruned, so the expensive upstream stages (text
//! parsing, the weights join) are skipped entirely on cache hits.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use parking_lot::Mutex;

use crate::cache::CacheManager;
use crate::{OpId, ShuffleId};

/// One dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepMeta {
    pub parent: OpId,
    /// `Some` when the edge is wide (parent feeds this op through a
    /// shuffle); the id names the shuffle whose map side runs over the
    /// parent.
    pub shuffle: Option<ShuffleId>,
}

/// Metadata for one operator.
#[derive(Debug, Clone)]
pub struct OpMeta {
    pub id: OpId,
    pub name: String,
    pub deps: Vec<DepMeta>,
    pub num_partitions: usize,
}

/// Registry of live operators' metadata.
#[derive(Default)]
pub struct MetaRegistry {
    inner: Mutex<HashMap<OpId, OpMeta>>,
}

impl MetaRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&self, meta: OpMeta) {
        self.inner.lock().insert(meta.id, meta);
    }

    /// Remove a dropped operator's entry.
    pub fn remove(&self, id: OpId) {
        self.inner.lock().remove(&id);
    }

    pub fn get(&self, id: OpId) -> Option<OpMeta> {
        self.inner.lock().get(&id).cloned()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Whether every partition of `id` is resident in the cache, making its
    /// upstream lineage unnecessary for the next job.
    fn fully_cached(&self, id: OpId, cache: &CacheManager) -> bool {
        if !cache.is_marked(id) {
            return false;
        }
        match self.get(id) {
            Some(m) => cache.resident_partitions(id) == m.num_partitions && m.num_partitions > 0,
            None => false,
        }
    }

    /// Shuffles needed to run a job on `target`, in execution order
    /// (upstream shuffles first). Subtrees rooted at fully-cached ops are
    /// pruned.
    pub fn plan_shuffles(&self, target: OpId, cache: &CacheManager) -> Vec<ShuffleId> {
        let mut visited: HashSet<OpId> = HashSet::new();
        let mut seen_shuffles: HashSet<ShuffleId> = HashSet::new();
        let mut order: Vec<ShuffleId> = Vec::new();
        self.visit(target, cache, &mut visited, &mut seen_shuffles, &mut order);
        order
    }

    fn visit(
        &self,
        id: OpId,
        cache: &CacheManager,
        visited: &mut HashSet<OpId>,
        seen: &mut HashSet<ShuffleId>,
        order: &mut Vec<ShuffleId>,
    ) {
        if !visited.insert(id) {
            return;
        }
        if self.fully_cached(id, cache) {
            return; // Prune: this subtree will be served from the cache.
        }
        let Some(meta) = self.get(id) else { return };
        for dep in &meta.deps {
            self.visit(dep.parent, cache, visited, seen, order);
            if let Some(sid) = dep.shuffle {
                if seen.insert(sid) {
                    order.push(sid);
                }
            }
        }
    }

    /// Human-readable lineage tree rooted at `target` (Spark's
    /// `toDebugString`). Cached ops are annotated with residency.
    pub fn lineage_string(&self, target: OpId, cache: &CacheManager) -> String {
        let mut out = String::new();
        self.fmt_op(target, cache, 0, &mut out);
        out
    }

    fn fmt_op(&self, id: OpId, cache: &CacheManager, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self.get(id) {
            Some(m) => {
                let cached = if cache.is_marked(id) {
                    format!(
                        " [cached {}/{}]",
                        cache.resident_partitions(id),
                        m.num_partitions
                    )
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "{} (op {}, {} parts){}",
                    m.name, id.0, m.num_partitions, cached
                );
                for dep in &m.deps {
                    if let Some(sid) = dep.shuffle {
                        for _ in 0..depth + 1 {
                            out.push_str("  ");
                        }
                        let _ = writeln!(out, "-- shuffle {} --", sid.0);
                    }
                    self.fmt_op(dep.parent, cache, depth + 1, out);
                }
            }
            None => {
                let _ = writeln!(out, "<dropped op {}>", id.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkscore_cluster::NodeId;
    use std::sync::Arc;

    fn meta(id: u64, deps: Vec<DepMeta>, parts: usize) -> OpMeta {
        OpMeta {
            id: OpId(id),
            name: format!("op{id}"),
            deps,
            num_partitions: parts,
        }
    }

    fn narrow(parent: u64) -> DepMeta {
        DepMeta {
            parent: OpId(parent),
            shuffle: None,
        }
    }

    fn wide(parent: u64, sid: u64) -> DepMeta {
        DepMeta {
            parent: OpId(parent),
            shuffle: Some(ShuffleId(sid)),
        }
    }

    /// source(0) -> map(1) -> shuffle A -> reduced(2) -> map(3)
    ///                                   -> shuffle B -> reduced(4)
    fn chain() -> MetaRegistry {
        let r = MetaRegistry::new();
        r.register(meta(0, vec![], 4));
        r.register(meta(1, vec![narrow(0)], 4));
        r.register(meta(2, vec![wide(1, 10)], 2));
        r.register(meta(3, vec![narrow(2)], 2));
        r.register(meta(4, vec![wide(3, 11)], 2));
        r
    }

    #[test]
    fn plans_shuffles_in_dependency_order() {
        let r = chain();
        let cache = CacheManager::new(1 << 20);
        assert_eq!(
            r.plan_shuffles(OpId(4), &cache),
            vec![ShuffleId(10), ShuffleId(11)]
        );
        assert_eq!(r.plan_shuffles(OpId(3), &cache), vec![ShuffleId(10)]);
        assert!(r.plan_shuffles(OpId(1), &cache).is_empty());
    }

    #[test]
    fn fully_cached_op_prunes_upstream_shuffles() {
        let r = chain();
        let cache = CacheManager::new(1 << 20);
        cache.mark(OpId(3));
        cache.put(OpId(3), 0, Arc::new(vec![0u8]), NodeId(0));
        cache.put(OpId(3), 1, Arc::new(vec![0u8]), NodeId(0));
        // op3 fully cached (2/2): shuffle 10 pruned, only 11 remains.
        assert_eq!(r.plan_shuffles(OpId(4), &cache), vec![ShuffleId(11)]);
    }

    #[test]
    fn partially_cached_op_does_not_prune() {
        let r = chain();
        let cache = CacheManager::new(1 << 20);
        cache.mark(OpId(3));
        cache.put(OpId(3), 0, Arc::new(vec![0u8]), NodeId(0));
        assert_eq!(
            r.plan_shuffles(OpId(4), &cache),
            vec![ShuffleId(10), ShuffleId(11)]
        );
    }

    #[test]
    fn diamond_dependencies_dedup_shuffles() {
        // 0 -> shuffle 5 -> 1; two children 2, 3 of 1; 4 joins them narrowly.
        let r = MetaRegistry::new();
        r.register(meta(0, vec![], 2));
        r.register(meta(1, vec![wide(0, 5)], 2));
        r.register(meta(2, vec![narrow(1)], 2));
        r.register(meta(3, vec![narrow(1)], 2));
        r.register(meta(4, vec![narrow(2), narrow(3)], 2));
        let cache = CacheManager::new(1 << 20);
        assert_eq!(r.plan_shuffles(OpId(4), &cache), vec![ShuffleId(5)]);
    }

    #[test]
    fn remove_forgets_op() {
        let r = chain();
        assert_eq!(r.len(), 5);
        r.remove(OpId(4));
        assert_eq!(r.len(), 4);
        assert!(r.get(OpId(4)).is_none());
    }

    #[test]
    fn lineage_string_shows_structure() {
        let r = chain();
        let cache = CacheManager::new(1 << 20);
        cache.mark(OpId(3));
        let s = r.lineage_string(OpId(4), &cache);
        assert!(s.contains("op4"));
        assert!(s.contains("-- shuffle 11 --"));
        assert!(s.contains("[cached 0/2]"));
        assert!(s.contains("op0"));
    }
}
