//! Shuffle storage and key hashing.
//!
//! Wide transformations (`reduce_by_key`, `group_by_key`, `join`, …) cut
//! the lineage into stages. Map-side tasks hash-partition their records
//! into one bucket per reduce partition and register the buckets here —
//! the analogue of Spark's shuffle files, which outlive the map stage so
//! reducers (and recovery) can fetch them. Buckets are type-erased; the
//! typed shuffle operators in [`crate::ops`] downcast on read.
//!
//! Hashing is deterministic (`SipHash` with fixed keys via
//! [`DefaultHasher::new`]) so partition assignment — and therefore every
//! result that depends on it — is reproducible across runs and machines.

use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sparkscore_cluster::NodeId;

use crate::context::TaskCtx;
use crate::ledger::{MemCategory, MemoryLedger};
use crate::ShuffleId;

/// Number of lock shards the map-output store is split across. Map tasks
/// land on `hash(shuffle, map_part) % SHUFFLE_SHARDS`, so concurrent map
/// writers and reduce readers contend on 1/16th of the state instead of
/// one global lock.
pub const SHUFFLE_SHARDS: usize = 16;

/// Deterministic hash map used for combine/co-group tables so that output
/// ordering is a pure function of the input.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DefaultHasher>>;

/// Deterministic 64-bit hash of a key.
#[inline]
pub fn hash_key<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Assigns keys to reduce partitions by hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartitioner {
    parts: usize,
}

impl HashPartitioner {
    pub fn new(parts: usize) -> Self {
        assert!(parts > 0, "partitioner needs at least one partition");
        HashPartitioner { parts }
    }

    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.parts
    }

    #[inline]
    pub fn partition<K: Hash + ?Sized>(&self, key: &K) -> usize {
        (hash_key(key) % self.parts as u64) as usize
    }
}

/// One map task's output: a bucket per reduce partition, resident on the
/// virtual node that ran the task.
struct MapOutput {
    buckets: Vec<Bucket>,
    node: NodeId,
}

impl MapOutput {
    fn bytes(&self) -> u64 {
        self.buckets.iter().map(|b| b.bytes).sum()
    }
}

/// Type-erased shuffle bucket.
pub struct Bucket {
    pub data: Arc<dyn Any + Send + Sync>,
    pub bytes: u64,
}

impl Clone for Bucket {
    fn clone(&self) -> Self {
        Bucket {
            data: Arc::clone(&self.data),
            bytes: self.bytes,
        }
    }
}

/// Type-erased description of how to (re)run one shuffle's map side.
pub struct ShuffleStage {
    pub num_map_parts: usize,
    pub num_reduce_parts: usize,
    /// Runs map task `map_part`, storing its output in the manager.
    pub run_map_task: Arc<dyn Fn(usize, &TaskCtx<'_>) + Send + Sync>,
}

/// One-call snapshot of a shuffle stage for the scheduler: its shape, the
/// map-task runner, and which map outputs are currently missing. Replaces
/// the `stage_shape` + `map_task_runner` + `missing_map_parts` triple the
/// scheduler used to make, each of which took the (now sharded) locks
/// again.
pub struct ShuffleStageInfo {
    pub num_map_parts: usize,
    pub num_reduce_parts: usize,
    /// Map partitions whose output is currently absent, ascending.
    pub missing_map_parts: Vec<usize>,
    pub run_map_task: Arc<dyn Fn(usize, &TaskCtx<'_>) + Send + Sync>,
}

type OutputShard = Mutex<HashMap<(ShuffleId, usize), MapOutput>>;

/// Registry of shuffle stages and their map outputs.
///
/// Stage registrations are read-mostly and live behind one `RwLock`; map
/// outputs — the hot, per-task read/write state — are sharded across
/// [`SHUFFLE_SHARDS`] independent locks keyed by `hash(shuffle,
/// map_part)`, and reducers fetch all of a partition's buckets with one
/// pass over the shards ([`ShuffleManager::get_buckets`]) instead of one
/// global-lock round-trip per map partition.
#[derive(Default)]
pub struct ShuffleManager {
    stages: RwLock<HashMap<ShuffleId, Arc<ShuffleStage>>>,
    shards: [OutputShard; SHUFFLE_SHARDS],
    /// Running total of bucket bytes across all shards, maintained by
    /// O(1) deltas at every write/cleanup site — `stored_bytes` reads this
    /// instead of scanning 16 shards.
    total_bytes: AtomicU64,
    ledger: Arc<MemoryLedger>,
}

#[inline]
fn shard_index(sid: ShuffleId, map_part: usize) -> usize {
    (hash_key(&(sid.0, map_part)) % SHUFFLE_SHARDS as u64) as usize
}

impl ShuffleManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Manager mirroring its residency into a shared engine ledger.
    pub fn with_ledger(ledger: Arc<MemoryLedger>) -> Self {
        ShuffleManager {
            ledger,
            ..Self::default()
        }
    }

    /// Bytes became resident: bump the running counter and the ledger.
    fn credit(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.ledger.add(MemCategory::ShuffleStore, bytes);
    }

    /// Bytes left the store: both mirrors go down by the same delta.
    fn debit(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.total_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.ledger.sub(MemCategory::ShuffleStore, bytes);
    }

    pub fn register(&self, sid: ShuffleId, stage: ShuffleStage) {
        self.stages.write().insert(sid, Arc::new(stage));
    }

    /// Drop the stage and all its outputs (called when the shuffle's
    /// operator is dropped — Spark's `ContextCleaner` equivalent).
    pub fn unregister(&self, sid: ShuffleId) {
        self.stages.write().remove(&sid);
        let mut freed = 0;
        for shard in &self.shards {
            shard.lock().retain(|(s, _), o| {
                let keep = *s != sid;
                if !keep {
                    freed += o.bytes();
                }
                keep
            });
        }
        self.debit(freed);
    }

    pub fn stage_shape(&self, sid: ShuffleId) -> Option<(usize, usize)> {
        self.stages
            .read()
            .get(&sid)
            .map(|s| (s.num_map_parts, s.num_reduce_parts))
    }

    pub fn map_task_runner(
        &self,
        sid: ShuffleId,
    ) -> Option<Arc<dyn Fn(usize, &TaskCtx<'_>) + Send + Sync>> {
        self.stages
            .read()
            .get(&sid)
            .map(|s| Arc::clone(&s.run_map_task))
    }

    /// Everything the scheduler needs to materialize `sid`, in one
    /// snapshot: one stage-registry read plus one pass over the output
    /// shards.
    pub fn stage_info(&self, sid: ShuffleId) -> Option<ShuffleStageInfo> {
        let (num_map_parts, num_reduce_parts, runner) = {
            let stages = self.stages.read();
            let stage = stages.get(&sid)?;
            (
                stage.num_map_parts,
                stage.num_reduce_parts,
                Arc::clone(&stage.run_map_task),
            )
        };
        Some(ShuffleStageInfo {
            num_map_parts,
            num_reduce_parts,
            missing_map_parts: self.missing_in(sid, num_map_parts),
            run_map_task: runner,
        })
    }

    /// Map partitions of `sid` in `0..num_map_parts` with no stored
    /// output, ascending — one lock per shard, not per partition.
    fn missing_in(&self, sid: ShuffleId, num_map_parts: usize) -> Vec<usize> {
        let mut by_shard: [Vec<usize>; SHUFFLE_SHARDS] = Default::default();
        for m in 0..num_map_parts {
            by_shard[shard_index(sid, m)].push(m);
        }
        let mut missing = Vec::new();
        for (shard, parts) in self.shards.iter().zip(&by_shard) {
            if parts.is_empty() {
                continue;
            }
            let g = shard.lock();
            missing.extend(
                parts
                    .iter()
                    .copied()
                    .filter(|&m| !g.contains_key(&(sid, m))),
            );
        }
        missing.sort_unstable();
        missing
    }

    /// Map partitions whose output is currently absent.
    pub fn missing_map_parts(&self, sid: ShuffleId) -> Vec<usize> {
        match self.stage_shape(sid) {
            Some((maps, _)) => self.missing_in(sid, maps),
            None => Vec::new(),
        }
    }

    pub fn has_map_output(&self, sid: ShuffleId, map_part: usize) -> bool {
        self.shards[shard_index(sid, map_part)]
            .lock()
            .contains_key(&(sid, map_part))
    }

    /// Store one map task's buckets (one per reduce partition). Returns
    /// the bucket bytes now resident for `(sid, map_part)`, so the caller
    /// can emit a byte-accurate event.
    pub fn put_map_output(
        &self,
        sid: ShuffleId,
        map_part: usize,
        buckets: Vec<Bucket>,
        node: NodeId,
    ) -> u64 {
        let output = MapOutput { buckets, node };
        let bytes = output.bytes();
        let replaced = self.shards[shard_index(sid, map_part)]
            .lock()
            .insert((sid, map_part), output);
        if let Some(old) = replaced {
            self.debit(old.bytes());
        }
        self.credit(bytes);
        bytes
    }

    /// Fetch one bucket; `None` if the map output is missing (lost or not
    /// yet produced) — the caller must re-run the map task.
    pub fn get_bucket(
        &self,
        sid: ShuffleId,
        map_part: usize,
        reduce_part: usize,
    ) -> Option<Bucket> {
        self.shards[shard_index(sid, map_part)]
            .lock()
            .get(&(sid, map_part))
            .map(|o| o.buckets[reduce_part].clone())
    }

    /// Batch fetch for a reducer: the `reduce_part` bucket of every map
    /// partition in `0..num_map_parts`, with one pass over the lock
    /// shards instead of one lock round-trip per map partition. A `None`
    /// entry means that map output is missing (lost or not yet produced)
    /// and the caller must recover it.
    pub fn get_buckets(
        &self,
        sid: ShuffleId,
        reduce_part: usize,
        num_map_parts: usize,
    ) -> Vec<Option<Bucket>> {
        let mut by_shard: [Vec<usize>; SHUFFLE_SHARDS] = Default::default();
        for m in 0..num_map_parts {
            by_shard[shard_index(sid, m)].push(m);
        }
        let mut out: Vec<Option<Bucket>> = (0..num_map_parts).map(|_| None).collect();
        for (shard, parts) in self.shards.iter().zip(&by_shard) {
            if parts.is_empty() {
                continue;
            }
            let g = shard.lock();
            for &m in parts {
                out[m] = g.get(&(sid, m)).map(|o| o.buckets[reduce_part].clone());
            }
        }
        out
    }

    /// Drop every map output resident on `node`. Returns how many.
    pub fn drop_node(&self, node: NodeId) -> usize {
        let mut dropped = 0;
        let mut freed = 0;
        for shard in &self.shards {
            let mut g = shard.lock();
            g.retain(|_, o| {
                let keep = o.node != node;
                if !keep {
                    dropped += 1;
                    freed += o.bytes();
                }
                keep
            });
        }
        self.debit(freed);
        dropped
    }

    /// Drop one arbitrary map output (fault injection). Deterministic
    /// choice: the smallest `(sid, map_part)` key. Returns the dropped
    /// output's identity, if any output existed.
    pub fn drop_one(&self) -> Option<(ShuffleId, usize)> {
        loop {
            let victim = self
                .shards
                .iter()
                .filter_map(|s| s.lock().keys().min().copied())
                .min()?;
            // Concurrent removal between scan and re-lock is possible;
            // retry until the chosen victim is actually ours to drop.
            if let Some(o) = self.shards[shard_index(victim.0, victim.1)]
                .lock()
                .remove(&victim)
            {
                self.debit(o.bytes());
                return Some(victim);
            }
        }
    }

    /// Total bytes held across all buckets — an O(1) read of the running
    /// counter, safe to call from hot paths and profiler ticks.
    pub fn stored_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// The old full-scan total, kept as the ground truth the running
    /// counter is cross-checked against in tests.
    pub fn stored_bytes_scan(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(MapOutput::bytes).sum::<u64>())
            .sum()
    }

    /// Number of registered stages (diagnostics / leak tests).
    pub fn num_registered(&self) -> usize {
        self.stages.read().len()
    }

    /// Map outputs held per lock shard ([`SHUFFLE_SHARDS`] entries) — the
    /// profiler's view of how evenly the shuffle store is loaded.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(v: Vec<u32>) -> Bucket {
        let bytes = (v.len() * 4) as u64;
        Bucket {
            data: Arc::new(v),
            bytes,
        }
    }

    /// The running counter must agree with the ground-truth shard scan
    /// after every mutation.
    fn check_counter(m: &ShuffleManager) {
        debug_assert_eq!(
            m.stored_bytes(),
            m.stored_bytes_scan(),
            "running byte counter diverged from the shard scan"
        );
    }

    fn stage(maps: usize, reduces: usize) -> ShuffleStage {
        ShuffleStage {
            num_map_parts: maps,
            num_reduce_parts: reduces,
            run_map_task: Arc::new(|_, _| {}),
        }
    }

    #[test]
    fn partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner::new(7);
        for key in 0..1000u64 {
            let a = p.partition(&key);
            assert_eq!(a, p.partition(&key));
            assert!(a < 7);
        }
    }

    #[test]
    fn partitioner_spreads_keys() {
        let p = HashPartitioner::new(4);
        let mut counts = [0usize; 4];
        for key in 0..1000u64 {
            counts[p.partition(&key)] += 1;
        }
        for &c in &counts {
            assert!(c > 100, "severely skewed partitioning: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = HashPartitioner::new(0);
    }

    #[test]
    fn missing_then_present() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(3, 2));
        assert_eq!(m.missing_map_parts(sid), vec![0, 1, 2]);
        m.put_map_output(sid, 1, vec![bucket(vec![1]), bucket(vec![2])], NodeId(0));
        assert_eq!(m.missing_map_parts(sid), vec![0, 2]);
        assert!(m.has_map_output(sid, 1));
        let b = m.get_bucket(sid, 1, 0).unwrap();
        assert_eq!(&**b.data.downcast::<Vec<u32>>().unwrap(), &vec![1]);
        assert!(m.get_bucket(sid, 0, 0).is_none());
    }

    #[test]
    fn unregister_drops_outputs() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(1, 1));
        m.put_map_output(sid, 0, vec![bucket(vec![1])], NodeId(0));
        check_counter(&m);
        m.unregister(sid);
        assert_eq!(m.num_registered(), 0);
        assert_eq!(m.stored_bytes(), 0);
        check_counter(&m);
        assert!(
            m.missing_map_parts(sid).is_empty(),
            "unknown shuffle has no parts"
        );
    }

    #[test]
    fn drop_node_loses_its_outputs_only() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(2, 1));
        m.put_map_output(sid, 0, vec![bucket(vec![1])], NodeId(0));
        m.put_map_output(sid, 1, vec![bucket(vec![2])], NodeId(1));
        assert_eq!(m.drop_node(NodeId(0)), 1);
        assert_eq!(m.missing_map_parts(sid), vec![0]);
        check_counter(&m);
    }

    #[test]
    fn drop_one_is_deterministic() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(2, 1));
        m.put_map_output(sid, 0, vec![bucket(vec![1])], NodeId(0));
        m.put_map_output(sid, 1, vec![bucket(vec![2])], NodeId(0));
        assert_eq!(m.drop_one(), Some((sid, 0)));
        assert_eq!(
            m.missing_map_parts(sid),
            vec![0],
            "smallest key dropped first"
        );
        check_counter(&m);
        assert_eq!(m.drop_one(), Some((sid, 1)));
        assert_eq!(m.drop_one(), None);
        assert_eq!(m.stored_bytes(), 0);
        check_counter(&m);
    }

    #[test]
    fn stored_bytes_sums_buckets() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(1, 2));
        let stored = m.put_map_output(sid, 0, vec![bucket(vec![1, 2]), bucket(vec![3])], NodeId(0));
        assert_eq!(stored, 12);
        assert_eq!(m.stored_bytes(), 12);
        check_counter(&m);
        assert_eq!(m.shard_occupancy().len(), SHUFFLE_SHARDS);
        assert_eq!(m.shard_occupancy().iter().sum::<usize>(), 1);
    }

    #[test]
    fn replacement_put_does_not_double_count() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(1, 1));
        m.put_map_output(sid, 0, vec![bucket(vec![1, 2, 3])], NodeId(0));
        m.put_map_output(sid, 0, vec![bucket(vec![4])], NodeId(0));
        assert_eq!(m.stored_bytes(), 4);
        check_counter(&m);
    }

    #[test]
    fn ledger_mirrors_store_residency() {
        let ledger = Arc::new(MemoryLedger::new());
        let m = ShuffleManager::with_ledger(Arc::clone(&ledger));
        let sid = ShuffleId(1);
        m.register(sid, stage(2, 1));
        m.put_map_output(sid, 0, vec![bucket(vec![1, 2])], NodeId(0));
        m.put_map_output(sid, 1, vec![bucket(vec![3])], NodeId(0));
        assert_eq!(ledger.used(MemCategory::ShuffleStore), m.stored_bytes());
        assert_eq!(ledger.peak(MemCategory::ShuffleStore), 12);
        m.unregister(sid);
        assert_eq!(ledger.used(MemCategory::ShuffleStore), 0);
        check_counter(&m);
    }
}
