//! Shuffle storage and key hashing.
//!
//! Wide transformations (`reduce_by_key`, `group_by_key`, `join`, …) cut
//! the lineage into stages. Map-side tasks hash-partition their records
//! into one bucket per reduce partition and register the buckets here —
//! the analogue of Spark's shuffle files, which outlive the map stage so
//! reducers (and recovery) can fetch them. Buckets are type-erased; the
//! typed shuffle operators in [`crate::ops`] downcast on read.
//!
//! Hashing is deterministic (`SipHash` with fixed keys via
//! [`DefaultHasher::new`]) so partition assignment — and therefore every
//! result that depends on it — is reproducible across runs and machines.

use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;
use sparkscore_cluster::NodeId;

use crate::context::TaskCtx;
use crate::ShuffleId;

/// Deterministic hash map used for combine/co-group tables so that output
/// ordering is a pure function of the input.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DefaultHasher>>;

/// Deterministic 64-bit hash of a key.
#[inline]
pub fn hash_key<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Assigns keys to reduce partitions by hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartitioner {
    parts: usize,
}

impl HashPartitioner {
    pub fn new(parts: usize) -> Self {
        assert!(parts > 0, "partitioner needs at least one partition");
        HashPartitioner { parts }
    }

    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.parts
    }

    #[inline]
    pub fn partition<K: Hash + ?Sized>(&self, key: &K) -> usize {
        (hash_key(key) % self.parts as u64) as usize
    }
}

/// One map task's output: a bucket per reduce partition, resident on the
/// virtual node that ran the task.
struct MapOutput {
    buckets: Vec<Bucket>,
    node: NodeId,
}

/// Type-erased shuffle bucket.
pub struct Bucket {
    pub data: Arc<dyn Any + Send + Sync>,
    pub bytes: u64,
}

impl Clone for Bucket {
    fn clone(&self) -> Self {
        Bucket {
            data: Arc::clone(&self.data),
            bytes: self.bytes,
        }
    }
}

/// Type-erased description of how to (re)run one shuffle's map side.
pub struct ShuffleStage {
    pub num_map_parts: usize,
    pub num_reduce_parts: usize,
    /// Runs map task `map_part`, storing its output in the manager.
    pub run_map_task: Arc<dyn Fn(usize, &TaskCtx<'_>) + Send + Sync>,
}

#[derive(Default)]
struct ShuffleInner {
    stages: HashMap<ShuffleId, ShuffleStage>,
    outputs: HashMap<(ShuffleId, usize), MapOutput>,
}

/// Registry of shuffle stages and their map outputs.
#[derive(Default)]
pub struct ShuffleManager {
    inner: Mutex<ShuffleInner>,
}

impl ShuffleManager {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&self, sid: ShuffleId, stage: ShuffleStage) {
        self.inner.lock().stages.insert(sid, stage);
    }

    /// Drop the stage and all its outputs (called when the shuffle's
    /// operator is dropped — Spark's `ContextCleaner` equivalent).
    pub fn unregister(&self, sid: ShuffleId) {
        let mut g = self.inner.lock();
        g.stages.remove(&sid);
        g.outputs.retain(|(s, _), _| *s != sid);
    }

    pub fn stage_shape(&self, sid: ShuffleId) -> Option<(usize, usize)> {
        self.inner
            .lock()
            .stages
            .get(&sid)
            .map(|s| (s.num_map_parts, s.num_reduce_parts))
    }

    pub fn map_task_runner(
        &self,
        sid: ShuffleId,
    ) -> Option<Arc<dyn Fn(usize, &TaskCtx<'_>) + Send + Sync>> {
        self.inner
            .lock()
            .stages
            .get(&sid)
            .map(|s| Arc::clone(&s.run_map_task))
    }

    /// Map partitions whose output is currently absent.
    pub fn missing_map_parts(&self, sid: ShuffleId) -> Vec<usize> {
        let g = self.inner.lock();
        let Some(stage) = g.stages.get(&sid) else {
            return Vec::new();
        };
        (0..stage.num_map_parts)
            .filter(|&m| !g.outputs.contains_key(&(sid, m)))
            .collect()
    }

    pub fn has_map_output(&self, sid: ShuffleId, map_part: usize) -> bool {
        self.inner.lock().outputs.contains_key(&(sid, map_part))
    }

    /// Store one map task's buckets (one per reduce partition).
    pub fn put_map_output(
        &self,
        sid: ShuffleId,
        map_part: usize,
        buckets: Vec<Bucket>,
        node: NodeId,
    ) {
        self.inner
            .lock()
            .outputs
            .insert((sid, map_part), MapOutput { buckets, node });
    }

    /// Fetch one bucket; `None` if the map output is missing (lost or not
    /// yet produced) — the caller must re-run the map task.
    pub fn get_bucket(
        &self,
        sid: ShuffleId,
        map_part: usize,
        reduce_part: usize,
    ) -> Option<Bucket> {
        self.inner
            .lock()
            .outputs
            .get(&(sid, map_part))
            .map(|o| o.buckets[reduce_part].clone())
    }

    /// Drop every map output resident on `node`. Returns how many.
    pub fn drop_node(&self, node: NodeId) -> usize {
        let mut g = self.inner.lock();
        let before = g.outputs.len();
        g.outputs.retain(|_, o| o.node != node);
        before - g.outputs.len()
    }

    /// Drop one arbitrary map output (fault injection). Deterministic
    /// choice: the smallest `(sid, map_part)` key. Returns the dropped
    /// output's identity, if any output existed.
    pub fn drop_one(&self) -> Option<(ShuffleId, usize)> {
        let mut g = self.inner.lock();
        let victim = g.outputs.keys().min().copied()?;
        g.outputs.remove(&victim);
        Some(victim)
    }

    /// Total bytes held across all buckets (diagnostics).
    pub fn stored_bytes(&self) -> u64 {
        self.inner
            .lock()
            .outputs
            .values()
            .flat_map(|o| o.buckets.iter().map(|b| b.bytes))
            .sum()
    }

    /// Number of registered stages (diagnostics / leak tests).
    pub fn num_registered(&self) -> usize {
        self.inner.lock().stages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(v: Vec<u32>) -> Bucket {
        let bytes = (v.len() * 4) as u64;
        Bucket {
            data: Arc::new(v),
            bytes,
        }
    }

    fn stage(maps: usize, reduces: usize) -> ShuffleStage {
        ShuffleStage {
            num_map_parts: maps,
            num_reduce_parts: reduces,
            run_map_task: Arc::new(|_, _| {}),
        }
    }

    #[test]
    fn partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner::new(7);
        for key in 0..1000u64 {
            let a = p.partition(&key);
            assert_eq!(a, p.partition(&key));
            assert!(a < 7);
        }
    }

    #[test]
    fn partitioner_spreads_keys() {
        let p = HashPartitioner::new(4);
        let mut counts = [0usize; 4];
        for key in 0..1000u64 {
            counts[p.partition(&key)] += 1;
        }
        for &c in &counts {
            assert!(c > 100, "severely skewed partitioning: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        let _ = HashPartitioner::new(0);
    }

    #[test]
    fn missing_then_present() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(3, 2));
        assert_eq!(m.missing_map_parts(sid), vec![0, 1, 2]);
        m.put_map_output(sid, 1, vec![bucket(vec![1]), bucket(vec![2])], NodeId(0));
        assert_eq!(m.missing_map_parts(sid), vec![0, 2]);
        assert!(m.has_map_output(sid, 1));
        let b = m.get_bucket(sid, 1, 0).unwrap();
        assert_eq!(&**b.data.downcast::<Vec<u32>>().unwrap(), &vec![1]);
        assert!(m.get_bucket(sid, 0, 0).is_none());
    }

    #[test]
    fn unregister_drops_outputs() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(1, 1));
        m.put_map_output(sid, 0, vec![bucket(vec![1])], NodeId(0));
        m.unregister(sid);
        assert_eq!(m.num_registered(), 0);
        assert_eq!(m.stored_bytes(), 0);
        assert!(
            m.missing_map_parts(sid).is_empty(),
            "unknown shuffle has no parts"
        );
    }

    #[test]
    fn drop_node_loses_its_outputs_only() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(2, 1));
        m.put_map_output(sid, 0, vec![bucket(vec![1])], NodeId(0));
        m.put_map_output(sid, 1, vec![bucket(vec![2])], NodeId(1));
        assert_eq!(m.drop_node(NodeId(0)), 1);
        assert_eq!(m.missing_map_parts(sid), vec![0]);
    }

    #[test]
    fn drop_one_is_deterministic() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(2, 1));
        m.put_map_output(sid, 0, vec![bucket(vec![1])], NodeId(0));
        m.put_map_output(sid, 1, vec![bucket(vec![2])], NodeId(0));
        assert_eq!(m.drop_one(), Some((sid, 0)));
        assert_eq!(
            m.missing_map_parts(sid),
            vec![0],
            "smallest key dropped first"
        );
        assert_eq!(m.drop_one(), Some((sid, 1)));
        assert_eq!(m.drop_one(), None);
    }

    #[test]
    fn stored_bytes_sums_buckets() {
        let m = ShuffleManager::new();
        let sid = ShuffleId(1);
        m.register(sid, stage(1, 2));
        m.put_map_output(sid, 0, vec![bucket(vec![1, 2]), bucket(vec![3])], NodeId(0));
        assert_eq!(m.stored_bytes(), 12);
    }
}
