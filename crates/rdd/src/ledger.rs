//! Memory ledger: the byte-economy counterpart of the span/trace plane.
//!
//! Every byte-holding subsystem registers under a typed [`MemCategory`] and
//! keeps its slot current with O(1) atomic deltas at the put/evict/free
//! sites themselves — never by scanning its own storage. Subsystems whose
//! residency is naturally owned elsewhere (DFS blocks, thread-local
//! scratch) instead register a *source* closure that [`MemoryLedger::refresh`]
//! polls; delta-maintained and polled categories share the same snapshot,
//! gauge, and ops-command surface.
//!
//! Each slot tracks current `used` bytes and a monotone `peak` high
//! watermark (`fetch_max` on every increase), so a single cheap snapshot
//! answers both "what is resident now" and "what was the worst moment".

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Typed byte-holding categories. The order here is the canonical display
/// and snapshot order; [`MemCategory::name`] is the stable lowercase
/// identifier shared by the `sparkscore_mem_*` gauges and the ops `memory`
/// command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemCategory {
    /// Materialized RDD partitions held by the block cache.
    BlockCache,
    /// Serialized map-output buckets in the sharded shuffle store.
    ShuffleStore,
    /// Replicated blocks resident in the in-memory DFS.
    DfsBlocks,
    /// Thread-local reusable scratch buffers (capacity, not live use).
    Scratch,
}

impl MemCategory {
    /// Every category, in canonical snapshot order.
    pub const ALL: [MemCategory; 4] = [
        MemCategory::BlockCache,
        MemCategory::ShuffleStore,
        MemCategory::DfsBlocks,
        MemCategory::Scratch,
    ];

    /// Stable lowercase identifier used in gauge names and ops output.
    pub fn name(self) -> &'static str {
        match self {
            MemCategory::BlockCache => "block_cache",
            MemCategory::ShuffleStore => "shuffle_store",
            MemCategory::DfsBlocks => "dfs_blocks",
            MemCategory::Scratch => "scratch",
        }
    }
}

impl fmt::Display for MemCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One category's reading at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReading {
    pub category: MemCategory,
    /// Bytes resident right now.
    pub used: u64,
    /// Monotone high watermark over the ledger's lifetime.
    pub peak: u64,
}

#[derive(Default)]
struct Slot {
    used: AtomicU64,
    peak: AtomicU64,
}

type ByteSource = Box<dyn Fn() -> u64 + Send + Sync>;

/// Central byte ledger. Cheap to share (`Arc`), cheap to update (one
/// relaxed RMW per delta), deterministic to read (fixed category order).
#[derive(Default)]
pub struct MemoryLedger {
    slots: [Slot; 4],
    sources: Mutex<[Option<ByteSource>; 4]>,
}

impl MemoryLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` newly resident under `category`.
    pub fn add(&self, category: MemCategory, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let slot = &self.slots[category as usize];
        let now = slot.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        slot.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Record `bytes` freed under `category`. Saturates at zero so a
    /// mis-paired delta can never wrap the gauge to ~u64::MAX.
    pub fn sub(&self, category: MemCategory, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let _ = self.slots[category as usize].used.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| Some(v.saturating_sub(bytes)),
        );
    }

    /// Register a polled byte source for a category whose residency is
    /// owned outside the delta-maintained paths (DFS blocks, scratch).
    /// Replaces any previous source for that category.
    pub fn set_source(
        &self,
        category: MemCategory,
        source: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.sources.lock()[category as usize] = Some(Box::new(source));
    }

    /// Poll every registered source into its slot (and its peak). Cheap
    /// enough for a profiler tick; a no-op for delta-maintained slots.
    pub fn refresh(&self) {
        let sources = self.sources.lock();
        for category in MemCategory::ALL {
            if let Some(source) = &sources[category as usize] {
                let now = source();
                let slot = &self.slots[category as usize];
                slot.used.store(now, Ordering::Relaxed);
                slot.peak.fetch_max(now, Ordering::Relaxed);
            }
        }
    }

    /// Bytes currently resident under `category`.
    pub fn used(&self, category: MemCategory) -> u64 {
        self.slots[category as usize].used.load(Ordering::Relaxed)
    }

    /// High watermark for `category` over the ledger's lifetime.
    pub fn peak(&self, category: MemCategory) -> u64 {
        self.slots[category as usize].peak.load(Ordering::Relaxed)
    }

    /// Sum of `used` across all categories.
    pub fn total_used(&self) -> u64 {
        MemCategory::ALL.iter().map(|&c| self.used(c)).sum()
    }

    /// One reading per category, in canonical order. Deterministic given
    /// a quiescent ledger.
    pub fn snapshot(&self) -> Vec<MemReading> {
        MemCategory::ALL
            .iter()
            .map(|&category| MemReading {
                category,
                used: self.used(category),
                peak: self.peak(category),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deltas_track_used_and_peak() {
        let ledger = MemoryLedger::new();
        ledger.add(MemCategory::BlockCache, 100);
        ledger.add(MemCategory::BlockCache, 50);
        ledger.sub(MemCategory::BlockCache, 120);
        assert_eq!(ledger.used(MemCategory::BlockCache), 30);
        assert_eq!(ledger.peak(MemCategory::BlockCache), 150);
        assert_eq!(ledger.used(MemCategory::ShuffleStore), 0);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let ledger = MemoryLedger::new();
        ledger.add(MemCategory::ShuffleStore, 10);
        ledger.sub(MemCategory::ShuffleStore, 1000);
        assert_eq!(ledger.used(MemCategory::ShuffleStore), 0);
        assert_eq!(ledger.peak(MemCategory::ShuffleStore), 10);
    }

    #[test]
    fn sources_poll_on_refresh_and_advance_peak() {
        let ledger = MemoryLedger::new();
        let level = Arc::new(AtomicU64::new(7));
        let src = Arc::clone(&level);
        ledger.set_source(MemCategory::DfsBlocks, move || src.load(Ordering::Relaxed));
        ledger.refresh();
        assert_eq!(ledger.used(MemCategory::DfsBlocks), 7);
        level.store(3, Ordering::Relaxed);
        ledger.refresh();
        assert_eq!(ledger.used(MemCategory::DfsBlocks), 3);
        assert_eq!(ledger.peak(MemCategory::DfsBlocks), 7);
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let ledger = MemoryLedger::new();
        ledger.add(MemCategory::Scratch, 5);
        let snap = ledger.snapshot();
        let names: Vec<&str> = snap.iter().map(|r| r.category.name()).collect();
        assert_eq!(
            names,
            vec!["block_cache", "shuffle_store", "dfs_blocks", "scratch"]
        );
        assert_eq!(snap[3].used, 5);
        assert_eq!(ledger.total_used(), 5);
    }

    #[test]
    fn concurrent_deltas_balance() {
        let ledger = Arc::new(MemoryLedger::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ledger = Arc::clone(&ledger);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        ledger.add(MemCategory::BlockCache, 3);
                        ledger.sub(MemCategory::BlockCache, 3);
                    }
                });
            }
        });
        assert_eq!(ledger.used(MemCategory::BlockCache), 0);
        assert!(ledger.peak(MemCategory::BlockCache) >= 3);
    }
}
