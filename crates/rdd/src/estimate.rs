//! Memory-size estimation for cached blocks and shuffle buckets.
//!
//! Spark's `SizeEstimator` walks JVM object graphs to decide when the block
//! manager must evict; we need the same signal (cache pressure drives the
//! paper's Fig 6 behaviour at small clusters) without JVM reflection.
//! [`EstimateSize`] is implemented structurally for the element types that
//! flow through pipelines; every dataset element type must implement it
//! (it is part of the [`crate::Data`] bound).

/// Approximate the deep size of a value in bytes.
///
/// Estimates follow the shallow `size_of` plus owned heap payloads. They
/// need to be *proportional*, not exact: eviction decisions compare totals
/// against a budget of the same calibration.
pub trait EstimateSize {
    fn estimate_bytes(&self) -> usize;
}

/// Implement [`EstimateSize`] for plain-old-data types as `size_of`.
#[macro_export]
macro_rules! pod_estimate {
    ($($t:ty),* $(,)?) => {
        $(impl $crate::estimate::EstimateSize for $t {
            #[inline]
            fn estimate_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

pod_estimate!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl EstimateSize for String {
    #[inline]
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<String>() + self.capacity()
    }
}

impl<T: EstimateSize> EstimateSize for Vec<T> {
    #[inline]
    fn estimate_bytes(&self) -> usize {
        // Sample-free exact walk; element types are cheap to size.
        std::mem::size_of::<Vec<T>>() + self.iter().map(T::estimate_bytes).sum::<usize>()
    }
}

impl<T: EstimateSize> EstimateSize for Option<T> {
    #[inline]
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<Option<T>>()
            + self.as_ref().map_or(0, |v| {
                v.estimate_bytes().saturating_sub(std::mem::size_of::<T>())
            })
    }
}

impl<T: EstimateSize> EstimateSize for std::sync::Arc<T> {
    #[inline]
    fn estimate_bytes(&self) -> usize {
        // Shared payloads are charged once per referencing block; this
        // over-counts shared data the way Spark's estimator does.
        std::mem::size_of::<std::sync::Arc<T>>() + (**self).estimate_bytes()
    }
}

impl<A: EstimateSize, B: EstimateSize> EstimateSize for (A, B) {
    #[inline]
    fn estimate_bytes(&self) -> usize {
        self.0.estimate_bytes() + self.1.estimate_bytes()
    }
}

impl<A: EstimateSize, B: EstimateSize, C: EstimateSize> EstimateSize for (A, B, C) {
    #[inline]
    fn estimate_bytes(&self) -> usize {
        self.0.estimate_bytes() + self.1.estimate_bytes() + self.2.estimate_bytes()
    }
}

impl<A: EstimateSize, B: EstimateSize, C: EstimateSize, D: EstimateSize> EstimateSize
    for (A, B, C, D)
{
    #[inline]
    fn estimate_bytes(&self) -> usize {
        self.0.estimate_bytes()
            + self.1.estimate_bytes()
            + self.2.estimate_bytes()
            + self.3.estimate_bytes()
    }
}

impl<T: EstimateSize, const N: usize> EstimateSize for [T; N] {
    #[inline]
    fn estimate_bytes(&self) -> usize {
        self.iter().map(T::estimate_bytes).sum()
    }
}

/// Estimate a whole slice (used for partition blocks).
pub fn slice_bytes<T: EstimateSize>(items: &[T]) -> usize {
    items.iter().map(T::estimate_bytes).sum::<usize>() + std::mem::size_of::<Vec<T>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pods_are_shallow() {
        assert_eq!(0u64.estimate_bytes(), 8);
        assert_eq!(0.0f32.estimate_bytes(), 4);
        assert_eq!(true.estimate_bytes(), 1);
    }

    #[test]
    fn strings_count_capacity() {
        let s = String::with_capacity(100);
        assert!(s.estimate_bytes() >= 100);
    }

    #[test]
    fn vec_counts_elements() {
        let v = vec![0u64; 10];
        assert!(v.estimate_bytes() >= 80);
        let nested = vec![vec![0u8; 4]; 3];
        assert!(nested.estimate_bytes() >= 12);
    }

    #[test]
    fn tuples_sum_components() {
        assert_eq!((1u32, 2u32).estimate_bytes(), 8);
        assert_eq!((1u8, 2u64, 3u8).estimate_bytes(), 10);
    }

    #[test]
    fn slice_bytes_scales_linearly() {
        let a = vec![0f64; 100];
        let b = vec![0f64; 200];
        let (sa, sb) = (slice_bytes(&a), slice_bytes(&b));
        assert!(sb > sa);
        assert_eq!(
            sb - std::mem::size_of::<Vec<f64>>(),
            2 * (sa - std::mem::size_of::<Vec<f64>>())
        );
    }

    #[test]
    fn option_none_is_shallow() {
        let none: Option<Vec<u64>> = None;
        let some: Option<Vec<u64>> = Some(vec![0; 100]);
        assert!(some.estimate_bytes() > none.estimate_bytes());
    }
}
