//! The execution engine: the "Spark driver + executors" of this crate.
//!
//! An [`Engine`] binds together the simulated cluster, the DFS, the block
//! cache, the shuffle manager, and the operator metadata registry, and runs
//! jobs submitted by dataset actions:
//!
//! 1. [`Engine::run_job`] asks the meta registry for the shuffles the
//!    target's lineage needs (pruned at fully-cached ops — the mechanism
//!    behind Algorithm 3's cached `U` RDD),
//! 2. materializes each missing shuffle map stage in dependency order,
//! 3. runs the result stage.
//!
//! Real computation executes on a host thread pool; every task also
//! accumulates work counters that are list-scheduled onto the *virtual*
//! cluster to produce deterministic virtual runtimes (the quantity the
//! paper's figures plot). Fault injection hooks at task-completion
//! boundaries, and lost cache blocks / shuffle outputs are recovered from
//! lineage on demand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};
use sparkscore_cluster::{
    Cluster, ClusterSpec, ContainerRequest, CostModel, ExecutorLayout, FaultEvent, FaultPlan,
    NodeId, ResourceManager, VirtualClock, VirtualScheduler, VirtualTask,
};
use sparkscore_dfs::Dfs;

use crate::cache::CacheManager;
use crate::context::TaskCtx;
use crate::estimate::EstimateSize;
use crate::events::{
    EngineEvent, EventBus, EventListener, FaultDetail, SpanContext, StageKind, TaskMetrics,
};
use crate::ledger::{MemCategory, MemReading, MemoryLedger};
use crate::meta::MetaRegistry;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::pool::{ExecutorPool, PoolDiagnostics, TaskSlots};
use crate::shuffle::{hash_key, ShuffleManager};
use crate::{OpId, ShuffleId};

/// Configures and builds an [`Engine`].
pub struct EngineBuilder {
    spec: ClusterSpec,
    dfs_block_size: usize,
    dfs_replication: Option<usize>,
    containers: Option<ContainerRequest>,
    cost_model: CostModel,
    /// Fraction of granted executor memory usable as block-cache storage
    /// (Spark's `spark.memory.fraction × storageFraction` ≈ 0.3; we default
    /// to 0.5 of the executor grant).
    cache_fraction: f64,
    cache_budget_override: Option<u64>,
    host_threads: Option<usize>,
    fault_plan: Arc<FaultPlan>,
    listeners: Vec<Arc<dyn EventListener>>,
}

impl EngineBuilder {
    pub fn new(spec: ClusterSpec) -> Self {
        EngineBuilder {
            spec,
            dfs_block_size: sparkscore_dfs::DEFAULT_BLOCK_SIZE,
            dfs_replication: None,
            containers: None,
            cost_model: CostModel::default(),
            cache_fraction: 0.5,
            cache_budget_override: None,
            host_threads: None,
            fault_plan: Arc::new(FaultPlan::none()),
            listeners: Vec::new(),
        }
    }

    /// DFS block size in bytes (default 8 MiB).
    pub fn dfs_block_size(mut self, bytes: usize) -> Self {
        self.dfs_block_size = bytes;
        self
    }

    /// DFS replication factor (default `min(3, nodes)`).
    pub fn dfs_replication(mut self, replication: usize) -> Self {
        self.dfs_replication = Some(replication);
        self
    }

    /// Run on an explicit container allocation instead of one executor per
    /// node (the paper's auto-tuning experiment).
    pub fn containers(mut self, req: ContainerRequest) -> Self {
        self.containers = Some(req);
        self
    }

    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Override the block-cache budget in bytes (default: `cache_fraction`
    /// of total executor memory).
    pub fn cache_budget_bytes(mut self, bytes: u64) -> Self {
        self.cache_budget_override = Some(bytes);
        self
    }

    pub fn cache_fraction(mut self, frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1]");
        self.cache_fraction = frac;
        self
    }

    /// Cap on host worker threads (default: host parallelism).
    pub fn host_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one host thread");
        self.host_threads = Some(n);
        self
    }

    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Arc::new(plan);
        self
    }

    /// Attach an event listener; it will see every [`EngineEvent`] the
    /// engine emits. More can be added later via [`Engine::events`].
    pub fn listener(mut self, listener: Arc<dyn EventListener>) -> Self {
        self.listeners.push(listener);
        self
    }

    pub fn build(self) -> Arc<Engine> {
        let cluster = Arc::new(Cluster::provision(self.spec));
        let replication = self
            .dfs_replication
            .unwrap_or_else(|| cluster.num_nodes().min(3));
        let dfs = Arc::new(
            Dfs::new(Arc::clone(&cluster), self.dfs_block_size, replication)
                .expect("builder-validated DFS configuration"),
        );
        let rm = ResourceManager::new(Arc::clone(&cluster));
        let layout = match self.containers {
            Some(req) => rm
                .allocate(req)
                .expect("container request must fit cluster"),
            None => rm.one_executor_per_node(),
        };
        let cache_budget = self
            .cache_budget_override
            .unwrap_or_else(|| (layout.total_memory_bytes() as f64 * self.cache_fraction) as u64);
        let vsched =
            VirtualScheduler::new(&layout, &cluster.spec().instance, self.cost_model.clone());
        let host_threads = self
            .host_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .max(1);
        let events = EventBus::new();
        for l in self.listeners {
            events.register(l);
        }
        // One byte ledger for the whole engine: the cache and shuffle
        // store mirror their residency into it with O(1) deltas at their
        // own mutation sites; DFS residency is owned by the DFS and polled
        // through a source closure on refresh.
        let ledger = Arc::new(MemoryLedger::new());
        {
            let dfs = Arc::clone(&dfs);
            ledger.set_source(MemCategory::DfsBlocks, move || dfs.stored_bytes());
        }
        Arc::new(Engine {
            cluster,
            dfs,
            layout,
            cost_model: self.cost_model,
            cache: CacheManager::with_ledger(cache_budget, Arc::clone(&ledger)),
            shuffle: ShuffleManager::with_ledger(Arc::clone(&ledger)),
            ledger,
            meta: MetaRegistry::new(),
            metrics: Metrics::new(),
            vclock: VirtualClock::new(),
            vsched: Mutex::new(vsched),
            fault_plan: RwLock::new(self.fault_plan),
            events,
            next_op: AtomicU64::new(0),
            next_shuffle: AtomicU64::new(0),
            next_broadcast: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
            next_stage: AtomicU64::new(0),
            // Span id 0 means "untraced": real ids start at 1.
            next_span: AtomicU64::new(1),
            epoch: std::time::Instant::now(),
            pool: ExecutorPool::new(host_threads),
            host_threads,
        })
    }
}

/// The dataflow engine. Shared behind an `Arc`; all operations take `&self`.
pub struct Engine {
    cluster: Arc<Cluster>,
    dfs: Arc<Dfs>,
    layout: ExecutorLayout,
    cost_model: CostModel,
    pub(crate) cache: CacheManager,
    pub(crate) shuffle: ShuffleManager,
    ledger: Arc<MemoryLedger>,
    pub(crate) meta: MetaRegistry,
    pub(crate) metrics: Metrics,
    vclock: VirtualClock,
    vsched: Mutex<VirtualScheduler>,
    fault_plan: RwLock<Arc<FaultPlan>>,
    events: EventBus,
    next_op: AtomicU64,
    next_shuffle: AtomicU64,
    next_broadcast: AtomicU64,
    next_job: AtomicU64,
    next_stage: AtomicU64,
    next_span: AtomicU64,
    /// Monotonic zero for span timestamps: engine construction time.
    epoch: std::time::Instant,
    /// Persistent work-stealing pool; built once, reused by every stage.
    pool: ExecutorPool,
    host_threads: usize,
}

impl Engine {
    /// Start configuring an engine for a cluster shape.
    pub fn builder(spec: ClusterSpec) -> EngineBuilder {
        EngineBuilder::new(spec)
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    pub fn layout(&self) -> &ExecutorLayout {
        &self.layout
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    pub fn cache_budget_bytes(&self) -> u64 {
        self.cache.budget_bytes()
    }

    /// Bytes currently resident in the block cache (live gauge).
    pub fn cache_used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    /// Bytes currently held as shuffle map outputs (live gauge).
    pub fn shuffle_stored_bytes(&self) -> u64 {
        self.shuffle.stored_bytes()
    }

    /// Map outputs held per shuffle lock shard — occupancy skew across the
    /// sharded store (live gauge for the pool profiler).
    pub fn shuffle_shard_occupancy(&self) -> Vec<usize> {
        self.shuffle.shard_occupancy()
    }

    /// The engine's central byte ledger: one slot per [`MemCategory`],
    /// kept current by the cache and shuffle store at their mutation
    /// sites. Register external sources (e.g. kernel scratch) here.
    pub fn memory_ledger(&self) -> &Arc<MemoryLedger> {
        &self.ledger
    }

    /// Refresh the ledger's polled sources and return one reading per
    /// category, in canonical order.
    pub fn memory_snapshot(&self) -> Vec<MemReading> {
        self.ledger.refresh();
        self.ledger.snapshot()
    }

    /// Exact bytes currently resident in the cache for one operator.
    pub fn cache_resident_bytes(&self, op: OpId) -> u64 {
        self.cache.resident_bytes(op)
    }

    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of live operator metadata entries (leak diagnostics).
    pub fn meta_registry_len(&self) -> usize {
        self.meta.len()
    }

    /// Number of registered shuffle stages (leak diagnostics).
    pub fn shuffle_registrations(&self) -> usize {
        self.shuffle.num_registered()
    }

    /// Virtual time elapsed across all jobs so far, nanoseconds.
    pub fn virtual_time_ns(&self) -> u64 {
        self.vclock.now_ns()
    }

    /// Virtual time in seconds (the unit the paper's figures use).
    pub fn virtual_time_secs(&self) -> f64 {
        self.vclock.now_secs()
    }

    pub fn reset_virtual_clock(&self) {
        self.vclock.reset();
    }

    /// Replace the active fault plan.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault_plan.write() = Arc::new(plan);
    }

    /// The engine's event bus — register an [`EventListener`] here to
    /// observe job/stage/task execution, cache evictions, shuffle re-runs,
    /// and injected faults.
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// Monotonic nanoseconds since engine construction — the time base for
    /// span start/end stamps and the ops endpoint's uptime.
    #[inline]
    pub fn mono_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Allocate a fresh span id (never 0 — 0 means "untraced").
    #[inline]
    pub(crate) fn new_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate `n` consecutive span ids and return the first. One shared
    /// atomic RMW per stage instead of one per task — task `i` takes
    /// `base + i` with no cross-thread contention.
    #[inline]
    pub(crate) fn new_span_range(&self, n: u64) -> u64 {
        self.next_span.fetch_add(n, Ordering::Relaxed)
    }

    pub(crate) fn new_op_id(&self) -> OpId {
        OpId(self.next_op.fetch_add(1, Ordering::Relaxed))
    }

    pub(crate) fn new_shuffle_id(&self) -> ShuffleId {
        ShuffleId(self.next_shuffle.fetch_add(1, Ordering::Relaxed))
    }

    /// Deterministically place a block/bucket on an alive node. Uses the
    /// cluster's cached alive snapshot — block placement runs once per
    /// cached block and per shuffle bucket, so a fresh `Vec` per call was
    /// pure allocator churn.
    pub(crate) fn node_for_block(&self, salt_a: u64, salt_b: u64) -> NodeId {
        let alive = self.cluster.alive_snapshot();
        assert!(!alive.is_empty(), "no alive nodes left in the cluster");
        alive[(hash_key(&(salt_a, salt_b)) % alive.len() as u64) as usize]
    }

    /// Thread accounting for the persistent executor pool (tests and
    /// tooling).
    pub fn pool_diagnostics(&self) -> PoolDiagnostics {
        self.pool.diagnostics()
    }

    /// Host execution slots (driver thread + pool workers).
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// Broadcast a read-only value to all executors. Charges virtual network
    /// time for shipping one copy per remote node, as Spark does when the
    /// paper's Algorithm 1 broadcasts the phenotype pairs (step 6).
    pub fn broadcast<T: EstimateSize + Send + Sync>(&self, value: T) -> Broadcast<T> {
        let bytes = value.estimate_bytes() as u64;
        let nodes = self.cluster.num_alive().max(1) as u64;
        let net_bw = if self.cost_model.network_bandwidth_override > 0 {
            self.cost_model.network_bandwidth_override
        } else {
            self.cluster.spec().instance.network_bandwidth
        };
        self.vclock
            .advance(CostModel::transfer_ns(bytes * (nodes - 1), net_bw));
        Metrics::bump(&self.metrics.broadcasts);
        Metrics::add(&self.metrics.broadcast_bytes, bytes);
        Broadcast {
            id: self.next_broadcast.fetch_add(1, Ordering::Relaxed),
            value: Arc::new(value),
        }
    }

    /// Run one stage: execute `f` for every partition index in `parts` on
    /// the host pool, then list-schedule the measured costs onto the
    /// virtual cluster. Returns results in `parts` order.
    ///
    /// Untagged convenience over [`Engine::run_stage_tagged`] for stages
    /// run outside a job (tests and ad-hoc internal work).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn run_stage<R, F>(&self, parts: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &TaskCtx<'_>) -> R + Sync,
    {
        self.run_stage_tagged(parts, None, StageKind::Result, SpanContext::NONE, f)
    }

    /// [`Engine::run_stage`] with event attribution: the owning job (if
    /// any), whether this is a result or shuffle-map stage, and the span
    /// the stage runs under (the job span, or `NONE` for internal work).
    pub(crate) fn run_stage_tagged<R, F>(
        &self,
        parts: &[usize],
        job: Option<u64>,
        kind: StageKind,
        parent_span: SpanContext,
        f: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &TaskCtx<'_>) -> R + Sync,
    {
        Metrics::bump(&self.metrics.stages);
        let stage = self.next_stage.fetch_add(1, Ordering::Relaxed);
        let n = parts.len();
        // Snapshot observability once per stage: a listener registered
        // mid-stage sees the next stage whole, never a torn one, and tasks
        // can read the flag without touching the bus.
        let observed = self.events.is_active();
        let stage_span = if observed {
            parent_span.child(self.new_span_id())
        } else {
            SpanContext::NONE
        };
        if observed {
            self.events.emit(&EngineEvent::StageSubmitted {
                job,
                stage,
                kind,
                num_tasks: n,
                span: stage_span,
                mono_ns: self.mono_ns(),
            });
        }
        if n == 0 {
            // Empty stages still count in `metrics.stages`, so they must
            // also emit a matching Submitted/Completed pair — otherwise
            // traces and metrics disagree.
            if observed {
                self.events.emit(&EngineEvent::StageCompleted {
                    job,
                    stage,
                    kind,
                    makespan_ns: 0,
                    local_reads: 0,
                    span: stage_span,
                    mono_ns: self.mono_ns(),
                });
            }
            return Vec::new();
        }
        // Write-once slot per task — the pool claims each index exactly
        // once, so the completion path takes zero locks. Panics are caught
        // and stored so every claimed slot is always written; the driver
        // re-raises the first one after the stage drains.
        type TaskOutcome<R> = (
            R,
            VirtualTask,
            Option<TaskMetrics>,
            Vec<crate::context::SpanRecord>,
        );
        let slots: TaskSlots<std::thread::Result<TaskOutcome<R>>> = TaskSlots::new(n);
        let task_span_base = if observed {
            self.new_span_range(n as u64)
        } else {
            0
        };
        let run_task = |i: usize| {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let task_span = if observed {
                    let s = stage_span.child(task_span_base + i as u64);
                    self.pool.note_current_span(s.span);
                    s
                } else {
                    SpanContext::NONE
                };
                let mono_start = if observed { self.mono_ns() } else { 0 };
                let ctx = TaskCtx::with_span(self, parts[i], task_span);
                let r = f(parts[i], &ctx);
                let vt = ctx.to_virtual_task(&self.cost_model);
                // Virtual placement is only known once the whole batch is
                // list-scheduled below; record the measured half now.
                let m = observed.then(|| TaskMetrics {
                    partition: parts[i],
                    wall_ns: ctx.elapsed_ns(),
                    input_bytes: ctx.input_bytes(),
                    shuffle_read_bytes: ctx.shuffle_read_bytes(),
                    shuffle_write_bytes: ctx.shuffle_write_bytes(),
                    cache_hits: ctx.cache_hits(),
                    cache_misses: ctx.cache_misses(),
                    recomputed_partitions: ctx.recomputed(),
                    kernel_rows: ctx.kernel_rows(),
                    packed_kernel_rows: ctx.packed_kernel_rows(),
                    scratch_reuses: ctx.scratch_reuses(),
                    replicates_run: ctx.replicates_run(),
                    replicates_saved: ctx.replicates_saved(),
                    span: task_span,
                    mono_start_ns: mono_start,
                    mono_end_ns: self.mono_ns(),
                    ..TaskMetrics::default()
                });
                let sub_spans = ctx.take_spans();
                if observed {
                    self.pool.note_current_span(0);
                }
                Metrics::bump(&self.metrics.tasks);
                self.on_task_complete();
                (r, vt, m, sub_spans)
            }));
            // SAFETY: the pool hands index `i` to exactly one participant.
            unsafe { slots.write(i, outcome) };
        };
        self.pool.run(n, &run_task);
        let mut results = Vec::with_capacity(n);
        let mut vtasks = Vec::with_capacity(n);
        let mut partial = Vec::with_capacity(n);
        let mut panic_payload = None;
        // SAFETY: `pool.run` returned, so every index was claimed, run, and
        // its slot written, with the pool's completion protocol ordering
        // those writes before this read.
        for slot in unsafe { slots.into_vec() } {
            match slot {
                Ok((r, vt, m, spans)) => {
                    results.push(r);
                    vtasks.push(vt);
                    partial.push((m, spans));
                }
                // Drain every slot before re-raising: the whole stage ran
                // (the pool's completion barrier), so all panics are
                // already stored and the first is the one to propagate.
                Err(payload) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            // A buffered event log must not lose its tail when the panic
            // propagates out of the engine (possibly aborting the process
            // before any Drop flush runs): push what is buffered now.
            self.events.flush_all();
            std::panic::resume_unwind(payload);
        }
        let outcome = self.vsched.lock().schedule(&vtasks);
        self.vclock.advance(self.cost_model.stage_overhead_ns);
        Metrics::add(&self.metrics.input_local_reads, outcome.local_reads as u64);
        if observed {
            // One flush per stage: TaskEnd per task in partition order
            // (outcome.tasks is index-aligned with vtasks), followed by
            // any sub-task spans, closed by StageCompleted — O(1) bus
            // lock acquisitions instead of O(tasks). No separate TaskStart
            // marker: the batch is emitted at stage end anyway and
            // `TaskMetrics` carries both start stamps, so a start event
            // would double the per-task event volume for zero information.
            let mut batch = Vec::with_capacity(n + 1);
            for (i, (m, spans)) in partial.into_iter().enumerate() {
                let mut m = m.expect("observed stage recorded metrics for every task");
                m.virtual_compute_ns = vtasks[i].compute_ns;
                let placed = &outcome.tasks[i];
                m.virtual_start_ns = placed.start_ns;
                m.virtual_finish_ns = placed.finish_ns;
                m.node = u64::from(placed.node.0);
                m.executor = placed.executor;
                m.input_local = placed.input_local;
                batch.push(EngineEvent::TaskEnd { stage, metrics: m });
                for s in spans {
                    batch.push(EngineEvent::Span {
                        span: s.span,
                        label: s.label.to_string(),
                        start_ns: s.start_ns,
                        end_ns: s.end_ns,
                    });
                }
            }
            // One memory pulse per non-empty stage, sampled after the
            // stage's puts and evictions have settled, rides in the same
            // batch (empty stages keep their exact Submitted/Completed
            // pair).
            batch.push(self.memory_watermark_event(stage));
            batch.push(EngineEvent::StageCompleted {
                job,
                stage,
                kind,
                makespan_ns: outcome.makespan_ns,
                local_reads: outcome.local_reads,
                span: stage_span,
                mono_ns: self.mono_ns(),
            });
            self.events.emit_batch(&batch);
        }
        results
    }

    /// Materialize a shuffle's missing map outputs as one parallel stage.
    /// One `stage_info` snapshot replaces the previous three separate
    /// shuffle-manager lock round-trips (shape, runner, missing parts).
    pub(crate) fn ensure_shuffle(
        &self,
        sid: ShuffleId,
        job: Option<u64>,
        parent_span: SpanContext,
    ) {
        let Some(info) = self.shuffle.stage_info(sid) else {
            return;
        };
        if info.missing_map_parts.is_empty() {
            return;
        }
        Metrics::add(
            &self.metrics.shuffle_map_tasks,
            info.missing_map_parts.len() as u64,
        );
        let runner = info.run_map_task;
        self.run_stage_tagged(
            &info.missing_map_parts,
            job,
            StageKind::ShuffleMap,
            parent_span,
            |part, ctx| runner(part, ctx),
        );
    }

    /// Re-run one lost map task inline on the current task's thread —
    /// lineage recovery when a reducer finds its bucket missing. The
    /// recovery work is charged to the calling task's counters.
    pub(crate) fn rerun_map_task_inline(&self, sid: ShuffleId, map_part: usize, ctx: &TaskCtx<'_>) {
        if let Some(runner) = self.shuffle.map_task_runner(sid) {
            Metrics::bump(&self.metrics.shuffle_map_reruns);
            Metrics::bump(&self.metrics.shuffle_map_tasks);
            self.events.emit_with(|| EngineEvent::ShuffleMapRerun {
                shuffle: sid.0,
                map_part,
            });
            runner(map_part, ctx);
        }
    }

    /// Run a job on `target`: plan and materialize the shuffles its lineage
    /// needs, then execute the result stage. Returns per-partition results
    /// in order. Virtual time advances by the job's marginal makespan.
    pub(crate) fn run_job<R, F>(&self, target: OpId, num_partitions: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &TaskCtx<'_>) -> R + Sync,
    {
        Metrics::bump(&self.metrics.jobs);
        let job = self.next_job.fetch_add(1, Ordering::Relaxed);
        let vclock_before = self.vclock.now_ns();
        // The job span roots the causal chain job → stage → task → kernel.
        // Allocated only when someone is listening, so an unobserved
        // engine's job path stays id-allocation free.
        let job_span = if self.events.is_active() {
            SpanContext::root(self.new_span_id())
        } else {
            SpanContext::NONE
        };
        self.events.emit_with(|| EngineEvent::JobStart {
            job,
            virtual_now_ns: vclock_before,
            span: job_span,
            mono_ns: self.mono_ns(),
        });
        let horizon_before = {
            let mut sched = self.vsched.lock();
            // Jobs are sequential on the driver: no task of this job can
            // start before the previous job's horizon.
            sched.barrier();
            sched.horizon_ns()
        };
        for sid in self.meta.plan_shuffles(target, &self.cache) {
            self.ensure_shuffle(sid, Some(job), job_span);
        }
        let parts: Vec<usize> = (0..num_partitions).collect();
        let out = self.run_stage_tagged(&parts, Some(job), StageKind::Result, job_span, f);
        let horizon_after = self.vsched.lock().horizon_ns();
        self.vclock
            .advance(horizon_after.saturating_sub(horizon_before));
        self.events.emit_with(|| EngineEvent::JobEnd {
            job,
            virtual_now_ns: self.vclock.now_ns(),
            virtual_advance_ns: self.vclock.now_ns().saturating_sub(vclock_before),
            span: job_span,
            mono_ns: self.mono_ns(),
        });
        out
    }

    /// Sample the ledger into a per-stage watermark event. Polled sources
    /// are refreshed first so DFS/scratch residency is current.
    fn memory_watermark_event(&self, stage: u64) -> EngineEvent {
        self.ledger.refresh();
        EngineEvent::MemoryWatermark {
            stage,
            block_cache_bytes: self.ledger.used(MemCategory::BlockCache),
            shuffle_store_bytes: self.ledger.used(MemCategory::ShuffleStore),
            dfs_blocks_bytes: self.ledger.used(MemCategory::DfsBlocks),
            scratch_bytes: self.ledger.used(MemCategory::Scratch),
            cache_budget_bytes: self.cache.budget_bytes(),
            mono_ns: self.mono_ns(),
        }
    }

    fn on_task_complete(&self) {
        let plan = Arc::clone(&self.fault_plan.read());
        for event in plan.on_task_complete() {
            self.apply_fault(event);
        }
    }

    fn apply_fault(&self, event: FaultEvent) {
        match event {
            FaultEvent::KillNode(node) => {
                if self.cluster.kill_node(node) {
                    self.dfs.drop_node_replicas(node);
                    let lost_blocks = self.cache.drop_node(node);
                    self.shuffle.drop_node(node);
                    self.vsched.lock().remove_node_checked(node);
                    self.events.emit_with(|| EngineEvent::FaultInjected {
                        fault: FaultDetail::KillNode {
                            node: u64::from(node.0),
                        },
                    });
                    // Each cached block lost with the node leaves the byte
                    // economy through an explicit eviction event, so event
                    // replay reaches the same ledger state.
                    for (op, partition, bytes) in lost_blocks {
                        self.events.emit_with(|| EngineEvent::CacheEvicted {
                            op: op.0,
                            partition,
                            pressure: false,
                            bytes,
                        });
                    }
                }
            }
            FaultEvent::DropCachedBlock => {
                if let Some((op, partition, bytes)) = self.cache.drop_lru_one() {
                    self.events.emit_with(|| EngineEvent::FaultInjected {
                        fault: FaultDetail::DropCachedBlock {
                            op: op.0,
                            partition,
                        },
                    });
                    self.events.emit_with(|| EngineEvent::CacheEvicted {
                        op: op.0,
                        partition,
                        pressure: false,
                        bytes,
                    });
                }
            }
            FaultEvent::DropShuffleOutput => {
                if let Some((sid, map_part)) = self.shuffle.drop_one() {
                    self.events.emit_with(|| EngineEvent::FaultInjected {
                        fault: FaultDetail::DropShuffleOutput {
                            shuffle: sid.0,
                            map_part,
                        },
                    });
                }
            }
        }
    }
}

/// A read-only value shipped once to every executor.
pub struct Broadcast<T> {
    pub id: u64,
    value: Arc<T>,
}

impl<T> Broadcast<T> {
    #[inline]
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            id: self.id,
            value: Arc::clone(&self.value),
        }
    }
}

/// Cleans up an operator's engine-side state when the operator is dropped
/// (Spark's `ContextCleaner`): meta entry, cache mark + blocks, and any
/// shuffle stages/outputs it owned.
pub struct OpGuard {
    engine: Weak<Engine>,
    op: OpId,
    shuffles: Vec<ShuffleId>,
}

impl OpGuard {
    pub(crate) fn new(engine: &Arc<Engine>, op: OpId, shuffles: Vec<ShuffleId>) -> Self {
        OpGuard {
            engine: Arc::downgrade(engine),
            op,
            shuffles,
        }
    }
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.upgrade() {
            engine.meta.remove(self.op);
            let op = self.op;
            // Unpersist is the third way bytes leave the cache; emit the
            // same byte-accurate eviction events the other paths do.
            for (partition, bytes) in engine.cache.unmark(op) {
                engine.events.emit_with(|| EngineEvent::CacheEvicted {
                    op: op.0,
                    partition,
                    pressure: false,
                    bytes,
                });
            }
            for &sid in &self.shuffles {
                engine.shuffle.unregister(sid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Arc<Engine> {
        Engine::builder(ClusterSpec::test_small(3)).build()
    }

    #[test]
    fn builder_defaults() {
        let e = engine();
        assert_eq!(e.cluster().num_nodes(), 3);
        assert_eq!(e.layout().num_executors(), 3);
        assert!(e.cache_budget_bytes() > 0);
        assert_eq!(e.virtual_time_ns(), 0);
    }

    #[test]
    fn id_allocation_is_unique() {
        let e = engine();
        let a = e.new_op_id();
        let b = e.new_op_id();
        assert_ne!(a, b);
        assert_ne!(e.new_shuffle_id(), e.new_shuffle_id());
    }

    #[test]
    fn run_stage_returns_in_order_and_advances_metrics() {
        let e = engine();
        let parts: Vec<usize> = (0..16).collect();
        let out = e.run_stage(&parts, |p, ctx| {
            ctx.add_work(100, 1.0);
            p * 2
        });
        assert_eq!(out, (0..16).map(|p| p * 2).collect::<Vec<_>>());
        let m = e.metrics_snapshot();
        assert_eq!(m.tasks, 16);
        assert_eq!(m.stages, 1);
    }

    #[test]
    fn run_job_advances_virtual_clock() {
        let e = engine();
        let id = e.new_op_id();
        e.meta.register(crate::meta::OpMeta {
            id,
            name: "test".into(),
            deps: vec![],
            num_partitions: 4,
        });
        let before = e.virtual_time_ns();
        e.run_job(id, 4, |_, ctx| ctx.add_work(10_000, 1.0));
        assert!(e.virtual_time_ns() > before);
        assert_eq!(e.metrics_snapshot().jobs, 1);
    }

    #[test]
    fn broadcast_charges_network_time_and_counts() {
        let e = engine();
        let before = e.virtual_time_ns();
        let b = e.broadcast(vec![0u64; 1 << 16]);
        assert_eq!(b.value().len(), 1 << 16);
        assert!(e.virtual_time_ns() > before, "2 remote copies cost time");
        let m = e.metrics_snapshot();
        assert_eq!(m.broadcasts, 1);
        assert!(m.broadcast_bytes >= (1 << 16) * 8);
        let b2 = b.clone();
        assert_eq!(b2.id, b.id);
    }

    #[test]
    fn node_for_block_is_deterministic_and_alive() {
        let e = engine();
        let n1 = e.node_for_block(1, 2);
        assert_eq!(n1, e.node_for_block(1, 2));
        e.cluster().kill_node(n1);
        let n2 = e.node_for_block(1, 2);
        assert_ne!(n1, n2, "placement avoids dead nodes");
    }

    #[test]
    fn fault_plan_kill_applies_everywhere() {
        let e = engine();
        e.set_fault_plan(FaultPlan::kill_node_after(NodeId(1), 2));
        let parts: Vec<usize> = (0..8).collect();
        e.run_stage(&parts, |_, _| ());
        assert!(!e.cluster().node(NodeId(1)).is_alive());
    }

    #[test]
    fn op_guard_cleans_registry_on_drop() {
        let e = engine();
        let id = e.new_op_id();
        e.meta.register(crate::meta::OpMeta {
            id,
            name: "g".into(),
            deps: vec![],
            num_partitions: 1,
        });
        e.cache.mark(id);
        let guard = OpGuard::new(&e, id, vec![]);
        assert!(e.meta.get(id).is_some());
        drop(guard);
        assert!(e.meta.get(id).is_none());
        assert!(!e.cache.is_marked(id));
    }

    #[test]
    fn custom_cache_budget_respected() {
        let e = Engine::builder(ClusterSpec::test_small(1))
            .cache_budget_bytes(12345)
            .build();
        assert_eq!(e.cache_budget_bytes(), 12345);
    }

    #[test]
    fn container_layout_used_when_requested() {
        let e = Engine::builder(ClusterSpec::m3_2xlarge(4))
            .containers(ContainerRequest::new(8, 2048, 2))
            .build();
        assert_eq!(e.layout().num_executors(), 8);
        assert_eq!(e.layout().total_slots(), 16);
    }

    #[test]
    fn empty_stage_is_fine() {
        let e = engine();
        let out: Vec<u32> = e.run_stage(&[], |_, _| 1u32);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_stage_emits_matching_submitted_and_completed() {
        let mem = Arc::new(crate::events::MemoryEventListener::new());
        let e = Engine::builder(ClusterSpec::test_small(2))
            .listener(Arc::clone(&mem) as Arc<dyn EventListener>)
            .build();
        let before = e.metrics_snapshot();
        let out: Vec<u32> = e.run_stage(&[], |_, _| 1u32);
        assert!(out.is_empty());
        let delta = e.metrics_snapshot().delta_since(&before);
        assert_eq!(delta.stages, 1, "empty stages count in metrics");
        let events = mem.snapshot();
        // Traces must agree with metrics: one Submitted/Completed pair,
        // zero tasks, same stage id.
        assert_eq!(events.len(), 2, "{events:?}");
        let EngineEvent::StageSubmitted {
            stage, num_tasks, ..
        } = events[0]
        else {
            panic!("expected StageSubmitted, got {:?}", events[0]);
        };
        assert_eq!(num_tasks, 0);
        let EngineEvent::StageCompleted {
            stage: done,
            makespan_ns,
            ..
        } = events[1]
        else {
            panic!("expected StageCompleted, got {:?}", events[1]);
        };
        assert_eq!(done, stage);
        assert_eq!(makespan_ns, 0);
    }
}
