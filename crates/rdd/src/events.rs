//! Engine observability: typed events, a listener bus, and built-in
//! listeners (JSONL event log, per-stage summaries, console progress).
//!
//! This is the crate's analogue of Spark's `SparkListener` machinery. The
//! engine emits an [`EngineEvent`] at every interesting execution boundary
//! — job start/end, stage submission/completion, per-task completion with
//! a full [`TaskMetrics`] record, cache evictions, shuffle map re-runs,
//! and injected faults — onto an [`EventBus`]. Listeners implement
//! [`EventListener`] and are registered either on the
//! [`crate::engine::EngineBuilder`] or on a live engine via
//! [`crate::Engine::events`].
//!
//! Emission is lock-cheap: with no listeners registered the engine pays a
//! single relaxed atomic load per site and never constructs the event, so
//! an unobserved engine runs at full speed.
//!
//! Built-ins:
//! * [`EventLogListener`] — one JSON object per line to any writer, in the
//!   spirit of Spark's event log (`spark.eventLog.enabled`). Events
//!   round-trip through [`EngineEvent::to_json`]/[`EngineEvent::from_json`].
//! * [`StageSummaryListener`] — aggregates per-stage task-time spread
//!   (min/p50/max, for straggler detection), shuffle and cache totals, and
//!   renders a per-job report table with [`StageSummaryListener::report`].
//! * [`ConsoleProgressListener`] — opt-in lightweight progress lines on
//!   stderr as jobs and stages complete.
//! * [`MemoryEventListener`] — records events in memory, for tests and for
//!   programs that inspect the stream after a run.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde_json::Value;

use crate::metrics::{Counter, Gauge, Histogram, Registry};

/// What a stage computes: the job's result partitions, or shuffle map
/// outputs feeding a downstream stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    Result,
    ShuffleMap,
}

impl StageKind {
    fn as_str(self) -> &'static str {
        match self {
            StageKind::Result => "Result",
            StageKind::ShuffleMap => "ShuffleMap",
        }
    }

    fn parse(s: &str) -> Result<Self, serde_json::Error> {
        match s {
            "Result" => Ok(StageKind::Result),
            "ShuffleMap" => Ok(StageKind::ShuffleMap),
            other => Err(raise(format!("unknown stage kind {other:?}"))),
        }
    }
}

/// Causal identity of one unit of engine work.
///
/// Every job, stage, task, and sub-task interval (kernel call, shuffle
/// fetch, cache recompute) gets a span id unique within the engine, plus
/// a link to the span it ran under: job → stage → task → kernel. Span id
/// `0` means "not traced" — an unobserved engine never allocates ids, so
/// the zero context is also the free fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// This span's id (0 = untraced).
    pub span: u64,
    /// The enclosing span's id (0 = root).
    pub parent: u64,
}

impl SpanContext {
    /// The untraced context: no span, no parent.
    pub const NONE: SpanContext = SpanContext { span: 0, parent: 0 };

    /// A root span (a job).
    pub fn root(span: u64) -> Self {
        SpanContext { span, parent: 0 }
    }

    /// A child of this span.
    pub fn child(self, span: u64) -> Self {
        SpanContext {
            span,
            parent: self.span,
        }
    }

    /// Whether this context carries no tracing identity.
    pub fn is_none(self) -> bool {
        self.span == 0
    }
}

/// Everything measured about one completed task.
///
/// `wall_ns` is the task's measured host-thread time; the `virtual_*`
/// fields are its placement on the simulated cluster: which node/executor
/// ran it and over which virtual interval (the paper's y-axis quantity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskMetrics {
    pub partition: usize,
    /// Measured host execution time.
    pub wall_ns: u64,
    /// Modeled compute cost fed to the virtual scheduler.
    pub virtual_compute_ns: u64,
    /// Virtual start time on the assigned executor slot.
    pub virtual_start_ns: u64,
    /// Virtual finish time (start + compute + modeled I/O).
    pub virtual_finish_ns: u64,
    /// Virtual node the task was placed on.
    pub node: u64,
    /// Executor index on that node.
    pub executor: u32,
    /// Whether the task's input was read from a local replica.
    pub input_local: bool,
    pub input_bytes: u64,
    pub shuffle_read_bytes: u64,
    pub shuffle_write_bytes: u64,
    /// Cached blocks this task read.
    pub cache_hits: u64,
    /// Cache lookups that missed and forced computation.
    pub cache_misses: u64,
    /// Misses on blocks that were previously resident — lineage recovery
    /// recomputed data that had been cached and lost.
    pub recomputed_partitions: u64,
    /// Kernel rows processed (SNP × patient cells pushed through the
    /// score kernels) — attributes task time to numeric kernels vs engine.
    pub kernel_rows: u64,
    /// Kernel rows served by packed-direct bit kernels — scored straight
    /// from the 2-bit words, no byte unpack (subset of `kernel_rows`).
    pub packed_kernel_rows: u64,
    /// Kernel calls served from a pre-existing thread-local scratch
    /// buffer (no allocator traffic).
    pub scratch_reuses: u64,
    /// Resampling row-replicate units computed by this task (one SNP row
    /// perturbed for one replicate in the distributed GEMM).
    pub replicates_run: u64,
    /// Resampling row-replicate units skipped inside this task's tile
    /// because the owning gene set's stopping rule had already decided.
    pub replicates_saved: u64,
    /// Causal identity: the task's span id and its parent stage span.
    pub span: SpanContext,
    /// Monotonic engine time when the task body started (0 if untraced).
    pub mono_start_ns: u64,
    /// Monotonic engine time when the task body finished (0 if untraced).
    pub mono_end_ns: u64,
}

impl TaskMetrics {
    /// Virtual runtime: scheduled finish minus scheduled start.
    pub fn virtual_runtime_ns(&self) -> u64 {
        self.virtual_finish_ns.saturating_sub(self.virtual_start_ns)
    }
}

/// The effect of one injected [`sparkscore_cluster::FaultEvent`]. Drop
/// faults identify the victim so the event stream can be correlated with
/// the recomputation that follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDetail {
    KillNode { node: u64 },
    DropCachedBlock { op: u64, partition: usize },
    DropShuffleOutput { shuffle: u64, map_part: usize },
}

/// One engine execution event.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    JobStart {
        job: u64,
        /// Virtual clock when the job was submitted.
        virtual_now_ns: u64,
        /// The job's root span (zero when the engine is untraced).
        span: SpanContext,
        /// Monotonic engine time at submission.
        mono_ns: u64,
    },
    JobEnd {
        job: u64,
        virtual_now_ns: u64,
        /// How much virtual time this job added to the clock.
        virtual_advance_ns: u64,
        span: SpanContext,
        mono_ns: u64,
    },
    StageSubmitted {
        /// `None` for stages run outside a job (engine-internal work).
        job: Option<u64>,
        stage: u64,
        kind: StageKind,
        num_tasks: usize,
        /// The stage's span, parented to the owning job's span.
        span: SpanContext,
        mono_ns: u64,
    },
    StageCompleted {
        job: Option<u64>,
        stage: u64,
        kind: StageKind,
        /// Virtual makespan of the stage's task batch.
        makespan_ns: u64,
        /// Tasks whose input was read from a local replica.
        local_reads: usize,
        span: SpanContext,
        mono_ns: u64,
    },
    /// Retained for parsing older logs; the engine no longer emits it.
    /// Stage batches flush at stage end, so a start marker next to its
    /// `TaskEnd` carried no information `TaskMetrics` doesn't already
    /// (both start stamps), at twice the per-task event volume.
    TaskStart {
        stage: u64,
        partition: usize,
    },
    TaskEnd {
        stage: u64,
        metrics: TaskMetrics,
    },
    /// A completed sub-task interval: a kernel call, a shuffle fetch or
    /// write, a cache recompute — parented to the task span it ran under.
    Span {
        span: SpanContext,
        label: String,
        /// Monotonic engine time at interval start.
        start_ns: u64,
        /// Monotonic engine time at interval end.
        end_ns: u64,
    },
    /// A block was admitted to the cache with this exact byte footprint.
    CacheAdmitted {
        op: u64,
        partition: usize,
        bytes: u64,
    },
    /// A block was offered to the cache but not stored (larger than the
    /// whole budget); the bytes that failed to become resident.
    CacheRejected {
        op: u64,
        partition: usize,
        bytes: u64,
    },
    /// A cached block left the cache: LRU pressure (`pressure: true`) or a
    /// fault/unpersist path (`pressure: false`). `bytes` is the block's
    /// exact resident footprint (0 in logs written before the memory
    /// plane).
    CacheEvicted {
        op: u64,
        partition: usize,
        pressure: bool,
        bytes: u64,
    },
    /// One map task's output landed in the shuffle store: the total bucket
    /// bytes now resident for `(shuffle, map_part)`.
    ShuffleBytesStored {
        shuffle: u64,
        map_part: usize,
        bytes: u64,
    },
    /// Per-category resident bytes sampled at a stage boundary — the
    /// memory plane's periodic pulse, one sample per non-empty stage.
    MemoryWatermark {
        stage: u64,
        block_cache_bytes: u64,
        shuffle_store_bytes: u64,
        dfs_blocks_bytes: u64,
        scratch_bytes: u64,
        /// The cache's configured byte budget (headroom denominator).
        cache_budget_bytes: u64,
        mono_ns: u64,
    },
    /// A lost shuffle map output was recomputed inline by a reducer.
    ShuffleMapRerun {
        shuffle: u64,
        map_part: usize,
    },
    /// A fault plan fired and had an effect.
    FaultInjected {
        fault: FaultDetail,
    },
}

fn raise(msg: impl Into<String>) -> serde_json::Error {
    serde_json::Error::Raise(serde::Error::new(msg))
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, serde_json::Error> {
    v.get(key)
        .ok_or_else(|| raise(format!("missing field {key:?}")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, serde_json::Error> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| raise(format!("field {key:?} is not a u64")))
}

fn get_usize(v: &Value, key: &str) -> Result<usize, serde_json::Error> {
    usize::try_from(get_u64(v, key)?).map_err(|_| raise(format!("field {key:?} out of range")))
}

fn get_bool(v: &Value, key: &str) -> Result<bool, serde_json::Error> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| raise(format!("field {key:?} is not a bool")))
}

fn get_u64_or(v: &Value, key: &str, default: u64) -> Result<u64, serde_json::Error> {
    Ok(get_opt_u64(v, key)?.unwrap_or(default))
}

fn get_opt_u64(v: &Value, key: &str) -> Result<Option<u64>, serde_json::Error> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Null) => Ok(None),
        Some(inner) => inner
            .as_u64()
            .map(Some)
            .ok_or_else(|| raise(format!("field {key:?} is not a u64 or null"))),
    }
}

fn opt_u64_value(v: Option<u64>) -> Value {
    match v {
        Some(n) => Value::from(n),
        None => Value::Null,
    }
}

/// Parse a span context from the `"span"`/`"parent_span"` keys. Both are
/// absent in event logs written before span tracing; they default to the
/// untraced context.
fn span_from_json(v: &Value) -> Result<SpanContext, serde_json::Error> {
    Ok(SpanContext {
        span: get_u64_or(v, "span", 0)?,
        parent: get_u64_or(v, "parent_span", 0)?,
    })
}

impl TaskMetrics {
    fn to_json(self) -> Value {
        serde_json::json!({
            "partition": self.partition as u64,
            "wall_ns": self.wall_ns,
            "virtual_compute_ns": self.virtual_compute_ns,
            "virtual_start_ns": self.virtual_start_ns,
            "virtual_finish_ns": self.virtual_finish_ns,
            "node": self.node,
            "executor": self.executor as u64,
            "input_local": self.input_local,
            "input_bytes": self.input_bytes,
            "shuffle_read_bytes": self.shuffle_read_bytes,
            "shuffle_write_bytes": self.shuffle_write_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "recomputed_partitions": self.recomputed_partitions,
            "kernel_rows": self.kernel_rows,
            "packed_kernel_rows": self.packed_kernel_rows,
            "scratch_reuses": self.scratch_reuses,
            "replicates_run": self.replicates_run,
            "replicates_saved": self.replicates_saved,
            "span": self.span.span,
            "parent_span": self.span.parent,
            "mono_start_ns": self.mono_start_ns,
            "mono_end_ns": self.mono_end_ns,
        })
    }

    fn from_json(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(TaskMetrics {
            partition: get_usize(v, "partition")?,
            wall_ns: get_u64(v, "wall_ns")?,
            virtual_compute_ns: get_u64(v, "virtual_compute_ns")?,
            virtual_start_ns: get_u64(v, "virtual_start_ns")?,
            virtual_finish_ns: get_u64(v, "virtual_finish_ns")?,
            node: get_u64(v, "node")?,
            executor: u32::try_from(get_u64(v, "executor")?)
                .map_err(|_| raise("executor out of range"))?,
            input_local: get_bool(v, "input_local")?,
            input_bytes: get_u64(v, "input_bytes")?,
            shuffle_read_bytes: get_u64(v, "shuffle_read_bytes")?,
            shuffle_write_bytes: get_u64(v, "shuffle_write_bytes")?,
            cache_hits: get_u64(v, "cache_hits")?,
            cache_misses: get_u64(v, "cache_misses")?,
            recomputed_partitions: get_u64(v, "recomputed_partitions")?,
            // Absent in event logs written before kernel accounting.
            kernel_rows: get_u64_or(v, "kernel_rows", 0)?,
            packed_kernel_rows: get_u64_or(v, "packed_kernel_rows", 0)?,
            scratch_reuses: get_u64_or(v, "scratch_reuses", 0)?,
            // Absent in event logs written before distributed resampling.
            replicates_run: get_u64_or(v, "replicates_run", 0)?,
            replicates_saved: get_u64_or(v, "replicates_saved", 0)?,
            // Absent in event logs written before span tracing.
            span: span_from_json(v)?,
            mono_start_ns: get_u64_or(v, "mono_start_ns", 0)?,
            mono_end_ns: get_u64_or(v, "mono_end_ns", 0)?,
        })
    }
}

impl FaultDetail {
    fn to_json(self) -> Value {
        match self {
            FaultDetail::KillNode { node } => {
                serde_json::json!({"kind": "KillNode", "node": node})
            }
            FaultDetail::DropCachedBlock { op, partition } => {
                serde_json::json!({"kind": "DropCachedBlock", "op": op, "partition": partition as u64})
            }
            FaultDetail::DropShuffleOutput { shuffle, map_part } => {
                serde_json::json!({"kind": "DropShuffleOutput", "shuffle": shuffle, "map_part": map_part as u64})
            }
        }
    }

    fn from_json(v: &Value) -> Result<Self, serde_json::Error> {
        let kind = field(v, "kind")?
            .as_str()
            .ok_or_else(|| raise("fault kind is not a string"))?;
        match kind {
            "KillNode" => Ok(FaultDetail::KillNode {
                node: get_u64(v, "node")?,
            }),
            "DropCachedBlock" => Ok(FaultDetail::DropCachedBlock {
                op: get_u64(v, "op")?,
                partition: get_usize(v, "partition")?,
            }),
            "DropShuffleOutput" => Ok(FaultDetail::DropShuffleOutput {
                shuffle: get_u64(v, "shuffle")?,
                map_part: get_usize(v, "map_part")?,
            }),
            other => Err(raise(format!("unknown fault kind {other:?}"))),
        }
    }
}

impl EngineEvent {
    /// Short event name — the `"Event"` discriminator in the JSON form,
    /// mirroring Spark's event-log convention.
    pub fn name(&self) -> &'static str {
        match self {
            EngineEvent::JobStart { .. } => "JobStart",
            EngineEvent::JobEnd { .. } => "JobEnd",
            EngineEvent::StageSubmitted { .. } => "StageSubmitted",
            EngineEvent::StageCompleted { .. } => "StageCompleted",
            EngineEvent::TaskStart { .. } => "TaskStart",
            EngineEvent::TaskEnd { .. } => "TaskEnd",
            EngineEvent::Span { .. } => "Span",
            EngineEvent::CacheAdmitted { .. } => "CacheAdmitted",
            EngineEvent::CacheRejected { .. } => "CacheRejected",
            EngineEvent::CacheEvicted { .. } => "CacheEvicted",
            EngineEvent::ShuffleBytesStored { .. } => "ShuffleBytesStored",
            EngineEvent::MemoryWatermark { .. } => "MemoryWatermark",
            EngineEvent::ShuffleMapRerun { .. } => "ShuffleMapRerun",
            EngineEvent::FaultInjected { .. } => "FaultInjected",
        }
    }

    /// Serialize to a JSON object with an `"Event"` discriminator.
    pub fn to_json(&self) -> Value {
        match self {
            EngineEvent::JobStart {
                job,
                virtual_now_ns,
                span,
                mono_ns,
            } => serde_json::json!({
                "Event": "JobStart",
                "job": *job,
                "virtual_now_ns": *virtual_now_ns,
                "span": span.span,
                "parent_span": span.parent,
                "mono_ns": *mono_ns,
            }),
            EngineEvent::JobEnd {
                job,
                virtual_now_ns,
                virtual_advance_ns,
                span,
                mono_ns,
            } => serde_json::json!({
                "Event": "JobEnd",
                "job": *job,
                "virtual_now_ns": *virtual_now_ns,
                "virtual_advance_ns": *virtual_advance_ns,
                "span": span.span,
                "parent_span": span.parent,
                "mono_ns": *mono_ns,
            }),
            EngineEvent::StageSubmitted {
                job,
                stage,
                kind,
                num_tasks,
                span,
                mono_ns,
            } => serde_json::json!({
                "Event": "StageSubmitted",
                "job": opt_u64_value(*job),
                "stage": *stage,
                "kind": kind.as_str(),
                "num_tasks": *num_tasks as u64,
                "span": span.span,
                "parent_span": span.parent,
                "mono_ns": *mono_ns,
            }),
            EngineEvent::StageCompleted {
                job,
                stage,
                kind,
                makespan_ns,
                local_reads,
                span,
                mono_ns,
            } => serde_json::json!({
                "Event": "StageCompleted",
                "job": opt_u64_value(*job),
                "stage": *stage,
                "kind": kind.as_str(),
                "makespan_ns": *makespan_ns,
                "local_reads": *local_reads as u64,
                "span": span.span,
                "parent_span": span.parent,
                "mono_ns": *mono_ns,
            }),
            EngineEvent::TaskStart { stage, partition } => serde_json::json!({
                "Event": "TaskStart",
                "stage": *stage,
                "partition": *partition as u64,
            }),
            EngineEvent::TaskEnd { stage, metrics } => serde_json::json!({
                "Event": "TaskEnd",
                "stage": *stage,
                "metrics": metrics.to_json(),
            }),
            EngineEvent::Span {
                span,
                label,
                start_ns,
                end_ns,
            } => serde_json::json!({
                "Event": "Span",
                "span": span.span,
                "parent_span": span.parent,
                "label": label.as_str(),
                "start_ns": *start_ns,
                "end_ns": *end_ns,
            }),
            EngineEvent::CacheAdmitted {
                op,
                partition,
                bytes,
            } => serde_json::json!({
                "Event": "CacheAdmitted",
                "op": *op,
                "partition": *partition as u64,
                "bytes": *bytes,
            }),
            EngineEvent::CacheRejected {
                op,
                partition,
                bytes,
            } => serde_json::json!({
                "Event": "CacheRejected",
                "op": *op,
                "partition": *partition as u64,
                "bytes": *bytes,
            }),
            EngineEvent::CacheEvicted {
                op,
                partition,
                pressure,
                bytes,
            } => serde_json::json!({
                "Event": "CacheEvicted",
                "op": *op,
                "partition": *partition as u64,
                "pressure": *pressure,
                "bytes": *bytes,
            }),
            EngineEvent::ShuffleBytesStored {
                shuffle,
                map_part,
                bytes,
            } => serde_json::json!({
                "Event": "ShuffleBytesStored",
                "shuffle": *shuffle,
                "map_part": *map_part as u64,
                "bytes": *bytes,
            }),
            EngineEvent::MemoryWatermark {
                stage,
                block_cache_bytes,
                shuffle_store_bytes,
                dfs_blocks_bytes,
                scratch_bytes,
                cache_budget_bytes,
                mono_ns,
            } => serde_json::json!({
                "Event": "MemoryWatermark",
                "stage": *stage,
                "block_cache_bytes": *block_cache_bytes,
                "shuffle_store_bytes": *shuffle_store_bytes,
                "dfs_blocks_bytes": *dfs_blocks_bytes,
                "scratch_bytes": *scratch_bytes,
                "cache_budget_bytes": *cache_budget_bytes,
                "mono_ns": *mono_ns,
            }),
            EngineEvent::ShuffleMapRerun { shuffle, map_part } => serde_json::json!({
                "Event": "ShuffleMapRerun",
                "shuffle": *shuffle,
                "map_part": *map_part as u64,
            }),
            EngineEvent::FaultInjected { fault } => serde_json::json!({
                "Event": "FaultInjected",
                "fault": fault.to_json(),
            }),
        }
    }

    /// Parse the JSON form back into a typed event.
    pub fn from_json(v: &Value) -> Result<Self, serde_json::Error> {
        let name = field(v, "Event")?
            .as_str()
            .ok_or_else(|| raise("\"Event\" is not a string"))?;
        match name {
            "JobStart" => Ok(EngineEvent::JobStart {
                job: get_u64(v, "job")?,
                virtual_now_ns: get_u64(v, "virtual_now_ns")?,
                span: span_from_json(v)?,
                mono_ns: get_u64_or(v, "mono_ns", 0)?,
            }),
            "JobEnd" => Ok(EngineEvent::JobEnd {
                job: get_u64(v, "job")?,
                virtual_now_ns: get_u64(v, "virtual_now_ns")?,
                virtual_advance_ns: get_u64(v, "virtual_advance_ns")?,
                span: span_from_json(v)?,
                mono_ns: get_u64_or(v, "mono_ns", 0)?,
            }),
            "StageSubmitted" => Ok(EngineEvent::StageSubmitted {
                job: get_opt_u64(v, "job")?,
                stage: get_u64(v, "stage")?,
                kind: StageKind::parse(
                    field(v, "kind")?
                        .as_str()
                        .ok_or_else(|| raise("kind is not a string"))?,
                )?,
                num_tasks: get_usize(v, "num_tasks")?,
                span: span_from_json(v)?,
                mono_ns: get_u64_or(v, "mono_ns", 0)?,
            }),
            "StageCompleted" => Ok(EngineEvent::StageCompleted {
                job: get_opt_u64(v, "job")?,
                stage: get_u64(v, "stage")?,
                kind: StageKind::parse(
                    field(v, "kind")?
                        .as_str()
                        .ok_or_else(|| raise("kind is not a string"))?,
                )?,
                makespan_ns: get_u64(v, "makespan_ns")?,
                local_reads: get_usize(v, "local_reads")?,
                span: span_from_json(v)?,
                mono_ns: get_u64_or(v, "mono_ns", 0)?,
            }),
            "TaskStart" => Ok(EngineEvent::TaskStart {
                stage: get_u64(v, "stage")?,
                partition: get_usize(v, "partition")?,
            }),
            "TaskEnd" => Ok(EngineEvent::TaskEnd {
                stage: get_u64(v, "stage")?,
                metrics: TaskMetrics::from_json(field(v, "metrics")?)?,
            }),
            "Span" => Ok(EngineEvent::Span {
                span: span_from_json(v)?,
                label: field(v, "label")?
                    .as_str()
                    .ok_or_else(|| raise("label is not a string"))?
                    .to_string(),
                start_ns: get_u64(v, "start_ns")?,
                end_ns: get_u64(v, "end_ns")?,
            }),
            "CacheAdmitted" => Ok(EngineEvent::CacheAdmitted {
                op: get_u64(v, "op")?,
                partition: get_usize(v, "partition")?,
                bytes: get_u64(v, "bytes")?,
            }),
            "CacheRejected" => Ok(EngineEvent::CacheRejected {
                op: get_u64(v, "op")?,
                partition: get_usize(v, "partition")?,
                bytes: get_u64(v, "bytes")?,
            }),
            "CacheEvicted" => Ok(EngineEvent::CacheEvicted {
                op: get_u64(v, "op")?,
                partition: get_usize(v, "partition")?,
                pressure: get_bool(v, "pressure")?,
                // Absent in event logs written before the memory plane.
                bytes: get_u64_or(v, "bytes", 0)?,
            }),
            "ShuffleBytesStored" => Ok(EngineEvent::ShuffleBytesStored {
                shuffle: get_u64(v, "shuffle")?,
                map_part: get_usize(v, "map_part")?,
                bytes: get_u64(v, "bytes")?,
            }),
            "MemoryWatermark" => Ok(EngineEvent::MemoryWatermark {
                stage: get_u64(v, "stage")?,
                block_cache_bytes: get_u64(v, "block_cache_bytes")?,
                shuffle_store_bytes: get_u64(v, "shuffle_store_bytes")?,
                dfs_blocks_bytes: get_u64(v, "dfs_blocks_bytes")?,
                scratch_bytes: get_u64(v, "scratch_bytes")?,
                cache_budget_bytes: get_u64(v, "cache_budget_bytes")?,
                mono_ns: get_u64(v, "mono_ns")?,
            }),
            "ShuffleMapRerun" => Ok(EngineEvent::ShuffleMapRerun {
                shuffle: get_u64(v, "shuffle")?,
                map_part: get_usize(v, "map_part")?,
            }),
            "FaultInjected" => Ok(EngineEvent::FaultInjected {
                fault: FaultDetail::from_json(field(v, "fault")?)?,
            }),
            other => Err(raise(format!("unknown event {other:?}"))),
        }
    }
}

/// Receives every event the engine emits. Callbacks run synchronously on
/// the emitting thread (worker threads for task events, the driver thread
/// for the rest), so implementations should be quick and must be
/// thread-safe.
pub trait EventListener: Send + Sync {
    fn on_event(&self, event: &EngineEvent);

    /// Receive a batch of events emitted together (the engine flushes all
    /// of a stage's task events in one batch at stage end). The default
    /// forwards to [`EventListener::on_event`] per event; listeners with
    /// internal locks should override to take the lock once per batch.
    fn on_events(&self, events: &[EngineEvent]) {
        for event in events {
            self.on_event(event);
        }
    }

    /// Flush any buffered output. Called by [`EventBus::flush_all`] and
    /// when the bus itself is dropped (engine shutdown), so listeners
    /// that buffer — like [`EventLogListener`] — never lose the tail of a
    /// run even if the program keeps the listener alive past the engine.
    fn on_flush(&self) {}
}

/// Fan-out point between the engine and its listeners.
///
/// The hot path is the *inactive* bus: one relaxed atomic load and no
/// event construction. Listener registration is expected to happen at
/// setup time; dispatch takes a read lock only when at least one listener
/// exists.
#[derive(Default)]
pub struct EventBus {
    listeners: RwLock<Vec<Arc<dyn EventListener>>>,
    active: AtomicBool,
}

impl EventBus {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a listener; it receives every event emitted from now on.
    pub fn register(&self, listener: Arc<dyn EventListener>) {
        self.listeners.write().push(listener);
        self.active.store(true, Ordering::Release);
    }

    /// Drop all listeners (the bus goes back to the free fast path).
    pub fn clear(&self) {
        self.listeners.write().clear();
        self.active.store(false, Ordering::Release);
    }

    pub fn num_listeners(&self) -> usize {
        self.listeners.read().len()
    }

    /// Whether any listener is attached.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Dispatch an already-built event to all listeners.
    pub fn emit(&self, event: &EngineEvent) {
        if !self.is_active() {
            return;
        }
        for l in self.listeners.read().iter() {
            l.on_event(event);
        }
    }

    /// Build the event only if someone is listening — the engine's
    /// emission sites use this so an unobserved engine never pays for
    /// event construction.
    #[inline]
    pub fn emit_with(&self, make: impl FnOnce() -> EngineEvent) {
        if !self.is_active() {
            return;
        }
        let event = make();
        for l in self.listeners.read().iter() {
            l.on_event(&event);
        }
    }

    /// Dispatch a batch of events in one pass: the listener list is read
    /// once and each listener sees the whole batch through
    /// [`EventListener::on_events`], so emission is O(1) lock
    /// acquisitions per batch rather than O(events).
    pub fn emit_batch(&self, events: &[EngineEvent]) {
        if events.is_empty() || !self.is_active() {
            return;
        }
        for l in self.listeners.read().iter() {
            l.on_events(events);
        }
    }

    /// Ask every listener to flush buffered output.
    pub fn flush_all(&self) {
        for l in self.listeners.read().iter() {
            l.on_flush();
        }
    }
}

/// Engine shutdown flushes every listener: a buffered event log is
/// complete once the engine is gone, whoever still holds the listener.
impl Drop for EventBus {
    fn drop(&mut self) {
        self.flush_all();
    }
}

// ---------------------------------------------------------------------------
// Built-in listeners
// ---------------------------------------------------------------------------

/// Writes one JSON object per line for every event — the Spark event-log
/// format adapted to this engine. The writer is flushed on drop.
pub struct EventLogListener {
    out: Mutex<Box<dyn Write + Send>>,
}

impl EventLogListener {
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        EventLogListener {
            out: Mutex::new(Box::new(writer)),
        }
    }

    /// Log to a file, creating parent directories as needed.
    pub fn to_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::io::BufWriter::new(std::fs::File::create(path)?);
        Ok(Self::new(file))
    }

    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().flush()
    }
}

impl EventListener for EventLogListener {
    fn on_event(&self, event: &EngineEvent) {
        let line = event.to_json().to_string();
        let mut out = self.out.lock();
        // An unwritable log must not take down the computation it observes.
        let _ = writeln!(out, "{line}");
    }

    fn on_events(&self, events: &[EngineEvent]) {
        // Serialize outside the lock, then take it once for the batch.
        let mut text = String::new();
        for event in events {
            text.push_str(&event.to_json().to_string());
            text.push('\n');
        }
        let mut out = self.out.lock();
        let _ = out.write_all(text.as_bytes());
    }

    fn on_flush(&self) {
        let _ = self.flush();
    }
}

impl Drop for EventLogListener {
    fn drop(&mut self) {
        let _ = self.out.lock().flush();
    }
}

/// Parse a JSONL event log produced by [`EventLogListener`] back into
/// typed events (blank lines are skipped).
pub fn parse_event_log(text: &str) -> Result<Vec<EngineEvent>, serde_json::Error> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| {
            EngineEvent::from_json(
                &serde_json::from_str_value(l).map_err(serde_json::Error::Parse)?,
            )
        })
        .collect()
}

/// Aggregated statistics for one completed stage.
#[derive(Debug, Clone, Default)]
pub struct StageSummary {
    pub job: Option<u64>,
    pub stage: u64,
    pub kind: Option<StageKind>,
    pub num_tasks: usize,
    /// Per-task virtual runtimes, in completion order.
    pub task_virtual_ns: Vec<u64>,
    /// Per-task measured host runtimes, in completion order.
    pub task_wall_ns: Vec<u64>,
    pub input_bytes: u64,
    pub shuffle_read_bytes: u64,
    pub shuffle_write_bytes: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub recomputed_partitions: u64,
    pub kernel_rows: u64,
    pub packed_kernel_rows: u64,
    pub scratch_reuses: u64,
    pub replicates_run: u64,
    pub replicates_saved: u64,
    pub makespan_ns: u64,
    pub local_reads: usize,
}

impl StageSummary {
    /// (min, p50, max) of per-task virtual runtimes — the straggler view.
    pub fn virtual_spread_ns(&self) -> (u64, u64, u64) {
        spread(&self.task_virtual_ns)
    }

    /// (min, p50, max) of per-task host wall runtimes.
    pub fn wall_spread_ns(&self) -> (u64, u64, u64) {
        spread(&self.task_wall_ns)
    }

    /// Fraction of cache lookups that hit, if any lookups happened.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

fn spread(values: &[u64]) -> (u64, u64, u64) {
    if values.is_empty() {
        return (0, 0, 0);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    (
        sorted[0],
        sorted[sorted.len() / 2],
        sorted[sorted.len() - 1],
    )
}

/// Collects per-stage task statistics and renders a per-job report table:
/// task counts, task-time min/p50/max (stragglers), shuffle read/write
/// volumes, cache hit rates, and virtual-vs-wall time.
#[derive(Default)]
pub struct StageSummaryListener {
    stages: Mutex<Vec<StageSummary>>,
}

impl StageSummaryListener {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all stages seen so far, in submission order.
    pub fn summaries(&self) -> Vec<StageSummary> {
        self.stages.lock().clone()
    }

    fn with_stage(stages: &mut Vec<StageSummary>, stage: u64, f: impl FnOnce(&mut StageSummary)) {
        match stages.iter_mut().find(|s| s.stage == stage) {
            Some(s) => f(s),
            None => {
                let mut s = StageSummary {
                    stage,
                    ..StageSummary::default()
                };
                f(&mut s);
                stages.push(s);
            }
        }
    }

    fn apply(stages: &mut Vec<StageSummary>, event: &EngineEvent) {
        match event {
            EngineEvent::StageSubmitted {
                job,
                stage,
                kind,
                num_tasks,
                ..
            } => Self::with_stage(stages, *stage, |s| {
                s.job = *job;
                s.kind = Some(*kind);
                s.num_tasks = *num_tasks;
            }),
            EngineEvent::TaskEnd { stage, metrics } => Self::with_stage(stages, *stage, |s| {
                s.task_virtual_ns.push(metrics.virtual_runtime_ns());
                s.task_wall_ns.push(metrics.wall_ns);
                s.input_bytes += metrics.input_bytes;
                s.shuffle_read_bytes += metrics.shuffle_read_bytes;
                s.shuffle_write_bytes += metrics.shuffle_write_bytes;
                s.cache_hits += metrics.cache_hits;
                s.cache_misses += metrics.cache_misses;
                s.recomputed_partitions += metrics.recomputed_partitions;
                s.kernel_rows += metrics.kernel_rows;
                s.packed_kernel_rows += metrics.packed_kernel_rows;
                s.scratch_reuses += metrics.scratch_reuses;
                s.replicates_run += metrics.replicates_run;
                s.replicates_saved += metrics.replicates_saved;
            }),
            EngineEvent::StageCompleted {
                stage,
                makespan_ns,
                local_reads,
                ..
            } => Self::with_stage(stages, *stage, |s| {
                s.makespan_ns = *makespan_ns;
                s.local_reads = *local_reads;
            }),
            _ => {}
        }
    }

    /// Render the report table (Markdown-ish, monospace-friendly).
    pub fn report(&self) -> String {
        let stages = self.stages.lock();
        let mut out = String::new();
        out.push_str(
            "| job | stage | kind | tasks | task vtime min/p50/max | shuffle R/W | cache hit% | virtual | wall |\n",
        );
        out.push_str(
            "|-----|-------|------|-------|------------------------|-------------|------------|---------|------|\n",
        );
        for s in stages.iter() {
            let (vmin, vp50, vmax) = s.virtual_spread_ns();
            let wall_total: u64 = s.task_wall_ns.iter().sum();
            let hit = s
                .cache_hit_rate()
                .map_or_else(|| "-".to_string(), |r| format!("{:.0}%", r * 100.0));
            let job = s.job.map_or_else(|| "-".to_string(), |j| j.to_string());
            let kind = s.kind.map_or("?", StageKind::as_str);
            out.push_str(&format!(
                "| {job} | {stage} | {kind} | {tasks} | {vmin}/{vp50}/{vmax} | {r}/{w} | {hit} | {mk} | {wall} |\n",
                stage = s.stage,
                tasks = s.num_tasks,
                vmin = fmt_ns(vmin),
                vp50 = fmt_ns(vp50),
                vmax = fmt_ns(vmax),
                r = fmt_bytes(s.shuffle_read_bytes),
                w = fmt_bytes(s.shuffle_write_bytes),
                mk = fmt_ns(s.makespan_ns),
                wall = fmt_ns(wall_total),
            ));
        }
        out
    }
}

/// Human-compact duration from nanoseconds.
pub fn fmt_ns(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    if secs >= 100.0 {
        format!("{secs:.0}s")
    } else if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.0}µs", secs * 1e6)
    }
}

/// Human-compact byte count.
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2}GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.1}MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1}KiB", b / KIB)
    } else {
        format!("{bytes}B")
    }
}

impl EventListener for StageSummaryListener {
    fn on_event(&self, event: &EngineEvent) {
        Self::apply(&mut self.stages.lock(), event);
    }

    fn on_events(&self, events: &[EngineEvent]) {
        let mut stages = self.stages.lock();
        for event in events {
            Self::apply(&mut stages, event);
        }
    }
}

/// Opt-in progress lines on stderr as jobs and stages complete.
#[derive(Default)]
pub struct ConsoleProgressListener;

impl ConsoleProgressListener {
    pub fn new() -> Self {
        Self
    }
}

impl EventListener for ConsoleProgressListener {
    fn on_event(&self, event: &EngineEvent) {
        match event {
            EngineEvent::JobStart { job, .. } => eprintln!("[engine] job {job} started"),
            EngineEvent::JobEnd {
                job,
                virtual_advance_ns,
                ..
            } => eprintln!(
                "[engine] job {job} finished (+{} virtual)",
                fmt_ns(*virtual_advance_ns)
            ),
            EngineEvent::StageCompleted {
                job,
                stage,
                kind,
                makespan_ns,
                ..
            } => {
                let job = job.map_or_else(|| "-".to_string(), |j| j.to_string());
                eprintln!(
                    "[engine] job {job} stage {stage} ({}) done in {} virtual",
                    kind.as_str(),
                    fmt_ns(*makespan_ns)
                );
            }
            EngineEvent::FaultInjected { fault } => {
                eprintln!("[engine] fault injected: {fault:?}");
            }
            _ => {}
        }
    }
}

/// Records every event in memory. `snapshot` clones the stream; `take`
/// drains it.
#[derive(Default)]
pub struct MemoryEventListener {
    events: Mutex<Vec<EngineEvent>>,
}

impl MemoryEventListener {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> Vec<EngineEvent> {
        self.events.lock().clone()
    }

    pub fn take(&self) -> Vec<EngineEvent> {
        std::mem::take(&mut self.events.lock())
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl EventListener for MemoryEventListener {
    fn on_event(&self, event: &EngineEvent) {
        self.events.lock().push(event.clone());
    }

    fn on_events(&self, events: &[EngineEvent]) {
        self.events.lock().extend_from_slice(events);
    }
}

/// Feeds a live [`Registry`] from the event stream: aggregate counters,
/// in-flight gauges, and task-runtime histograms a long-running engine
/// can expose (Prometheus text format via
/// [`RegistryListener::render_prometheus`]) without replaying event logs.
///
/// Every update is a handful of relaxed atomic increments; the registry
/// lock is only taken at construction and rendering time.
pub struct RegistryListener {
    registry: Arc<Registry>,
    jobs_started: Arc<Counter>,
    jobs_completed: Arc<Counter>,
    stages_completed: Arc<Counter>,
    tasks_completed: Arc<Counter>,
    input_bytes: Arc<Counter>,
    input_local_reads: Arc<Counter>,
    shuffle_read_bytes: Arc<Counter>,
    shuffle_write_bytes: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions_pressure: Arc<Counter>,
    cache_evictions_other: Arc<Counter>,
    cache_admitted_bytes: Arc<Counter>,
    cache_rejected_bytes: Arc<Counter>,
    cache_evicted_bytes: Arc<Counter>,
    shuffle_stored_bytes: Arc<Counter>,
    recomputed_partitions: Arc<Counter>,
    kernel_rows: Arc<Counter>,
    packed_kernel_rows: Arc<Counter>,
    scratch_reuses: Arc<Counter>,
    replicates_run: Arc<Counter>,
    replicates_saved: Arc<Counter>,
    shuffle_map_reruns: Arc<Counter>,
    faults_injected: Arc<Counter>,
    running_jobs: Arc<Gauge>,
    virtual_clock_ns: Arc<Gauge>,
    task_virtual_ns: Arc<Histogram>,
    task_wall_ns: Arc<Histogram>,
}

impl RegistryListener {
    /// Listener over its own fresh registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Listener over a shared registry (e.g. one scraped by an exporter
    /// that also carries application metrics).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let c = |name: &str, help: &str| registry.counter(name, help);
        let bounds = Histogram::duration_ns_bounds();
        RegistryListener {
            jobs_started: c("sparkscore_jobs_started_total", "Jobs submitted"),
            jobs_completed: c("sparkscore_jobs_completed_total", "Jobs finished"),
            stages_completed: c("sparkscore_stages_completed_total", "Stages finished"),
            tasks_completed: c("sparkscore_tasks_completed_total", "Tasks finished"),
            input_bytes: c("sparkscore_input_bytes_total", "Input bytes read by tasks"),
            input_local_reads: c(
                "sparkscore_input_local_reads_total",
                "Tasks whose input was read from a local replica",
            ),
            shuffle_read_bytes: c("sparkscore_shuffle_read_bytes_total", "Shuffle bytes read"),
            shuffle_write_bytes: c(
                "sparkscore_shuffle_write_bytes_total",
                "Shuffle bytes written",
            ),
            cache_hits: c("sparkscore_cache_hits_total", "Block cache hits"),
            cache_misses: c("sparkscore_cache_misses_total", "Block cache misses"),
            cache_evictions_pressure: c(
                "sparkscore_cache_evictions_pressure_total",
                "Cached blocks evicted under LRU pressure",
            ),
            cache_evictions_other: c(
                "sparkscore_cache_evictions_other_total",
                "Cached blocks dropped by faults or unpersist",
            ),
            cache_admitted_bytes: c(
                "sparkscore_cache_admitted_bytes_total",
                "Bytes admitted to the block cache",
            ),
            cache_rejected_bytes: c(
                "sparkscore_cache_rejected_bytes_total",
                "Bytes offered to the block cache but too large to store",
            ),
            cache_evicted_bytes: c(
                "sparkscore_cache_evicted_bytes_total",
                "Bytes evicted or dropped from the block cache",
            ),
            shuffle_stored_bytes: c(
                "sparkscore_shuffle_stored_bytes_total",
                "Map-output bytes stored into the shuffle store",
            ),
            recomputed_partitions: c(
                "sparkscore_recomputed_partitions_total",
                "Previously-cached partitions recomputed from lineage",
            ),
            kernel_rows: c(
                "sparkscore_kernel_rows_total",
                "SNP x patient cells processed by the score kernels",
            ),
            packed_kernel_rows: c(
                "sparkscore_packed_kernel_rows_total",
                "Kernel rows served by packed-direct bit kernels (no byte unpack)",
            ),
            scratch_reuses: c(
                "sparkscore_scratch_reuses_total",
                "Kernel calls served from a reused thread-local scratch buffer",
            ),
            replicates_run: c(
                "sparkscore_replicates_run_total",
                "Resampling row-replicate units computed by the distributed GEMM",
            ),
            replicates_saved: c(
                "sparkscore_replicates_saved_total",
                "Resampling row-replicate units skipped by adaptive early stopping",
            ),
            shuffle_map_reruns: c(
                "sparkscore_shuffle_map_reruns_total",
                "Lost shuffle map outputs re-run from lineage",
            ),
            faults_injected: c("sparkscore_faults_injected_total", "Fault plan firings"),
            running_jobs: registry.gauge("sparkscore_running_jobs", "Jobs currently in flight"),
            virtual_clock_ns: registry.gauge(
                "sparkscore_virtual_clock_ns",
                "Virtual cluster clock at the last job boundary",
            ),
            task_virtual_ns: registry.histogram(
                "sparkscore_task_virtual_runtime_ns",
                "Per-task virtual runtime",
                bounds.clone(),
            ),
            task_wall_ns: registry.histogram(
                "sparkscore_task_wall_runtime_ns",
                "Per-task host wall runtime",
                bounds,
            ),
            registry,
        }
    }

    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Prometheus text exposition of the whole registry.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }
}

impl Default for RegistryListener {
    fn default() -> Self {
        Self::new()
    }
}

impl EventListener for RegistryListener {
    fn on_event(&self, event: &EngineEvent) {
        match event {
            EngineEvent::JobStart { virtual_now_ns, .. } => {
                self.jobs_started.inc();
                self.running_jobs.add(1);
                self.virtual_clock_ns.set(*virtual_now_ns as i64);
            }
            EngineEvent::JobEnd { virtual_now_ns, .. } => {
                self.jobs_completed.inc();
                self.running_jobs.add(-1);
                self.virtual_clock_ns.set(*virtual_now_ns as i64);
            }
            EngineEvent::StageSubmitted { .. }
            | EngineEvent::TaskStart { .. }
            | EngineEvent::Span { .. }
            // The live per-category gauges come from the profiler's ledger
            // refresh; the watermark event is for logs and the recorder.
            | EngineEvent::MemoryWatermark { .. } => {}
            EngineEvent::StageCompleted { .. } => self.stages_completed.inc(),
            EngineEvent::TaskEnd { metrics, .. } => {
                self.tasks_completed.inc();
                self.input_bytes.add(metrics.input_bytes);
                if metrics.input_local {
                    self.input_local_reads.inc();
                }
                self.shuffle_read_bytes.add(metrics.shuffle_read_bytes);
                self.shuffle_write_bytes.add(metrics.shuffle_write_bytes);
                self.cache_hits.add(metrics.cache_hits);
                self.cache_misses.add(metrics.cache_misses);
                self.recomputed_partitions
                    .add(metrics.recomputed_partitions);
                self.kernel_rows.add(metrics.kernel_rows);
                self.packed_kernel_rows.add(metrics.packed_kernel_rows);
                self.scratch_reuses.add(metrics.scratch_reuses);
                self.replicates_run.add(metrics.replicates_run);
                self.replicates_saved.add(metrics.replicates_saved);
                self.task_virtual_ns.observe(metrics.virtual_runtime_ns());
                self.task_wall_ns.observe(metrics.wall_ns);
            }
            EngineEvent::CacheAdmitted { bytes, .. } => self.cache_admitted_bytes.add(*bytes),
            EngineEvent::CacheRejected { bytes, .. } => self.cache_rejected_bytes.add(*bytes),
            EngineEvent::CacheEvicted {
                pressure, bytes, ..
            } => {
                if *pressure {
                    self.cache_evictions_pressure.inc();
                } else {
                    self.cache_evictions_other.inc();
                }
                self.cache_evicted_bytes.add(*bytes);
            }
            EngineEvent::ShuffleBytesStored { bytes, .. } => self.shuffle_stored_bytes.add(*bytes),
            EngineEvent::ShuffleMapRerun { .. } => self.shuffle_map_reruns.inc(),
            EngineEvent::FaultInjected { .. } => self.faults_injected.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<EngineEvent> {
        vec![
            EngineEvent::JobStart {
                job: 0,
                virtual_now_ns: 0,
                span: SpanContext::root(1),
                mono_ns: 10,
            },
            EngineEvent::StageSubmitted {
                job: Some(0),
                stage: 1,
                kind: StageKind::ShuffleMap,
                num_tasks: 4,
                span: SpanContext { span: 2, parent: 1 },
                mono_ns: 20,
            },
            EngineEvent::TaskStart {
                stage: 1,
                partition: 2,
            },
            EngineEvent::TaskEnd {
                stage: 1,
                metrics: TaskMetrics {
                    partition: 2,
                    wall_ns: 1_000,
                    virtual_compute_ns: 9_999,
                    virtual_start_ns: 100,
                    virtual_finish_ns: 10_099,
                    node: 1,
                    executor: 0,
                    input_local: true,
                    input_bytes: 4096,
                    shuffle_read_bytes: 0,
                    shuffle_write_bytes: 2048,
                    cache_hits: 1,
                    cache_misses: 1,
                    recomputed_partitions: 1,
                    kernel_rows: 640,
                    packed_kernel_rows: 320,
                    scratch_reuses: 5,
                    replicates_run: 96,
                    replicates_saved: 32,
                    span: SpanContext { span: 3, parent: 2 },
                    mono_start_ns: 30,
                    mono_end_ns: 1_030,
                },
            },
            EngineEvent::Span {
                span: SpanContext { span: 4, parent: 3 },
                label: "kernel:contributions".to_string(),
                start_ns: 40,
                end_ns: 900,
            },
            EngineEvent::StageCompleted {
                job: Some(0),
                stage: 1,
                kind: StageKind::ShuffleMap,
                makespan_ns: 10_099,
                local_reads: 3,
                span: SpanContext { span: 2, parent: 1 },
                mono_ns: 1_100,
            },
            EngineEvent::StageSubmitted {
                job: None,
                stage: 2,
                kind: StageKind::Result,
                num_tasks: 1,
                span: SpanContext::NONE,
                mono_ns: 1_200,
            },
            EngineEvent::CacheAdmitted {
                op: 7,
                partition: 3,
                bytes: 4_096,
            },
            EngineEvent::CacheRejected {
                op: 8,
                partition: 0,
                bytes: 1 << 30,
            },
            EngineEvent::CacheEvicted {
                op: 7,
                partition: 3,
                pressure: true,
                bytes: 4_096,
            },
            EngineEvent::ShuffleBytesStored {
                shuffle: 5,
                map_part: 1,
                bytes: 2_048,
            },
            EngineEvent::MemoryWatermark {
                stage: 1,
                block_cache_bytes: 4_096,
                shuffle_store_bytes: 2_048,
                dfs_blocks_bytes: 8_192,
                scratch_bytes: 512,
                cache_budget_bytes: 1 << 20,
                mono_ns: 1_050,
            },
            EngineEvent::ShuffleMapRerun {
                shuffle: 5,
                map_part: 1,
            },
            EngineEvent::FaultInjected {
                fault: FaultDetail::KillNode { node: 2 },
            },
            EngineEvent::FaultInjected {
                fault: FaultDetail::DropCachedBlock {
                    op: 7,
                    partition: 0,
                },
            },
            EngineEvent::FaultInjected {
                fault: FaultDetail::DropShuffleOutput {
                    shuffle: 5,
                    map_part: 0,
                },
            },
            EngineEvent::JobEnd {
                job: 0,
                virtual_now_ns: 10_099,
                virtual_advance_ns: 10_099,
                span: SpanContext::root(1),
                mono_ns: 1_300,
            },
        ]
    }

    #[test]
    fn pre_span_event_logs_still_parse() {
        // Logs written before span tracing carry no span/mono fields; they
        // must parse with the untraced defaults.
        let legacy = concat!(
            "{\"Event\":\"JobStart\",\"job\":3,\"virtual_now_ns\":7}\n",
            "{\"Event\":\"StageSubmitted\",\"job\":3,\"stage\":0,\"kind\":\"Result\",\"num_tasks\":1}\n",
            "{\"Event\":\"StageCompleted\",\"job\":3,\"stage\":0,\"kind\":\"Result\",",
            "\"makespan_ns\":5,\"local_reads\":0}\n",
            "{\"Event\":\"JobEnd\",\"job\":3,\"virtual_now_ns\":12,\"virtual_advance_ns\":5}\n",
        );
        let events = parse_event_log(legacy).unwrap();
        assert_eq!(events.len(), 4);
        let EngineEvent::JobStart {
            job, span, mono_ns, ..
        } = &events[0]
        else {
            panic!("expected JobStart");
        };
        assert_eq!(*job, 3);
        assert_eq!(*span, SpanContext::NONE);
        assert_eq!(*mono_ns, 0);
        let EngineEvent::StageSubmitted { span, .. } = &events[1] else {
            panic!("expected StageSubmitted");
        };
        assert!(span.is_none());
    }

    #[test]
    fn pre_memory_plane_evictions_still_parse() {
        // Logs written before the memory plane carry no "bytes" field on
        // CacheEvicted; it must default to zero.
        let legacy = "{\"Event\":\"CacheEvicted\",\"op\":7,\"partition\":3,\"pressure\":true}\n";
        let events = parse_event_log(legacy).unwrap();
        assert_eq!(
            events,
            vec![EngineEvent::CacheEvicted {
                op: 7,
                partition: 3,
                pressure: true,
                bytes: 0,
            }]
        );
    }

    #[test]
    fn span_context_links_parent_chain() {
        let job = SpanContext::root(10);
        let stage = job.child(11);
        let task = stage.child(12);
        assert_eq!(stage.parent, 10);
        assert_eq!(task.parent, 11);
        assert!(!task.is_none());
        assert!(SpanContext::NONE.is_none());
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for event in sample_events() {
            let v = event.to_json();
            let back = EngineEvent::from_json(&v).unwrap();
            assert_eq!(event, back, "round-trip for {}", event.name());
            // And through the text layer.
            let text = v.to_string();
            let reparsed = serde_json::from_str_value(&text).unwrap();
            assert_eq!(EngineEvent::from_json(&reparsed).unwrap(), event);
        }
    }

    #[test]
    fn event_log_listener_writes_parseable_jsonl() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let listener = EventLogListener::new(SharedWriter(Arc::clone(&buf)));
        let events = sample_events();
        for e in &events {
            listener.on_event(e);
        }
        drop(listener);
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert_eq!(text.lines().count(), events.len());
        let parsed = parse_event_log(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn bus_is_inactive_until_registered() {
        let bus = EventBus::new();
        assert!(!bus.is_active());
        let mut built = false;
        bus.emit_with(|| {
            built = true;
            EngineEvent::TaskStart {
                stage: 0,
                partition: 0,
            }
        });
        assert!(!built, "inactive bus must not construct events");
        let mem = Arc::new(MemoryEventListener::new());
        bus.register(Arc::clone(&mem) as Arc<dyn EventListener>);
        assert!(bus.is_active());
        bus.emit_with(|| EngineEvent::TaskStart {
            stage: 0,
            partition: 0,
        });
        assert_eq!(mem.len(), 1);
        bus.clear();
        assert!(!bus.is_active());
    }

    #[test]
    fn stage_summary_aggregates_and_reports() {
        let listener = StageSummaryListener::new();
        for e in sample_events() {
            listener.on_event(&e);
        }
        let stages = listener.summaries();
        assert_eq!(stages.len(), 2);
        let s1 = &stages[0];
        assert_eq!(s1.stage, 1);
        assert_eq!(s1.job, Some(0));
        assert_eq!(s1.kind, Some(StageKind::ShuffleMap));
        assert_eq!(s1.task_virtual_ns, vec![9_999]);
        assert_eq!(s1.shuffle_write_bytes, 2048);
        assert_eq!(s1.cache_hit_rate(), Some(0.5));
        assert_eq!(s1.makespan_ns, 10_099);
        let report = listener.report();
        assert!(report.contains("ShuffleMap"), "{report}");
        assert!(report.contains("| 0 | 1 |"), "{report}");
    }

    #[test]
    fn spread_picks_min_median_max() {
        assert_eq!(spread(&[5, 1, 9, 3]), (1, 5, 9));
        assert_eq!(spread(&[]), (0, 0, 0));
        assert_eq!(spread(&[7]), (7, 7, 7));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(1_500_000_000), "1.50s");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
    }

    #[test]
    fn fmt_ns_boundaries() {
        assert_eq!(fmt_ns(0), "0µs");
        assert_eq!(fmt_ns(999), "1µs"); // rounds to the µs
                                        // Exact unit thresholds.
        assert_eq!(fmt_ns(1_000_000), "1.00ms");
        assert_eq!(fmt_ns(999_999), "1000µs"); // just under the ms threshold
        assert_eq!(fmt_ns(1_000_000_000), "1.00s");
        assert_eq!(fmt_ns(100_000_000_000), "100s");
        assert_eq!(fmt_ns(99_999_999_999), "100.00s"); // just under 100 s
        assert_eq!(fmt_ns(u64::MAX), "18446744074s");
    }

    #[test]
    fn fmt_bytes_boundaries() {
        assert_eq!(fmt_bytes(1023), "1023B");
        assert_eq!(fmt_bytes(1024), "1.0KiB");
        assert_eq!(fmt_bytes(1024 * 1024 - 1), "1024.0KiB");
        assert_eq!(fmt_bytes(1024 * 1024), "1.0MiB");
        assert_eq!(fmt_bytes(1024 * 1024 * 1024 - 1), "1024.0MiB");
        assert_eq!(fmt_bytes(1024 * 1024 * 1024), "1.00GiB");
        assert_eq!(fmt_bytes(u64::MAX), "17179869184.00GiB");
    }

    #[test]
    fn cache_hit_rate_with_zero_lookups_is_none() {
        let s = StageSummary::default();
        assert_eq!(s.cache_hit_rate(), None);
        let hits_only = StageSummary {
            cache_hits: 3,
            ..StageSummary::default()
        };
        assert_eq!(hits_only.cache_hit_rate(), Some(1.0));
        let misses_only = StageSummary {
            cache_misses: 2,
            ..StageSummary::default()
        };
        assert_eq!(misses_only.cache_hit_rate(), Some(0.0));
    }

    /// A writer whose output is only visible in the shared buffer after a
    /// flush — the buffered-file shape that loses the tail of a run if
    /// nothing flushes it.
    struct BufferedSharedWriter {
        pending: Vec<u8>,
        flushed: Arc<Mutex<Vec<u8>>>,
    }

    impl Write for BufferedSharedWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.pending.extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushed.lock().extend_from_slice(&self.pending);
            self.pending.clear();
            Ok(())
        }
    }

    #[test]
    fn event_log_flushes_on_listener_drop() {
        let flushed = Arc::new(Mutex::new(Vec::new()));
        let listener = EventLogListener::new(BufferedSharedWriter {
            pending: Vec::new(),
            flushed: Arc::clone(&flushed),
        });
        for e in sample_events() {
            listener.on_event(&e);
        }
        assert!(flushed.lock().is_empty(), "nothing flushed mid-run");
        drop(listener);
        let text = String::from_utf8(flushed.lock().clone()).unwrap();
        assert_eq!(
            parse_event_log(&text).unwrap(),
            sample_events(),
            "drop must flush the full buffered tail"
        );
    }

    #[test]
    fn event_log_flushes_on_bus_drop() {
        // The program keeps the listener alive past the bus (engine
        // shutdown): dropping the bus must still flush the tail.
        let flushed = Arc::new(Mutex::new(Vec::new()));
        let listener = Arc::new(EventLogListener::new(BufferedSharedWriter {
            pending: Vec::new(),
            flushed: Arc::clone(&flushed),
        }));
        let bus = EventBus::new();
        bus.register(Arc::clone(&listener) as Arc<dyn EventListener>);
        for e in sample_events() {
            bus.emit(&e);
        }
        assert!(flushed.lock().is_empty(), "nothing flushed mid-run");
        drop(bus);
        let text = String::from_utf8(flushed.lock().clone()).unwrap();
        assert_eq!(parse_event_log(&text).unwrap(), sample_events());
        drop(listener); // the second flush on listener drop is harmless
    }

    #[test]
    fn registry_listener_aggregates_stream() {
        let listener = RegistryListener::new();
        for e in sample_events() {
            listener.on_event(&e);
        }
        let text = listener.render_prometheus();
        assert!(text.contains("sparkscore_jobs_started_total 1"), "{text}");
        assert!(text.contains("sparkscore_jobs_completed_total 1"), "{text}");
        assert!(text.contains("sparkscore_running_jobs 0"), "{text}");
        assert!(
            text.contains("sparkscore_tasks_completed_total 1"),
            "{text}"
        );
        assert!(text.contains("sparkscore_cache_hits_total 1"), "{text}");
        assert!(
            text.contains("sparkscore_cache_evictions_pressure_total 1"),
            "{text}"
        );
        assert!(
            text.contains("sparkscore_cache_admitted_bytes_total 4096"),
            "{text}"
        );
        assert!(
            text.contains("sparkscore_cache_evicted_bytes_total 4096"),
            "{text}"
        );
        assert!(
            text.contains("sparkscore_shuffle_stored_bytes_total 2048"),
            "{text}"
        );
        assert!(
            text.contains("sparkscore_faults_injected_total 3"),
            "{text}"
        );
        assert!(text.contains("sparkscore_virtual_clock_ns 10099"), "{text}");
        // The single task (virtual runtime 9_999 ns) lands in the 10 µs
        // bucket of the runtime histogram.
        assert!(
            text.contains("sparkscore_task_virtual_runtime_ns_bucket{le=\"10000\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("sparkscore_task_virtual_runtime_ns_sum 9999"),
            "{text}"
        );
    }
}
