//! Engine execution metrics.
//!
//! Counters the tests and benchmark harnesses assert on: cache behaviour
//! (hits prove Algorithm 3's reuse of the `U` RDD), recomputation (proves
//! lineage recovery actually ran), shuffle volumes, and task/stage/job
//! counts. All counters are relaxed atomics — they are statistics, not
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Live counters owned by the engine.
#[derive(Debug, Default)]
pub struct Metrics {
    pub jobs: AtomicU64,
    pub stages: AtomicU64,
    pub tasks: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    /// Partitions recomputed after having been cached and lost.
    pub recomputed_partitions: AtomicU64,
    /// Map tasks re-run because their shuffle output went missing.
    pub shuffle_map_reruns: AtomicU64,
    pub shuffle_map_tasks: AtomicU64,
    pub shuffle_bytes_written: AtomicU64,
    pub shuffle_bytes_read: AtomicU64,
    pub input_bytes: AtomicU64,
    pub input_local_reads: AtomicU64,
    pub broadcasts: AtomicU64,
    pub broadcast_bytes: AtomicU64,
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub jobs: u64,
    pub stages: u64,
    pub tasks: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub recomputed_partitions: u64,
    pub shuffle_map_reruns: u64,
    pub shuffle_map_tasks: u64,
    pub shuffle_bytes_written: u64,
    pub shuffle_bytes_read: u64,
    pub input_bytes: u64,
    pub input_local_reads: u64,
    pub broadcasts: u64,
    pub broadcast_bytes: u64,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            jobs: g(&self.jobs),
            stages: g(&self.stages),
            tasks: g(&self.tasks),
            cache_hits: g(&self.cache_hits),
            cache_misses: g(&self.cache_misses),
            cache_evictions: g(&self.cache_evictions),
            recomputed_partitions: g(&self.recomputed_partitions),
            shuffle_map_reruns: g(&self.shuffle_map_reruns),
            shuffle_map_tasks: g(&self.shuffle_map_tasks),
            shuffle_bytes_written: g(&self.shuffle_bytes_written),
            shuffle_bytes_read: g(&self.shuffle_bytes_read),
            input_bytes: g(&self.input_bytes),
            input_local_reads: g(&self.input_local_reads),
            broadcasts: g(&self.broadcasts),
            broadcast_bytes: g(&self.broadcast_bytes),
        }
    }
}

impl MetricsSnapshot {
    /// Difference `self - earlier`, saturating (counters are monotonic, so
    /// saturation only matters if snapshots are passed in the wrong order).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs: self.jobs.saturating_sub(earlier.jobs),
            stages: self.stages.saturating_sub(earlier.stages),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            recomputed_partitions: self
                .recomputed_partitions
                .saturating_sub(earlier.recomputed_partitions),
            shuffle_map_reruns: self
                .shuffle_map_reruns
                .saturating_sub(earlier.shuffle_map_reruns),
            shuffle_map_tasks: self
                .shuffle_map_tasks
                .saturating_sub(earlier.shuffle_map_tasks),
            shuffle_bytes_written: self
                .shuffle_bytes_written
                .saturating_sub(earlier.shuffle_bytes_written),
            shuffle_bytes_read: self
                .shuffle_bytes_read
                .saturating_sub(earlier.shuffle_bytes_read),
            input_bytes: self.input_bytes.saturating_sub(earlier.input_bytes),
            input_local_reads: self
                .input_local_reads
                .saturating_sub(earlier.input_local_reads),
            broadcasts: self.broadcasts.saturating_sub(earlier.broadcasts),
            broadcast_bytes: self.broadcast_bytes.saturating_sub(earlier.broadcast_bytes),
        }
    }
}

/// Compact single-line rendering of the counters that matter most when a
/// snapshot is printed in a log or a benchmark footer.
impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "jobs={} stages={} tasks={} cache hit/miss/evict={}/{}/{} recomputed={} \
             shuffle W/R={}/{}B map-reruns={} broadcasts={}",
            self.jobs,
            self.stages,
            self.tasks,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.recomputed_partitions,
            self.shuffle_bytes_written,
            self.shuffle_bytes_read,
            self.shuffle_map_reruns,
            self.broadcasts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        Metrics::bump(&m.jobs);
        Metrics::add(&m.tasks, 5);
        let s = m.snapshot();
        assert_eq!(s.jobs, 1);
        assert_eq!(s.tasks, 5);
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn delta_subtracts() {
        let m = Metrics::new();
        Metrics::add(&m.tasks, 3);
        let before = m.snapshot();
        Metrics::add(&m.tasks, 4);
        Metrics::bump(&m.cache_hits);
        let after = m.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.tasks, 4);
        assert_eq!(d.cache_hits, 1);
        assert_eq!(d.jobs, 0);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let m = Metrics::new();
        Metrics::add(&m.tasks, 42);
        Metrics::add(&m.shuffle_bytes_written, u64::MAX - 7);
        let s = m.snapshot();
        let text = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s, "u64 counters must survive the JSON round trip");
    }

    #[test]
    fn snapshot_display_is_one_line() {
        let m = Metrics::new();
        Metrics::bump(&m.jobs);
        Metrics::add(&m.tasks, 9);
        let line = m.snapshot().to_string();
        assert!(line.contains("jobs=1"));
        assert!(line.contains("tasks=9"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        use std::sync::Arc;
        let m = Arc::new(Metrics::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        Metrics::bump(&m.tasks);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().tasks, 8000);
    }
}
