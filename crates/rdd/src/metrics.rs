//! Engine execution metrics.
//!
//! Two layers live here:
//!
//! * [`Metrics`]/[`MetricsSnapshot`] — the engine's own counters, which
//!   the tests and benchmark harnesses assert on: cache behaviour (hits
//!   prove Algorithm 3's reuse of the `U` RDD), recomputation (proves
//!   lineage recovery actually ran), shuffle volumes, and
//!   task/stage/job counts.
//! * [`Registry`] — a general named-metric registry (counters, gauges,
//!   histograms) with Prometheus text exposition, fed from the event bus
//!   by [`crate::events::RegistryListener`], so a long-running engine can
//!   expose aggregate health without replaying event logs.
//!
//! All counters are relaxed atomics — they are statistics, not
//! synchronization.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Live counters owned by the engine.
#[derive(Debug, Default)]
pub struct Metrics {
    pub jobs: AtomicU64,
    pub stages: AtomicU64,
    pub tasks: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    /// Partitions recomputed after having been cached and lost.
    pub recomputed_partitions: AtomicU64,
    /// Map tasks re-run because their shuffle output went missing.
    pub shuffle_map_reruns: AtomicU64,
    pub shuffle_map_tasks: AtomicU64,
    pub shuffle_bytes_written: AtomicU64,
    pub shuffle_bytes_read: AtomicU64,
    pub input_bytes: AtomicU64,
    pub input_local_reads: AtomicU64,
    pub broadcasts: AtomicU64,
    pub broadcast_bytes: AtomicU64,
}

/// A point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub jobs: u64,
    pub stages: u64,
    pub tasks: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub recomputed_partitions: u64,
    pub shuffle_map_reruns: u64,
    pub shuffle_map_tasks: u64,
    pub shuffle_bytes_written: u64,
    pub shuffle_bytes_read: u64,
    pub input_bytes: u64,
    pub input_local_reads: u64,
    pub broadcasts: u64,
    pub broadcast_bytes: u64,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            jobs: g(&self.jobs),
            stages: g(&self.stages),
            tasks: g(&self.tasks),
            cache_hits: g(&self.cache_hits),
            cache_misses: g(&self.cache_misses),
            cache_evictions: g(&self.cache_evictions),
            recomputed_partitions: g(&self.recomputed_partitions),
            shuffle_map_reruns: g(&self.shuffle_map_reruns),
            shuffle_map_tasks: g(&self.shuffle_map_tasks),
            shuffle_bytes_written: g(&self.shuffle_bytes_written),
            shuffle_bytes_read: g(&self.shuffle_bytes_read),
            input_bytes: g(&self.input_bytes),
            input_local_reads: g(&self.input_local_reads),
            broadcasts: g(&self.broadcasts),
            broadcast_bytes: g(&self.broadcast_bytes),
        }
    }
}

impl MetricsSnapshot {
    /// Difference `self - earlier`, saturating (counters are monotonic, so
    /// saturation only matters if snapshots are passed in the wrong order).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs: self.jobs.saturating_sub(earlier.jobs),
            stages: self.stages.saturating_sub(earlier.stages),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            recomputed_partitions: self
                .recomputed_partitions
                .saturating_sub(earlier.recomputed_partitions),
            shuffle_map_reruns: self
                .shuffle_map_reruns
                .saturating_sub(earlier.shuffle_map_reruns),
            shuffle_map_tasks: self
                .shuffle_map_tasks
                .saturating_sub(earlier.shuffle_map_tasks),
            shuffle_bytes_written: self
                .shuffle_bytes_written
                .saturating_sub(earlier.shuffle_bytes_written),
            shuffle_bytes_read: self
                .shuffle_bytes_read
                .saturating_sub(earlier.shuffle_bytes_read),
            input_bytes: self.input_bytes.saturating_sub(earlier.input_bytes),
            input_local_reads: self
                .input_local_reads
                .saturating_sub(earlier.input_local_reads),
            broadcasts: self.broadcasts.saturating_sub(earlier.broadcasts),
            broadcast_bytes: self.broadcast_bytes.saturating_sub(earlier.broadcast_bytes),
        }
    }
}

/// Compact single-line rendering of the counters that matter most when a
/// snapshot is printed in a log or a benchmark footer.
impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "jobs={} stages={} tasks={} cache hit/miss/evict={}/{}/{} recomputed={} \
             shuffle W/R={}/{}B map-reruns={} broadcasts={}",
            self.jobs,
            self.stages,
            self.tasks,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.recomputed_partitions,
            self.shuffle_bytes_written,
            self.shuffle_bytes_read,
            self.shuffle_map_reruns,
            self.broadcasts,
        )
    }
}

// ---------------------------------------------------------------------------
// Live metrics registry
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, clocks, in-flight jobs).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `u64` observations (cumulative buckets in
/// the exposition, Prometheus-style). Observation is lock-free: one
/// relaxed increment per bucket/sum/count.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket follows the last.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Default bounds for nanosecond durations: 1 µs … 100 s, decades.
    pub fn duration_ns_bounds() -> Vec<u64> {
        (3..12).map(|p| 10u64.pow(p)).collect()
    }

    fn new(bounds: Vec<u64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// Prometheus metric-name grammar: `[a-zA-Z_:][a-zA-Z0-9_:]*`. Enforced
/// at registration so a bad name fails at the call site instead of
/// producing an exposition scrapers silently drop.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Escape a HELP string per the Prometheus text format — backslash and
/// newline — so one metric's help text cannot corrupt the line framing of
/// the whole exposition.
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_str(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named-metric registry with Prometheus text exposition.
///
/// Metric handles are `Arc`s: the instrumented code path holds the handle
/// and updates it lock-free; the registry only takes its lock on
/// registration and rendering. Names render in lexicographic order, so
/// [`Registry::render_prometheus`] is deterministic for a fixed state.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, (String, Metric)>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> Metric,
        pick: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        assert!(
            valid_metric_name(name),
            "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        let mut metrics = self.metrics.write();
        let (_, metric) = metrics
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), make()));
        pick(metric).unwrap_or_else(|| {
            panic!(
                "metric {name:?} already registered as a {}",
                metric.type_str()
            )
        })
    }

    /// Get or create a counter. Panics if `name` exists with another type.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            || Metric::Counter(Arc::new(Counter::default())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get or create a gauge. Panics if `name` exists with another type.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            || Metric::Gauge(Arc::new(Gauge::default())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get or create a histogram with the given bucket upper bounds.
    /// Panics if `name` exists with another type. If it already exists as
    /// a histogram, the existing bounds win.
    pub fn histogram(&self, name: &str, help: &str, bounds: Vec<u64>) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            || Metric::Histogram(Arc::new(Histogram::new(bounds))),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    pub fn len(&self) -> usize {
        self.metrics.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.read().is_empty()
    }

    /// Render every metric in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, cumulative histogram buckets with an
    /// `+Inf` bound, `_sum` and `_count` series).
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.read();
        let mut out = String::new();
        for (name, (help, metric)) in metrics.iter() {
            if !help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", metric.type_str());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                        cumulative += bucket.load(Ordering::Relaxed);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        Metrics::bump(&m.jobs);
        Metrics::add(&m.tasks, 5);
        let s = m.snapshot();
        assert_eq!(s.jobs, 1);
        assert_eq!(s.tasks, 5);
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn delta_subtracts() {
        let m = Metrics::new();
        Metrics::add(&m.tasks, 3);
        let before = m.snapshot();
        Metrics::add(&m.tasks, 4);
        Metrics::bump(&m.cache_hits);
        let after = m.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.tasks, 4);
        assert_eq!(d.cache_hits, 1);
        assert_eq!(d.jobs, 0);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let m = Metrics::new();
        Metrics::add(&m.tasks, 42);
        Metrics::add(&m.shuffle_bytes_written, u64::MAX - 7);
        let s = m.snapshot();
        let text = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s, "u64 counters must survive the JSON round trip");
    }

    #[test]
    fn snapshot_display_is_one_line() {
        let m = Metrics::new();
        Metrics::bump(&m.jobs);
        Metrics::add(&m.tasks, 9);
        let line = m.snapshot().to_string();
        assert!(line.contains("jobs=1"));
        assert!(line.contains("tasks=9"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("sparkscore_tasks_total", "tasks");
        let b = reg.counter("sparkscore_tasks_total", "ignored duplicate help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name must return the same counter");
        assert_eq!(reg.len(), 1);
        let g = reg.gauge("sparkscore_running_jobs", "in-flight");
        g.add(2);
        g.add(-1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn registry_rejects_type_confusion() {
        let reg = Registry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let reg = Registry::new();
        let h = reg.histogram("h_ns", "latency", vec![10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5126);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE h_ns histogram"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"100\"} 4"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"1000\"} 4"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("h_ns_sum 5126"), "{text}");
        assert!(text.contains("h_ns_count 5"), "{text}");
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let reg = Registry::new();
        reg.counter("z_total", "last");
        reg.counter("a_total", "first");
        reg.gauge("m_gauge", "middle");
        let text = reg.render_prometheus();
        let a = text.find("a_total").unwrap();
        let m = text.find("m_gauge").unwrap();
        let z = text.find("z_total").unwrap();
        assert!(a < m && m < z, "lexicographic order: {text}");
        assert_eq!(text, reg.render_prometheus());
        assert!(text.contains("# HELP a_total first"), "{text}");
        assert!(text.contains("# TYPE m_gauge gauge"), "{text}");
    }

    #[test]
    fn duration_bounds_are_increasing_decades() {
        let bounds = Histogram::duration_ns_bounds();
        assert_eq!(bounds.first(), Some(&1_000));
        assert_eq!(bounds.last(), Some(&100_000_000_000));
        assert!(bounds.windows(2).all(|w| w[1] == w[0] * 10));
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        use std::sync::Arc;
        let m = Arc::new(Metrics::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        Metrics::bump(&m.tasks);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().tasks, 8000);
    }

    #[test]
    fn histogram_boundary_observations_land_inclusively() {
        let reg = Registry::new();
        let h = reg.histogram("edge_ns", "", vec![10, 100]);
        // `le` is inclusive: a value exactly on a bound belongs to that
        // bucket, zero lands in the first bucket, and anything above the
        // last bound only reaches +Inf.
        for v in [0, 10, 100, 101, u64::MAX] {
            h.observe(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("edge_ns_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("edge_ns_bucket{le=\"100\"} 3"), "{text}");
        assert!(text.contains("edge_ns_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("edge_ns_count 5"), "{text}");
    }

    #[test]
    fn help_text_with_newline_and_backslash_stays_one_line() {
        let reg = Registry::new();
        reg.counter("escaped_total", "first line\nsecond \\ line");
        let text = reg.render_prometheus();
        let help_line = text
            .lines()
            .find(|l| l.starts_with("# HELP escaped_total"))
            .expect("help line present");
        assert_eq!(
            help_line,
            "# HELP escaped_total first line\\nsecond \\\\ line"
        );
        // The raw newline must not have leaked into the framing: every
        // line is either a comment or a sample.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("escaped_total"),
                "unframed line {line:?} in {text}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_names_outside_prometheus_grammar() {
        Registry::new().counter("bad-name", "hyphens are not allowed");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_leading_digit_names() {
        Registry::new().gauge("9lives", "");
    }

    #[test]
    fn concurrent_registry_counter_increments_sum_exactly() {
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    // Half the threads race get_or_insert, half bump a
                    // fresh handle; all must hit the same counter. Render
                    // concurrently to shake out lock ordering.
                    let c = reg.counter("racy_total", "contended");
                    for i in 0..1000u64 {
                        c.inc();
                        if t == 0 && i % 250 == 0 {
                            let _ = reg.render_prometheus();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("racy_total", "").get(), 8000);
        assert!(reg.render_prometheus().contains("racy_total 8000"));
    }
}
