//! Always-on flight recorder: bounded per-job event retention.
//!
//! [`FlightRecorder`] is an [`EventListener`] that keeps the **last N
//! events of each job** in fixed-capacity ring buffers, so a live job can
//! be dumped as a well-formed partial trace at any moment — the per-job
//! trace retention a long-running service needs (post-hoc JSONL logs
//! require the process to exit first). Memory is bounded by
//! `per_job × max_jobs` events: a full ring overwrites its oldest entry
//! in O(1), and when a new job arrives past `max_jobs` the oldest
//! finished job (or the oldest outright) is evicted.
//!
//! The recorder is lock-light in the same sense as the rest of the event
//! plane: one mutex taken once per batch (the engine emits all of a
//! stage's task events in a single batch), constant-time ring pushes, and
//! no allocation after a ring reaches capacity.
//!
//! Retention is **keyed by tenant** for multi-tenant services: a job
//! started by a thread tagged via [`set_thread_tenant`] carries the
//! tenant name in its [`JobStatus`], and when the job bound forces an
//! eviction the victim comes from the tenant holding the most rings —
//! one chatty tenant cannot wipe the other tenants' traces.

use std::cell::RefCell;
use std::collections::BTreeMap;

use parking_lot::Mutex;

use crate::events::{EngineEvent, EventListener};

thread_local! {
    /// The tenant owning whatever jobs the current thread starts. Event
    /// listeners run synchronously on the emitting thread, so a service
    /// worker that tags itself before running a job payload attributes
    /// every engine job that payload starts to the right tenant.
    static TENANT_TAG: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Tag (or untag, with `None`) the current thread with a tenant name for
/// flight-recorder job attribution. Jobs started while untagged are
/// recorded without a tenant, exactly as before the service plane.
pub fn set_thread_tenant(tenant: Option<&str>) {
    TENANT_TAG.with(|t| *t.borrow_mut() = tenant.map(str::to_string));
}

/// The current thread's tenant tag, if any.
pub fn current_thread_tenant() -> Option<String> {
    TENANT_TAG.with(|t| t.borrow().clone())
}

/// Default events retained per job.
pub const DEFAULT_EVENTS_PER_JOB: usize = 512;
/// Default number of jobs tracked before the oldest is evicted.
pub const DEFAULT_MAX_JOBS: usize = 8;

/// Fixed-capacity event ring: `push` is O(1) and overwrites the oldest
/// entry once full.
struct Ring {
    buf: Vec<EngineEvent>,
    cap: usize,
    /// Index of the oldest entry (only meaningful once wrapped).
    head: usize,
    /// Total events ever pushed (≥ `buf.len()`; the difference is the
    /// overwritten count).
    seen: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            cap: cap.max(1),
            head: 0,
            seen: 0,
        }
    }

    fn push(&mut self, event: EngineEvent) {
        self.seen += 1;
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Retained events, oldest first.
    fn events(&self) -> Vec<EngineEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn len(&self) -> usize {
        self.buf.len()
    }
}

struct JobRing {
    job: u64,
    /// The thread tenant tag at the moment the job was first seen.
    tenant: Option<String>,
    finished: bool,
    ring: Ring,
}

struct RecorderState {
    /// Tracked jobs in arrival order.
    jobs: Vec<JobRing>,
    /// Stage → owning job, for routing task events.
    stage_job: BTreeMap<u64, u64>,
    /// Engine-global events (faults, evictions, internal stages).
    global: Ring,
    /// Routing hint for `Span` events: the job the current batch's
    /// surrounding events belong to (batches are per-stage, so this is
    /// exact within a batch and a best-effort fallback across them).
    current_job: Option<u64>,
    /// Jobs evicted to stay within the job bound.
    evicted_jobs: u64,
}

/// Live status of one tracked job, for a `jobs` table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    pub job: u64,
    /// Owning tenant, when the job was started by a tagged service
    /// worker ([`set_thread_tenant`]); `None` for untagged jobs.
    pub tenant: Option<String>,
    /// `false` while the job is still running.
    pub finished: bool,
    /// Events currently retained in the ring.
    pub retained: usize,
    /// Events ever routed to this job (≥ retained).
    pub seen: u64,
}

/// The flight recorder listener. See the module docs.
pub struct FlightRecorder {
    state: Mutex<RecorderState>,
    per_job: usize,
    max_jobs: usize,
}

impl FlightRecorder {
    /// A recorder with the default bounds
    /// ([`DEFAULT_EVENTS_PER_JOB`] × [`DEFAULT_MAX_JOBS`]).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENTS_PER_JOB, DEFAULT_MAX_JOBS)
    }

    /// A recorder retaining at most `per_job` events for each of at most
    /// `max_jobs` jobs (both clamped to ≥ 1).
    pub fn with_capacity(per_job: usize, max_jobs: usize) -> Self {
        FlightRecorder {
            state: Mutex::new(RecorderState {
                jobs: Vec::with_capacity(max_jobs.max(1)),
                stage_job: BTreeMap::new(),
                global: Ring::new(per_job.max(1)),
                current_job: None,
                evicted_jobs: 0,
            }),
            per_job: per_job.max(1),
            max_jobs: max_jobs.max(1),
        }
    }

    /// Status of every tracked job, in arrival order.
    pub fn jobs(&self) -> Vec<JobStatus> {
        self.state
            .lock()
            .jobs
            .iter()
            .map(|j| JobStatus {
                job: j.job,
                tenant: j.tenant.clone(),
                finished: j.finished,
                retained: j.ring.len(),
                seen: j.ring.seen,
            })
            .collect()
    }

    /// Status of every tracked job belonging to `tenant`, arrival order.
    pub fn tenant_jobs(&self, tenant: &str) -> Vec<JobStatus> {
        self.jobs()
            .into_iter()
            .filter(|j| j.tenant.as_deref() == Some(tenant))
            .collect()
    }

    /// Dump every retained job of `tenant` as JSONL, arrival order;
    /// `None` if no tracked job belongs to the tenant.
    pub fn dump_tenant(&self, tenant: &str) -> Option<String> {
        let st = self.state.lock();
        let mut out = String::new();
        let mut any = false;
        for j in &st.jobs {
            if j.tenant.as_deref() != Some(tenant) {
                continue;
            }
            any = true;
            for e in j.ring.events() {
                out.push_str(&e.to_json().to_string());
                out.push('\n');
            }
        }
        any.then_some(out)
    }

    /// The retained events of `job`, oldest first; `None` for an unknown
    /// (or already-evicted) job.
    pub fn job_events(&self, job: u64) -> Option<Vec<EngineEvent>> {
        let st = self.state.lock();
        st.jobs
            .iter()
            .find(|j| j.job == job)
            .map(|j| j.ring.events())
    }

    /// Dump one job's retained events as JSONL — the exact schema
    /// `parse_event_log` and the `trace` CLI consume. `None` for an
    /// unknown job.
    pub fn dump_job(&self, job: u64) -> Option<String> {
        self.job_events(job).map(|events| {
            events
                .iter()
                .map(|e| format!("{}\n", e.to_json()))
                .collect()
        })
    }

    /// Dump everything retained — every tracked job in arrival order,
    /// then the engine-global events — as JSONL.
    pub fn dump_all(&self) -> String {
        let st = self.state.lock();
        let mut out = String::new();
        for j in &st.jobs {
            for e in j.ring.events() {
                out.push_str(&e.to_json().to_string());
                out.push('\n');
            }
        }
        for e in st.global.events() {
            out.push_str(&e.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Total events currently retained across all rings (the recorder's
    /// memory backlog, exposed as a gauge by the profiler).
    pub fn backlog_events(&self) -> usize {
        let st = self.state.lock();
        st.jobs.iter().map(|j| j.ring.len()).sum::<usize>() + st.global.len()
    }

    /// Jobs evicted so far to stay within the job bound.
    pub fn evicted_jobs(&self) -> u64 {
        self.state.lock().evicted_jobs
    }

    fn apply(&self, st: &mut RecorderState, event: &EngineEvent) {
        match event {
            EngineEvent::JobStart { job, .. } => {
                self.ring_for(st, *job).ring.push(event.clone());
                st.current_job = Some(*job);
            }
            EngineEvent::JobEnd { job, .. } => {
                let r = self.ring_for(st, *job);
                r.finished = true;
                r.ring.push(event.clone());
                st.current_job = None;
            }
            EngineEvent::StageSubmitted {
                job: Some(job),
                stage,
                ..
            } => {
                st.stage_job.insert(*stage, *job);
                st.current_job = Some(*job);
                self.ring_for(st, *job).ring.push(event.clone());
            }
            EngineEvent::StageCompleted {
                job: Some(job),
                stage,
                ..
            } => {
                st.stage_job.entry(*stage).or_insert(*job);
                st.current_job = Some(*job);
                self.ring_for(st, *job).ring.push(event.clone());
            }
            EngineEvent::TaskStart { stage, .. }
            | EngineEvent::TaskEnd { stage, .. }
            | EngineEvent::MemoryWatermark { stage, .. } => {
                match st.stage_job.get(stage).copied() {
                    Some(job) => {
                        st.current_job = Some(job);
                        self.ring_for(st, job).ring.push(event.clone());
                    }
                    None => st.global.push(event.clone()),
                }
            }
            EngineEvent::Span { .. } => match st.current_job {
                Some(job) => self.ring_for(st, job).ring.push(event.clone()),
                None => st.global.push(event.clone()),
            },
            // Engine-internal stages and cross-job events.
            _ => st.global.push(event.clone()),
        }
    }

    /// The ring of `job`, creating (and evicting, if at the job bound)
    /// as needed.
    fn ring_for<'a>(&self, st: &'a mut RecorderState, job: u64) -> &'a mut JobRing {
        if let Some(i) = st.jobs.iter().position(|j| j.job == job) {
            return &mut st.jobs[i];
        }
        if st.jobs.len() >= self.max_jobs {
            // Retention is keyed by tenant: among finished jobs, evict
            // from the tenant holding the most rings (oldest of that
            // tenant first), so one chatty tenant's burst cannot wipe the
            // other tenants' traces. Fall back to the oldest finished
            // job, then the oldest outright, so new work is always
            // recordable.
            let mut per_tenant: BTreeMap<Option<&str>, usize> = BTreeMap::new();
            for j in &st.jobs {
                *per_tenant.entry(j.tenant.as_deref()).or_insert(0) += 1;
            }
            let victim = st
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.finished)
                .max_by_key(|(i, j)| (per_tenant[&j.tenant.as_deref()], std::cmp::Reverse(*i)))
                .map_or(0, |(i, _)| i);
            let evicted = st.jobs.remove(victim);
            st.stage_job.retain(|_, &mut j| j != evicted.job);
            st.evicted_jobs += 1;
        }
        st.jobs.push(JobRing {
            job,
            tenant: current_thread_tenant(),
            finished: false,
            ring: Ring::new(self.per_job),
        });
        st.jobs.last_mut().expect("just pushed")
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl EventListener for FlightRecorder {
    fn on_event(&self, event: &EngineEvent) {
        self.apply(&mut self.state.lock(), event);
    }

    fn on_events(&self, events: &[EngineEvent]) {
        let mut st = self.state.lock();
        for event in events {
            self.apply(&mut st, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{parse_event_log, SpanContext, StageKind, TaskMetrics};

    fn job_events(job: u64, stage: u64, tasks: usize) -> Vec<EngineEvent> {
        let span = SpanContext::root(job * 100 + 1);
        let stage_span = span.child(job * 100 + 2);
        let mut out = vec![
            EngineEvent::JobStart {
                job,
                virtual_now_ns: 0,
                span,
                mono_ns: 1,
            },
            EngineEvent::StageSubmitted {
                job: Some(job),
                stage,
                kind: StageKind::Result,
                num_tasks: tasks,
                span: stage_span,
                mono_ns: 2,
            },
        ];
        for p in 0..tasks {
            out.push(EngineEvent::TaskEnd {
                stage,
                metrics: TaskMetrics {
                    partition: p,
                    ..TaskMetrics::default()
                },
            });
        }
        out.push(EngineEvent::StageCompleted {
            job: Some(job),
            stage,
            kind: StageKind::Result,
            makespan_ns: 10,
            local_reads: 0,
            span: stage_span,
            mono_ns: 3,
        });
        out.push(EngineEvent::JobEnd {
            job,
            virtual_now_ns: 10,
            virtual_advance_ns: 10,
            span,
            mono_ns: 4,
        });
        out
    }

    #[test]
    fn routes_events_to_their_job() {
        let rec = FlightRecorder::new();
        rec.on_events(&job_events(0, 0, 2));
        rec.on_events(&job_events(1, 1, 3));
        let jobs = rec.jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].job, 0);
        assert!(jobs[0].finished);
        // start + submit + 2 tasks + completed + end
        assert_eq!(jobs[0].retained, 6);
        assert_eq!(jobs[0].seen, 6);
        assert_eq!(jobs[1].retained, 7);
        assert_eq!(jobs[1].seen, 7);
    }

    #[test]
    fn ring_overwrites_oldest_in_bounded_memory() {
        let rec = FlightRecorder::with_capacity(4, 2);
        rec.on_events(&job_events(0, 0, 100));
        let jobs = rec.jobs();
        assert_eq!(jobs[0].retained, 4, "ring capped");
        assert_eq!(jobs[0].seen, 104);
        let events = rec.job_events(0).unwrap();
        assert_eq!(events.len(), 4);
        // The newest events survive: the last task, completion, end.
        assert!(matches!(events.last(), Some(EngineEvent::JobEnd { .. })));
        assert!(rec.backlog_events() <= 8);
    }

    #[test]
    fn dump_is_a_parseable_partial_trace() {
        let rec = FlightRecorder::with_capacity(6, 4);
        // In-flight job: no JobEnd yet.
        let mut events = job_events(7, 3, 2);
        events.truncate(events.len() - 1);
        rec.on_events(&events);
        let dump = rec.dump_job(7).expect("job tracked");
        let parsed = parse_event_log(&dump).expect("dump parses");
        assert_eq!(parsed.len(), 5);
        assert!(matches!(parsed[0], EngineEvent::JobStart { job: 7, .. }));
        assert!(rec.dump_job(99).is_none());
        // dump_all includes the job too.
        assert!(!rec.dump_all().is_empty());
    }

    #[test]
    fn span_events_follow_the_current_job() {
        let rec = FlightRecorder::new();
        rec.on_events(&[
            EngineEvent::JobStart {
                job: 5,
                virtual_now_ns: 0,
                span: SpanContext::root(1),
                mono_ns: 0,
            },
            EngineEvent::Span {
                span: SpanContext { span: 9, parent: 1 },
                label: "kernel:contributions".to_string(),
                start_ns: 1,
                end_ns: 2,
            },
        ]);
        let events = rec.job_events(5).unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1], EngineEvent::Span { .. }));
    }

    #[test]
    fn evicts_finished_jobs_first() {
        let rec = FlightRecorder::with_capacity(16, 2);
        rec.on_events(&job_events(0, 0, 1)); // finished
        let mut open = job_events(1, 1, 1); // leave open
        open.truncate(open.len() - 1);
        rec.on_events(&open);
        rec.on_events(&job_events(2, 2, 1)); // forces eviction of job 0
        let tracked: Vec<u64> = rec.jobs().iter().map(|j| j.job).collect();
        assert_eq!(tracked, vec![1, 2], "finished job 0 evicted");
        assert_eq!(rec.evicted_jobs(), 1);
        assert!(rec.job_events(0).is_none());
    }

    #[test]
    fn jobs_are_attributed_to_the_thread_tenant() {
        let rec = FlightRecorder::new();
        set_thread_tenant(Some("alice"));
        rec.on_events(&job_events(0, 0, 1));
        set_thread_tenant(None);
        rec.on_events(&job_events(1, 1, 1));
        let jobs = rec.jobs();
        assert_eq!(jobs[0].tenant.as_deref(), Some("alice"));
        assert_eq!(jobs[1].tenant, None);
        let alice = rec.tenant_jobs("alice");
        assert_eq!(alice.len(), 1);
        assert_eq!(alice[0].job, 0);
        let dump = rec.dump_tenant("alice").expect("alice has a ring");
        assert_eq!(parse_event_log(&dump).unwrap().len(), 5);
        assert!(rec.dump_tenant("bob").is_none());
    }

    #[test]
    fn eviction_prefers_the_most_crowded_tenant() {
        let rec = FlightRecorder::with_capacity(16, 3);
        set_thread_tenant(Some("noisy"));
        rec.on_events(&job_events(0, 0, 1));
        rec.on_events(&job_events(1, 1, 1));
        set_thread_tenant(Some("quiet"));
        rec.on_events(&job_events(2, 2, 1));
        // The job bound is reached; the new job must evict noisy's
        // oldest finished ring, not quiet's only one.
        set_thread_tenant(Some("noisy"));
        rec.on_events(&job_events(3, 3, 1));
        set_thread_tenant(None);
        let tracked: Vec<u64> = rec.jobs().iter().map(|j| j.job).collect();
        assert_eq!(tracked, vec![1, 2, 3], "noisy's oldest evicted");
        assert_eq!(rec.tenant_jobs("quiet").len(), 1, "quiet survives");
        assert_eq!(rec.evicted_jobs(), 1);
    }

    #[test]
    fn global_events_never_touch_job_rings() {
        let rec = FlightRecorder::new();
        rec.on_event(&EngineEvent::CacheEvicted {
            op: 1,
            partition: 0,
            pressure: true,
            bytes: 64,
        });
        assert!(rec.jobs().is_empty());
        assert_eq!(rec.backlog_events(), 1);
        let dump = rec.dump_all();
        assert_eq!(parse_event_log(&dump).unwrap().len(), 1);
    }
}
