//! Persistent work-stealing executor pool and lock-free task result slots.
//!
//! The seed engine paid a `std::thread::scope` spawn/join for **every
//! stage**. Resampling inference (the paper's Algorithms 2 and 3) runs
//! thousands of small stages per experiment — B permutation or multiplier
//! iterations, each a full job over the cached `U` RDD — so per-stage
//! thread churn dominated exactly the regime the paper cares about. This
//! module replaces it with:
//!
//! * [`ExecutorPool`] — `host_threads - 1` worker threads built once at
//!   [`crate::Engine`] construction and reused across all stages and jobs.
//!   Each stage's task indices are split into per-participant ranges
//!   claimed in chunks from the front by their owner and stolen in halves
//!   from the back by idle participants (lazy-splitting work stealing over
//!   an index range, one CAS per claim). Idle workers park on a condvar;
//!   the driver thread participates in every stage, so a one-task stage
//!   runs **inline on the driver with no pool interaction at all**.
//! * [`TaskSlots`] — write-once result cells indexed by task. Every task
//!   index is claimed by exactly one participant, so slot writes are
//!   disjoint and need no lock; the pool's completion protocol provides
//!   the happens-before edge for the driver's final read.
//!
//! Shutdown is tied to engine drop: the pool sets a shutdown flag, wakes
//! every worker, and joins them, so no detached threads outlive the
//! engine.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

thread_local! {
    /// This thread's participant index in the pool it belongs to
    /// (`usize::MAX` when the thread is not a pool participant). Workers
    /// set it once at startup; the driver sets it on every stage entry.
    static PARTICIPANT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// What a pool participant is doing right now. Written with relaxed
/// stores on the participant's own transitions and sampled by the pool
/// profiler — an instantaneous, advisory view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParticipantState {
    /// Waiting for work (workers park on the condvar; the driver is
    /// between stages or waiting out stragglers).
    #[default]
    Parked,
    /// Executing claimed tasks.
    Running,
    /// Scanning other participants' ranges for work to steal.
    Stealing,
}

const STATE_PARKED: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_STEALING: u8 = 2;

impl ParticipantState {
    fn from_u8(v: u8) -> Self {
        match v {
            STATE_RUNNING => ParticipantState::Running,
            STATE_STEALING => ParticipantState::Stealing,
            _ => ParticipantState::Parked,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            ParticipantState::Parked => "parked",
            ParticipantState::Running => "running",
            ParticipantState::Stealing => "stealing",
        }
    }
}

/// One participant's instant in a [`PoolSnapshot`].
#[derive(Debug, Clone, Copy)]
pub struct ParticipantSnapshot {
    pub state: ParticipantState,
    /// Span id of the task the participant is running (0 = none).
    pub current_span: u64,
    /// Tasks still unclaimed in this participant's own range.
    pub queue_depth: usize,
}

/// An instantaneous view of the pool, taken by
/// [`PoolDiagnostics::snapshot`].
#[derive(Debug, Clone)]
pub struct PoolSnapshot {
    /// Participant 0 is the driver; the rest are pool workers.
    pub participants: Vec<ParticipantSnapshot>,
    /// Whether a multi-task stage is currently published.
    pub stage_active: bool,
    /// Tasks completed so far in the active stage (0 when idle).
    pub stage_tasks_completed: usize,
}

/// Write-once, lock-free result slots, one per task index.
///
/// # Safety contract
///
/// * [`TaskSlots::write`] must be called **at most once per index**, and
///   never concurrently for the same index. The pool guarantees this: an
///   index is handed to exactly one participant by a successful CAS claim.
/// * [`TaskSlots::into_vec`] must only be called after every index has
///   been written **and** those writes happen-before the call (the pool's
///   completion counter and state mutex provide the edge).
///
/// If the stage aborts before all slots are written, the slots are leaked
/// (`MaybeUninit` never drops) — a leak, not UB, and only reachable when
/// the process is already unwinding.
pub(crate) struct TaskSlots<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: slots are written by worker threads (T crosses threads once) and
// read back only by the driver after the completion barrier; disjoint
// indices make the cells effectively thread-owned per task.
unsafe impl<T: Send> Sync for TaskSlots<T> {}
unsafe impl<T: Send> Send for TaskSlots<T> {}

impl<T> TaskSlots<T> {
    pub fn new(n: usize) -> Self {
        TaskSlots {
            slots: (0..n)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// Store the result for task `i`.
    ///
    /// # Safety
    /// `i` is in bounds, written at most once, never concurrently.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.slots.len());
        (*self.slots[i].get()).write(value);
    }

    /// Take all results, in index order.
    ///
    /// # Safety
    /// Every index was written exactly once and those writes
    /// happen-before this call.
    pub unsafe fn into_vec(self) -> Vec<T> {
        self.slots
            .into_vec()
            .into_iter()
            .map(|cell| cell.into_inner().assume_init())
            .collect()
    }
}

/// Packed task range `lo..hi` (each 32 bits) owned by one participant.
/// Owners claim chunks from the front, thieves take halves from the back;
/// both are single CASes on the same word, so claims never overlap.
struct TaskRange(AtomicU64);

const LO_SHIFT: u32 = 32;
const HI_MASK: u64 = 0xffff_ffff;

#[inline]
fn pack(lo: usize, hi: usize) -> u64 {
    ((lo as u64) << LO_SHIFT) | hi as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> LO_SHIFT) as usize, (v & HI_MASK) as usize)
}

impl TaskRange {
    fn new(lo: usize, hi: usize) -> Self {
        TaskRange(AtomicU64::new(pack(lo, hi)))
    }

    /// Unclaimed `(lo, hi)` right now — advisory, for diagnostics.
    fn remaining(&self) -> (usize, usize) {
        unpack(self.0.load(Ordering::Acquire))
    }

    /// Owner side: claim a chunk from the front. Chunk size grows with the
    /// remaining range (amortizing CAS traffic over many tiny tasks) but
    /// stays small enough that thieves can still balance skewed stages.
    fn claim_front(&self) -> Option<(usize, usize)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = ((hi - lo) / 8).clamp(1, 16);
            let end = (lo + take).min(hi);
            match self.0.compare_exchange_weak(
                cur,
                pack(end, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((lo, end)),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief side: steal half of the remaining range from the back.
    fn steal_back(&self) -> Option<(usize, usize)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = ((hi - lo) / 2).max(1);
            let start = hi - take;
            match self.0.compare_exchange_weak(
                cur,
                pack(lo, start),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((start, hi)),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// One published stage: the type-erased task runner plus the claim state.
/// Lives on the driver's stack for the duration of `ExecutorPool::run`;
/// the retire protocol guarantees no worker holds the pointer after the
/// driver returns.
struct StageJob {
    /// Runs task index `i`. Must not unwind — the engine wraps every task
    /// body in `catch_unwind` and stores the panic as a result. The
    /// `'static` is a lie told to the type system: the borrow lives until
    /// the publishing `ExecutorPool::run` frame returns, and the retire
    /// protocol keeps every use inside that window.
    run: &'static (dyn Fn(usize) + Sync),
    ranges: Box<[TaskRange]>,
    completed: AtomicUsize,
}

/// Pointer to the driver-stack `StageJob`, shared through `PoolState`.
#[derive(Clone, Copy)]
struct JobHandle(*const StageJob);

// SAFETY: the handle only crosses threads between publish and retire;
// the driver blocks until `in_flight == 0` before invalidating it.
unsafe impl Send for JobHandle {}

struct PoolState {
    /// Bumped at every publish; workers use it to avoid re-entering a
    /// stage they already drained.
    epoch: u64,
    job: Option<JobHandle>,
    /// Workers currently holding the job pointer.
    in_flight: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a publish (or shutdown).
    work_cv: Condvar,
    /// The driver waits here for stage completion and in-flight drain.
    done_cv: Condvar,
    threads_alive: AtomicUsize,
    threads_spawned: AtomicUsize,
    /// Per-participant activity (`STATE_*`), sampled by the profiler.
    participant_state: Box<[AtomicU8]>,
    /// Span id of the task each participant is running (0 = none).
    participant_span: Box<[AtomicU64]>,
}

impl PoolShared {
    /// Lock the pool state, shrugging off poison: a panic can only occur
    /// outside the critical sections (task bodies are caught), so the
    /// state is never left inconsistent.
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Observability handle for the pool's thread accounting (leak and
/// per-stage-spawn regression tests). Cheap to clone; stays valid after
/// the engine is dropped.
#[derive(Clone)]
pub struct PoolDiagnostics {
    shared: Arc<PoolShared>,
}

impl PoolDiagnostics {
    /// Worker threads spawned since pool construction. A healthy pool
    /// spawns exactly once; growth here means per-stage spawning is back.
    pub fn threads_spawned(&self) -> usize {
        self.shared.threads_spawned.load(Ordering::Acquire)
    }

    /// Worker threads currently alive (0 after the owning engine drops).
    pub fn threads_alive(&self) -> usize {
        self.shared.threads_alive.load(Ordering::Acquire)
    }

    /// Instantaneous pool view: per-participant state, current span, and
    /// unclaimed queue depth, plus active-stage progress. Safe to call
    /// from any thread at any time (the pool profiler's sampling hook).
    pub fn snapshot(&self) -> PoolSnapshot {
        let n = self.shared.participant_state.len();
        let mut depths = vec![0usize; n];
        let mut completed = 0usize;
        let st = self.shared.lock();
        let stage_active = match st.job {
            // SAFETY: `job` is only Some while the publishing `run` frame
            // is alive, and the driver must take this same lock to retire
            // it — holding the lock keeps the pointer valid for the read.
            Some(h) => {
                let job = unsafe { &*h.0 };
                completed = job.completed.load(Ordering::Acquire);
                for (d, range) in depths.iter_mut().zip(job.ranges.iter()) {
                    let (lo, hi) = range.remaining();
                    *d = hi.saturating_sub(lo);
                }
                true
            }
            None => false,
        };
        drop(st);
        let participants = (0..n)
            .map(|i| ParticipantSnapshot {
                state: ParticipantState::from_u8(
                    self.shared.participant_state[i].load(Ordering::Relaxed),
                ),
                current_span: self.shared.participant_span[i].load(Ordering::Relaxed),
                queue_depth: depths[i],
            })
            .collect();
        PoolSnapshot {
            participants,
            stage_active,
            stage_tasks_completed: completed,
        }
    }
}

/// The persistent executor pool. See the module docs for the protocol.
pub(crate) struct ExecutorPool {
    shared: Arc<PoolShared>,
    /// Serializes stage submissions: one stage owns the claim state at a
    /// time. Concurrent driver threads queue here (jobs are sequential on
    /// the driver anyway — the virtual scheduler erects a barrier per job).
    submit: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
    /// Total participants per stage: the workers plus the driver.
    participants: usize,
}

impl ExecutorPool {
    /// Build a pool with `host_threads` total execution slots: the calling
    /// driver thread plus `host_threads - 1` parked workers.
    pub fn new(host_threads: usize) -> Self {
        let host_threads = host_threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                in_flight: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            threads_alive: AtomicUsize::new(0),
            threads_spawned: AtomicUsize::new(0),
            participant_state: (0..host_threads)
                .map(|_| AtomicU8::new(STATE_PARKED))
                .collect(),
            participant_span: (0..host_threads).map(|_| AtomicU64::new(0)).collect(),
        });
        let workers = (1..host_threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                shared.threads_alive.fetch_add(1, Ordering::AcqRel);
                shared.threads_spawned.fetch_add(1, Ordering::AcqRel);
                std::thread::Builder::new()
                    .name(format!("sparkscore-exec-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn executor pool worker")
            })
            .collect();
        ExecutorPool {
            shared,
            submit: Mutex::new(()),
            workers,
            participants: host_threads,
        }
    }

    pub fn diagnostics(&self) -> PoolDiagnostics {
        PoolDiagnostics {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Record the span id of the task the calling participant is running
    /// (0 = between tasks). No-op on threads that are not participants.
    #[inline]
    pub(crate) fn note_current_span(&self, span: u64) {
        let idx = PARTICIPANT.with(|p| p.get());
        if let Some(slot) = self.shared.participant_span.get(idx) {
            slot.store(span, Ordering::Relaxed);
        }
    }

    /// Run `n` tasks, calling `run_task(i)` exactly once for each
    /// `i in 0..n`, and return once all have completed. `run_task` must
    /// not unwind (wrap task bodies in `catch_unwind`).
    ///
    /// One-task stages — the resampling hot path — run inline on the
    /// caller with no locks, wakeups, or atomics.
    pub fn run(&self, n: usize, run_task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // The driver is participant 0 on every path, including inline
        // single-task stages, so span attribution and profiler state work
        // without pool interaction.
        PARTICIPANT.with(|p| p.set(0));
        let driver_state = &self.shared.participant_state[0];
        if n == 1 {
            driver_state.store(STATE_RUNNING, Ordering::Relaxed);
            run_task(0);
            driver_state.store(STATE_PARKED, Ordering::Relaxed);
            return;
        }
        if self.participants == 1 {
            driver_state.store(STATE_RUNNING, Ordering::Relaxed);
            for i in 0..n {
                run_task(i);
            }
            driver_state.store(STATE_PARKED, Ordering::Relaxed);
            return;
        }

        assert!(n as u64 <= HI_MASK, "stage exceeds the packed-range limit");
        let _stage_owner = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY(lifetime erasure): the reference is only used between
        // publish and retire below, both inside this call, so the borrow
        // it came from is live for every use.
        let run_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run_task) };
        let job = StageJob {
            run: run_static,
            ranges: split_ranges(n, self.participants),
            completed: AtomicUsize::new(0),
        };

        // Publish and wake just enough workers to cover the stage.
        {
            let mut st = self.shared.lock();
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(JobHandle(&job as *const StageJob));
            let wake = (self.participants - 1).min(n - 1);
            if wake == self.participants - 1 {
                self.shared.work_cv.notify_all();
            } else {
                for _ in 0..wake {
                    self.shared.work_cv.notify_one();
                }
            }
        }

        // The driver is participant 0: it executes its own share (and
        // steals) before waiting, so a stage never blocks on a wakeup.
        execute_stage(&job, 0, &self.shared);

        // Wait for completion, retire the job, then drain stragglers that
        // still hold the pointer before the job leaves this stack frame.
        let mut st = self.shared.lock();
        while job.completed.load(Ordering::Acquire) < n {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        while st.in_flight > 0 {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Split `0..n` into `participants` contiguous ranges (some possibly
/// empty); participant 0 is the driver.
fn split_ranges(n: usize, participants: usize) -> Box<[TaskRange]> {
    (0..participants)
        .map(|p| TaskRange::new(p * n / participants, (p + 1) * n / participants))
        .collect()
}

/// Drain the stage from participant `me`'s viewpoint: claim chunks from
/// the own range, then steal from the others until nothing is left.
/// Publishes the participant's running/stealing/parked transitions for
/// the profiler as it goes (relaxed stores, once per claim, not per task).
fn execute_stage(job: &StageJob, me: usize, shared: &PoolShared) {
    let run = job.run;
    let mut ran = 0usize;
    let state = &shared.participant_state[me];
    loop {
        while let Some((lo, hi)) = job.ranges[me].claim_front() {
            state.store(STATE_RUNNING, Ordering::Relaxed);
            for i in lo..hi {
                run(i);
            }
            ran += hi - lo;
        }
        state.store(STATE_STEALING, Ordering::Relaxed);
        let mut stole = false;
        for off in 1..job.ranges.len() {
            let victim = (me + off) % job.ranges.len();
            if let Some((lo, hi)) = job.ranges[victim].steal_back() {
                state.store(STATE_RUNNING, Ordering::Relaxed);
                for i in lo..hi {
                    run(i);
                }
                ran += hi - lo;
                stole = true;
                break;
            }
        }
        if !stole {
            break;
        }
    }
    state.store(STATE_PARKED, Ordering::Relaxed);
    if ran > 0 {
        job.completed.fetch_add(ran, Ordering::AcqRel);
    }
}

fn worker_loop(shared: &PoolShared, me: usize) {
    PARTICIPANT.with(|p| p.set(me));
    let mut seen_epoch = 0u64;
    loop {
        let handle = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    shared.threads_alive.fetch_sub(1, Ordering::AcqRel);
                    return;
                }
                if let Some(h) = st.job {
                    if st.epoch != seen_epoch {
                        seen_epoch = st.epoch;
                        st.in_flight += 1;
                        break h;
                    }
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: in_flight was incremented under the state lock while the
        // job was published, so the driver cannot free it until we exit.
        execute_stage(unsafe { &*handle.0 }, me, shared);
        {
            let mut st = shared.lock();
            st.in_flight -= 1;
        }
        shared.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn ranges_claim_and_steal_disjointly() {
        let r = TaskRange::new(0, 100);
        let mut seen = vec![false; 100];
        loop {
            let claimed = if seen.iter().filter(|s| **s).count() % 2 == 0 {
                r.claim_front()
            } else {
                r.steal_back()
            };
            let Some((lo, hi)) = claimed else { break };
            for (i, s) in seen.iter_mut().enumerate().take(hi).skip(lo) {
                assert!(!*s, "index {i} claimed twice");
                *s = true;
            }
        }
        assert!(seen.into_iter().all(|s| s), "every index claimed");
    }

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let pool = ExecutorPool::new(4);
        for &n in &[0usize, 1, 2, 3, 17, 256, 1000] {
            let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            pool.run(n, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} of {n}");
            }
        }
    }

    #[test]
    fn pool_reuses_threads_across_many_stages() {
        let pool = ExecutorPool::new(3);
        let diag = pool.diagnostics();
        for _ in 0..500 {
            let hits = AtomicUsize::new(0);
            pool.run(5, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 5);
        }
        assert_eq!(diag.threads_spawned(), 2, "workers spawned exactly once");
        assert_eq!(diag.threads_alive(), 2);
        drop(pool);
        assert_eq!(diag.threads_alive(), 0, "drop joins all workers");
    }

    #[test]
    fn single_threaded_pool_runs_inline_in_order() {
        let pool = ExecutorPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.run(8, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
        assert_eq!(pool.diagnostics().threads_spawned(), 0);
    }

    #[test]
    fn slots_round_trip_results() {
        let slots: TaskSlots<String> = TaskSlots::new(4);
        for i in 0..4 {
            // SAFETY: unique index, single thread.
            unsafe { slots.write(i, format!("v{i}")) };
        }
        let v = unsafe { slots.into_vec() };
        assert_eq!(v, vec!["v0", "v1", "v2", "v3"]);
    }
}
