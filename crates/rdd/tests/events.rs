//! Invariants of the engine's event stream: ordering, counts, fault
//! correlation, and the JSONL event-log round trip.

use std::sync::Arc;

use sparkscore_cluster::{ClusterSpec, FaultPlan};
use sparkscore_rdd::events::parse_event_log;
use sparkscore_rdd::{
    Engine, EngineEvent, EventListener, FaultDetail, MemoryEventListener, StageSummaryListener,
};

fn observed_engine() -> (Arc<Engine>, Arc<MemoryEventListener>) {
    let mem = Arc::new(MemoryEventListener::new());
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .listener(Arc::clone(&mem) as Arc<dyn EventListener>)
        .build();
    (engine, mem)
}

/// A two-stage job: shuffle map stage (reduce_by_key) feeding the result
/// stage of a `collect`.
fn run_shuffle_job(engine: &Arc<Engine>) {
    let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i % 10, i)).collect();
    let summed = engine.parallelize(pairs, 4).reduce_by_key(4, |a, b| a + b);
    assert_eq!(summed.collect().len(), 10);
}

#[test]
fn job_start_precedes_its_stage_submissions() {
    let (engine, mem) = observed_engine();
    run_shuffle_job(&engine);
    run_shuffle_job(&engine);
    let events = mem.snapshot();
    let job_started_at = |job: u64| {
        events
            .iter()
            .position(|e| matches!(e, EngineEvent::JobStart { job: j, .. } if *j == job))
            .unwrap_or_else(|| panic!("job {job} never started"))
    };
    let mut saw_job_stage = false;
    for (i, e) in events.iter().enumerate() {
        if let EngineEvent::StageSubmitted { job: Some(j), .. } = e {
            saw_job_stage = true;
            assert!(
                job_started_at(*j) < i,
                "StageSubmitted for job {j} at index {i} precedes its JobStart"
            );
        }
    }
    assert!(saw_job_stage, "jobs must submit stages: {events:?}");
    // Every started job eventually ends, after all its stages complete.
    for e in &events {
        if let EngineEvent::JobStart { job, .. } = e {
            let end = events
                .iter()
                .position(|e| matches!(e, EngineEvent::JobEnd { job: j, .. } if j == job))
                .unwrap_or_else(|| panic!("job {job} never ended"));
            let last_stage = events
                .iter()
                .rposition(
                    |e| matches!(e, EngineEvent::StageCompleted { job: Some(j), .. } if j == job),
                )
                .unwrap_or_else(|| panic!("job {job} completed no stages"));
            assert!(last_stage < end);
        }
    }
}

#[test]
fn task_end_count_matches_task_counter_delta() {
    let (engine, mem) = observed_engine();
    let before = engine.metrics_snapshot();
    run_shuffle_job(&engine);
    let delta = engine.metrics_snapshot().delta_since(&before);
    let events = mem.snapshot();
    let task_ends = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::TaskEnd { .. }))
        .count() as u64;
    assert_eq!(task_ends, delta.tasks, "one TaskEnd per counted task");
    // TaskStart is a legacy variant: the engine emits exactly one TaskEnd
    // per task and no start markers.
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, EngineEvent::TaskStart { .. })),
        "engine must not emit TaskStart"
    );
    // Stage task counts are consistent with submissions.
    for e in &events {
        if let EngineEvent::StageSubmitted {
            stage, num_tasks, ..
        } = e
        {
            let ends = events
                .iter()
                .filter(|e| matches!(e, EngineEvent::TaskEnd { stage: s, .. } if s == stage))
                .count();
            assert_eq!(ends, *num_tasks, "stage {stage} task count");
        }
    }
}

#[test]
fn cached_block_fault_yields_fault_event_then_recompute_flagged_task() {
    let mem = Arc::new(MemoryEventListener::new());
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(2)
        .listener(Arc::clone(&mem) as Arc<dyn EventListener>)
        .build();

    let cached = engine
        .parallelize((0u64..400).collect::<Vec<_>>(), 4)
        .map(|x| x * 3)
        .cache();
    assert_eq!(cached.count(), 400); // materialize all four blocks
    engine.set_fault_plan(FaultPlan::none().with_cached_block_loss_every(2));
    assert_eq!(cached.count(), 400); // faults fire, blocks drop
    engine.set_fault_plan(FaultPlan::none());
    assert_eq!(cached.count(), 400); // recompute the lost blocks

    let events = mem.snapshot();
    let fault_at = events
        .iter()
        .position(|e| {
            matches!(
                e,
                EngineEvent::FaultInjected {
                    fault: FaultDetail::DropCachedBlock { .. }
                }
            )
        })
        .expect("the fault plan must inject a cached-block drop");
    let recompute_at = events
        .iter()
        .position(|e| matches!(e, EngineEvent::TaskEnd { metrics, .. } if metrics.recomputed_partitions > 0))
        .expect("a later task must recompute the lost block");
    assert!(
        fault_at < recompute_at,
        "FaultInjected (index {fault_at}) must precede the recompute-flagged TaskEnd (index {recompute_at})"
    );
    // The fault path also reports the eviction itself, as non-pressure.
    assert!(events.iter().any(|e| matches!(
        e,
        EngineEvent::CacheEvicted {
            pressure: false,
            ..
        }
    )));
}

#[test]
fn event_log_round_trips_through_jsonl() {
    let mem = Arc::new(MemoryEventListener::new());
    let buf: Arc<parking_lot::Mutex<Vec<u8>>> = Arc::default();
    struct SharedWriter(Arc<parking_lot::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .listener(Arc::clone(&mem) as Arc<dyn EventListener>)
        .listener(Arc::new(sparkscore_rdd::EventLogListener::new(
            SharedWriter(Arc::clone(&buf)),
        )))
        .build();
    run_shuffle_job(&engine);

    let text = String::from_utf8(buf.lock().clone()).unwrap();
    let parsed = parse_event_log(&text).expect("every line parses");
    assert_eq!(
        parsed,
        mem.snapshot(),
        "the JSONL log must reproduce the in-memory event stream exactly"
    );
    assert!(!parsed.is_empty());
}

/// Regression test: a panicking task must not strand buffered events in
/// the `EventLogListener`'s `BufWriter`. The engine flushes every
/// listener before re-raising the task panic on the driver, so the log
/// file already holds a well-formed prefix of the run while the process
/// is still alive (no reliance on `Drop`, which never runs if the panic
/// aborts the process).
#[test]
fn task_panic_flushes_buffered_event_log_to_disk() {
    let path = std::env::temp_dir().join(format!(
        "sparkscore-panic-flush-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .listener(Arc::new(
            sparkscore_rdd::EventLogListener::to_file(&path).unwrap(),
        ))
        .build();

    // A completed job first, so the buffer holds whole-stage batches that
    // predate the failure, then a job whose stage panics mid-flight.
    run_shuffle_job(&engine);
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine
            .parallelize((0..16u64).collect::<Vec<_>>(), 8)
            .map(|x| {
                assert!(x != 11, "injected task failure");
                x
            })
            .collect();
    }));
    assert!(boom.is_err(), "task panic must reach the driver");

    // Engine and listener are both still alive: anything on disk now got
    // there through the panic-path flush, not a destructor.
    let text = std::fs::read_to_string(&path).unwrap();
    let events = parse_event_log(&text).expect("partial log is well-formed JSONL");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, EngineEvent::JobEnd { .. })),
        "completed job's tail must be flushed: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, EngineEvent::TaskEnd { .. })),
        "batched TaskEnd events must be flushed: {events:?}"
    );
    let submissions = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::StageSubmitted { .. }))
        .count();
    assert_eq!(
        submissions, 3,
        "the panicking job's own StageSubmitted must be flushed too"
    );

    drop(engine);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stage_summary_totals_match_engine_metrics() {
    let summary = Arc::new(StageSummaryListener::new());
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .listener(Arc::clone(&summary) as Arc<dyn EventListener>)
        .build();
    let before = engine.metrics_snapshot();
    run_shuffle_job(&engine);
    let delta = engine.metrics_snapshot().delta_since(&before);

    let stages = summary.summaries();
    let tasks: usize = stages.iter().map(|s| s.task_virtual_ns.len()).sum();
    assert_eq!(tasks as u64, delta.tasks);
    let shuffle_written: u64 = stages.iter().map(|s| s.shuffle_write_bytes).sum();
    assert_eq!(shuffle_written, delta.shuffle_bytes_written);
    let shuffle_read: u64 = stages.iter().map(|s| s.shuffle_read_bytes).sum();
    assert_eq!(shuffle_read, delta.shuffle_bytes_read);

    let report = summary.report();
    assert!(report.contains("ShuffleMap"), "{report}");
    assert!(report.contains("Result"), "{report}");
}

#[test]
fn grid_cells_threads_replicate_counters_into_stage_summaries() {
    let summary = Arc::new(StageSummaryListener::new());
    let engine = Engine::builder(ClusterSpec::test_small(2))
        .host_threads(2)
        .listener(Arc::clone(&summary) as Arc<dyn EventListener>)
        .build();
    let data = engine.parallelize((0u64..40).collect::<Vec<_>>(), 4);
    let cells = data.grid_cells(|ctx, part, rows| {
        ctx.add_replicates_run(rows.len() as u64 * 3);
        ctx.add_replicates_saved(rows.len() as u64);
        (part, rows.iter().sum::<u64>())
    });
    // Cells arrive in partition order.
    assert_eq!(
        cells.iter().map(|c| c.0).collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    assert_eq!(cells.iter().map(|c| c.1).sum::<u64>(), (0u64..40).sum());
    let stages = summary.summaries();
    assert_eq!(stages.iter().map(|s| s.replicates_run).sum::<u64>(), 120);
    assert_eq!(stages.iter().map(|s| s.replicates_saved).sum::<u64>(), 40);
}

/// One instance of every `EngineEvent` variant (and every `FaultDetail`
/// kind), with field values chosen to stress integer width and optional
/// fields.
fn every_event_variant() -> Vec<EngineEvent> {
    use sparkscore_rdd::events::SpanContext;
    use sparkscore_rdd::{StageKind, TaskMetrics};
    vec![
        EngineEvent::JobStart {
            job: u64::MAX,
            virtual_now_ns: 0,
            span: SpanContext::root(u64::MAX),
            mono_ns: u64::MAX,
        },
        EngineEvent::JobEnd {
            job: u64::MAX,
            virtual_now_ns: u64::MAX,
            virtual_advance_ns: u64::MAX - 1,
            span: SpanContext::root(u64::MAX),
            mono_ns: 0,
        },
        EngineEvent::StageSubmitted {
            job: None,
            stage: 0,
            kind: StageKind::ShuffleMap,
            num_tasks: 0,
            span: SpanContext::NONE,
            mono_ns: 0,
        },
        EngineEvent::StageSubmitted {
            job: Some(3),
            stage: 1,
            kind: StageKind::Result,
            num_tasks: usize::MAX >> 1,
            span: SpanContext { span: 2, parent: 1 },
            mono_ns: 17,
        },
        EngineEvent::StageCompleted {
            job: Some(3),
            stage: 1,
            kind: StageKind::Result,
            makespan_ns: u64::MAX,
            local_reads: 7,
            span: SpanContext { span: 2, parent: 1 },
            mono_ns: 18,
        },
        EngineEvent::StageCompleted {
            job: None,
            stage: 0,
            kind: StageKind::ShuffleMap,
            makespan_ns: 0,
            local_reads: 0,
            span: SpanContext::NONE,
            mono_ns: 0,
        },
        EngineEvent::TaskStart {
            stage: 9,
            partition: 0,
        },
        EngineEvent::Span {
            span: SpanContext {
                span: u64::MAX,
                parent: u64::MAX - 1,
            },
            label: "kernel:contributions".to_string(),
            start_ns: 0,
            end_ns: u64::MAX,
        },
        EngineEvent::TaskEnd {
            stage: 9,
            metrics: TaskMetrics {
                partition: 31,
                wall_ns: u64::MAX,
                virtual_compute_ns: 1,
                virtual_start_ns: 2,
                virtual_finish_ns: 3,
                node: u64::MAX,
                executor: u32::MAX,
                input_local: true,
                input_bytes: 4,
                shuffle_read_bytes: 5,
                shuffle_write_bytes: 6,
                cache_hits: 7,
                cache_misses: 8,
                recomputed_partitions: 9,
                kernel_rows: 10,
                packed_kernel_rows: 6,
                scratch_reuses: 11,
                replicates_run: 12,
                replicates_saved: 13,
                span: SpanContext { span: 3, parent: 2 },
                mono_start_ns: 19,
                mono_end_ns: 20,
            },
        },
        EngineEvent::TaskEnd {
            stage: 9,
            metrics: TaskMetrics::default(),
        },
        EngineEvent::CacheEvicted {
            op: 1,
            partition: 2,
            pressure: true,
            bytes: u64::MAX,
        },
        EngineEvent::CacheEvicted {
            op: u64::MAX,
            partition: 0,
            pressure: false,
            bytes: 0,
        },
        EngineEvent::CacheAdmitted {
            op: 5,
            partition: usize::MAX >> 1,
            bytes: u64::MAX,
        },
        EngineEvent::CacheRejected {
            op: u64::MAX,
            partition: 0,
            bytes: 1 << 40,
        },
        EngineEvent::ShuffleBytesStored {
            shuffle: u64::MAX,
            map_part: 3,
            bytes: u64::MAX - 1,
        },
        EngineEvent::MemoryWatermark {
            stage: u64::MAX,
            block_cache_bytes: 1,
            shuffle_store_bytes: 2,
            dfs_blocks_bytes: 3,
            scratch_bytes: 4,
            cache_budget_bytes: u64::MAX,
            mono_ns: 5,
        },
        EngineEvent::ShuffleMapRerun {
            shuffle: u64::MAX,
            map_part: 17,
        },
        EngineEvent::FaultInjected {
            fault: FaultDetail::KillNode { node: u64::MAX },
        },
        EngineEvent::FaultInjected {
            fault: FaultDetail::DropCachedBlock {
                op: u64::MAX,
                partition: 1,
            },
        },
        EngineEvent::FaultInjected {
            fault: FaultDetail::DropShuffleOutput {
                shuffle: 0,
                map_part: usize::MAX >> 1,
            },
        },
    ]
}

#[test]
fn every_event_variant_round_trips_through_jsonl() {
    let events = every_event_variant();
    // The sample must cover the full variant space: if a new event is
    // added, `name()` here won't list it and this assertion will flag the
    // missing round-trip coverage.
    let names: std::collections::BTreeSet<&str> = events.iter().map(|e| e.name()).collect();
    let expected: std::collections::BTreeSet<&str> = [
        "JobStart",
        "JobEnd",
        "StageSubmitted",
        "StageCompleted",
        "TaskStart",
        "Span",
        "TaskEnd",
        "CacheEvicted",
        "CacheAdmitted",
        "CacheRejected",
        "ShuffleBytesStored",
        "MemoryWatermark",
        "ShuffleMapRerun",
        "FaultInjected",
    ]
    .into_iter()
    .collect();
    assert_eq!(names, expected, "sample covers every event variant");

    // Per-event object round trip.
    for event in &events {
        let back = EngineEvent::from_json(&event.to_json())
            .unwrap_or_else(|e| panic!("{} failed to re-parse: {e}", event.name()));
        assert_eq!(&back, event, "round-trip for {}", event.name());
    }

    // Whole-log text round trip (the shape `trace` consumes).
    let text: String = events
        .iter()
        .map(|e| format!("{}\n", e.to_json()))
        .collect();
    assert_eq!(parse_event_log(&text).unwrap(), events);
}

#[test]
fn parse_event_log_rejects_malformed_lines() {
    let good = r#"{"Event":"JobStart","job":1,"virtual_now_ns":0}"#;
    // A good line does parse on its own (control).
    assert_eq!(parse_event_log(good).unwrap().len(), 1);
    // Blank and whitespace-only lines are skipped.
    assert_eq!(
        parse_event_log(&format!("\n  \n{good}\n\n")).unwrap().len(),
        1
    );

    let bad_lines = [
        "not json at all",
        "{\"Event\":\"JobStart\",\"job\":1,",          // truncated JSON
        "{\"job\":1}",                                 // missing discriminator
        "{\"Event\":\"NoSuchEvent\",\"job\":1}",       // unknown event
        "{\"Event\":42}",                              // discriminator not a string
        "{\"Event\":\"JobStart\",\"job\":\"one\",\"virtual_now_ns\":0}", // wrong field type
        "{\"Event\":\"JobStart\",\"virtual_now_ns\":0}", // missing field
        "{\"Event\":\"JobStart\",\"job\":-1,\"virtual_now_ns\":0}", // negative u64
        "{\"Event\":\"StageSubmitted\",\"job\":null,\"stage\":0,\"kind\":\"Sideways\",\"num_tasks\":1}", // bad kind
        "{\"Event\":\"FaultInjected\",\"fault\":{\"kind\":\"Gremlin\"}}", // bad fault kind
    ];
    for bad in bad_lines {
        // A malformed line poisons the parse even when surrounded by
        // valid events — truncated or corrupt logs fail loudly.
        let log = format!("{good}\n{bad}\n{good}\n");
        assert!(
            parse_event_log(&log).is_err(),
            "line {bad:?} should fail to parse"
        );
    }
}

/// Satellite invariant: across pool-worker puts, pressure evictions, and
/// unpersists, the memory ledger's `used` equals the cache's own byte
/// count (itself the sum of resident block sizes) at every quiescent
/// point — the delta accounting never drifts from the real residency.
#[test]
fn ledger_matches_residency_through_concurrent_churn() {
    use sparkscore_rdd::MemCategory;
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .cache_budget_bytes(64 * 1024) // small budget: force eviction churn
        .build();
    let ledger = Arc::clone(engine.memory_ledger());
    let mut datasets = Vec::new();
    for round in 0..4u64 {
        let d = engine
            .parallelize((0u64..4_000).map(|i| i + round).collect::<Vec<_>>(), 8)
            .map(|x| x.wrapping_mul(0x9e3779b97f4a7c15))
            .cache();
        assert_eq!(d.count(), 4_000); // 8 pool tasks put/evict concurrently
        datasets.push(d);
        assert_eq!(
            ledger.used(MemCategory::BlockCache),
            engine.cache_used_bytes(),
            "ledger drifted from cache residency after round {round}"
        );
    }
    let per_op: u64 = datasets
        .iter()
        .map(|d| engine.cache_resident_bytes(d.id()))
        .sum();
    assert_eq!(
        ledger.used(MemCategory::BlockCache),
        per_op,
        "per-op residency must sum to the ledger total"
    );
    assert!(ledger.peak(MemCategory::BlockCache) >= ledger.used(MemCategory::BlockCache));
    // Unpersist half explicitly, drop the rest: both paths must settle to 0.
    datasets[0].unpersist();
    datasets[1].unpersist();
    drop(datasets);
    assert_eq!(ledger.used(MemCategory::BlockCache), 0);
    assert_eq!(engine.cache_used_bytes(), 0);
}

/// Satellite invariant: replaying the event log's byte deltas
/// (admitted − evicted, shuffle stores) reproduces the live ledger state.
#[test]
fn event_log_byte_deltas_replay_to_ledger_state() {
    use sparkscore_rdd::MemCategory;
    let (engine, mem) = observed_engine();
    let cached = engine
        .parallelize((0u64..2_000).collect::<Vec<_>>(), 4)
        .map(|x| x * 7)
        .cache();
    assert_eq!(cached.count(), 2_000);
    let pairs: Vec<(u64, u64)> = (0..300).map(|i| (i % 16, i)).collect();
    let summed = engine.parallelize(pairs, 4).reduce_by_key(4, |a, b| a + b);
    assert_eq!(summed.collect().len(), 16);

    let replay = |events: &[EngineEvent]| {
        let mut cache: i128 = 0;
        let mut shuffle: u64 = 0;
        for e in events {
            match e {
                EngineEvent::CacheAdmitted { bytes, .. } => cache += i128::from(*bytes),
                EngineEvent::CacheEvicted { bytes, .. } => cache -= i128::from(*bytes),
                EngineEvent::ShuffleBytesStored { bytes, .. } => shuffle += *bytes,
                _ => {}
            }
        }
        (cache, shuffle)
    };
    let (cache_bytes, shuffle_bytes) = replay(&mem.snapshot());
    let ledger = engine.memory_ledger();
    assert!(
        cache_bytes > 0,
        "the cached dataset must have been admitted"
    );
    assert!(shuffle_bytes > 0, "the shuffle must have stored bytes");
    assert_eq!(
        u64::try_from(cache_bytes).unwrap(),
        ledger.used(MemCategory::BlockCache),
        "cache byte deltas replay to live residency"
    );
    assert_eq!(
        shuffle_bytes,
        ledger.used(MemCategory::ShuffleStore),
        "shuffle byte deltas replay to live store occupancy"
    );
    // Dropping the datasets emits the matching negative deltas: the
    // replayed cache residency returns to exactly zero.
    drop(cached);
    drop(summed);
    let (cache_after, _) = replay(&mem.snapshot());
    assert_eq!(cache_after, 0, "unpersist deltas balance the admissions");
    assert_eq!(ledger.used(MemCategory::BlockCache), 0);
    assert_eq!(ledger.used(MemCategory::ShuffleStore), 0);
}

/// Every observed non-empty stage carries one MemoryWatermark sample, and
/// its per-category values are plausible against the live ledger peaks.
#[test]
fn memory_watermarks_ride_stage_batches() {
    use sparkscore_rdd::MemCategory;
    let (engine, mem) = observed_engine();
    run_shuffle_job(&engine);
    let events = mem.snapshot();
    let stages = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::StageCompleted { .. }))
        .count();
    let marks: Vec<&EngineEvent> = events
        .iter()
        .filter(|e| matches!(e, EngineEvent::MemoryWatermark { .. }))
        .collect();
    assert_eq!(
        marks.len(),
        stages,
        "one watermark per observed stage: {events:?}"
    );
    for (i, e) in events.iter().enumerate() {
        if matches!(e, EngineEvent::MemoryWatermark { .. }) {
            assert!(
                matches!(events[i + 1], EngineEvent::StageCompleted { .. }),
                "watermark at {i} must immediately precede its StageCompleted"
            );
        }
    }
    let ledger = engine.memory_ledger();
    for m in marks {
        if let EngineEvent::MemoryWatermark {
            shuffle_store_bytes,
            cache_budget_bytes,
            ..
        } = m
        {
            assert!(*shuffle_store_bytes <= ledger.peak(MemCategory::ShuffleStore));
            assert_eq!(*cache_budget_bytes, engine.cache_budget_bytes());
        }
    }
}

#[test]
fn unobserved_engine_emits_nothing_and_stays_correct() {
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .build();
    assert!(!engine.events().is_active());
    run_shuffle_job(&engine);
    // Listeners attached mid-flight start seeing events immediately.
    let mem = Arc::new(MemoryEventListener::new());
    engine
        .events()
        .register(Arc::clone(&mem) as Arc<dyn EventListener>);
    run_shuffle_job(&engine);
    assert!(mem
        .snapshot()
        .iter()
        .any(|e| matches!(e, EngineEvent::JobStart { .. })));
}
