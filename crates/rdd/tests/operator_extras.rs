//! Tests for the extended operator set (sample, distinct, coalesce,
//! zip_with_index, take_ordered, count_by_key, aggregate_by_key) and
//! property tests pinning pipelines to their sequential `Vec` oracles.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use sparkscore_cluster::ClusterSpec;
use sparkscore_rdd::{Dataset, Engine};

fn engine() -> Arc<Engine> {
    Engine::builder(ClusterSpec::test_small(2))
        .host_threads(2)
        .build()
}

fn numbers(e: &Arc<Engine>, n: u64, parts: usize) -> Dataset<u64> {
    e.parallelize((0..n).collect(), parts)
}

#[test]
fn sample_is_deterministic_and_roughly_proportional() {
    let e = engine();
    let ds = numbers(&e, 10_000, 8);
    let a = ds.sample(0.3, 42).collect();
    let b = ds.sample(0.3, 42).collect();
    assert_eq!(a, b, "same seed, same sample");
    let frac = a.len() as f64 / 10_000.0;
    assert!((frac - 0.3).abs() < 0.03, "observed fraction {frac}");
    let c = ds.sample(0.3, 43).collect();
    assert_ne!(a, c, "different seed should differ");
    // Sampled records keep their relative order within partitions.
    assert!(a.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn sample_extremes() {
    let e = engine();
    let ds = numbers(&e, 100, 4);
    assert!(ds.sample(0.0, 1).collect().is_empty());
    assert_eq!(ds.sample(1.0, 1).count(), 100);
}

#[test]
fn distinct_removes_duplicates() {
    let e = engine();
    let ds = e.parallelize(vec![3u64, 1, 3, 2, 1, 1, 2], 3);
    let mut got = ds.distinct(2).collect();
    got.sort_unstable();
    assert_eq!(got, vec![1, 2, 3]);
}

#[test]
fn coalesce_preserves_records_and_order() {
    let e = engine();
    let ds = numbers(&e, 100, 10);
    let co = ds.coalesce(3);
    assert_eq!(co.num_partitions(), 3);
    assert_eq!(co.collect(), (0..100).collect::<Vec<_>>());
    // Coalescing beyond the partition count clamps.
    assert_eq!(ds.coalesce(50).num_partitions(), 10);
}

#[test]
fn zip_with_index_is_global_and_ordered() {
    let e = engine();
    let ds = e.parallelize(
        vec!["a", "b", "c", "d", "e"]
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>(),
        3,
    );
    let zipped = ds.zip_with_index().collect();
    let want: Vec<(String, u64)> = ["a", "b", "c", "d", "e"]
        .iter()
        .enumerate()
        .map(|(i, s)| (s.to_string(), i as u64))
        .collect();
    assert_eq!(zipped, want);
}

#[test]
fn take_ordered_matches_sort_truncate() {
    let e = engine();
    let data: Vec<u64> = (0..500).map(|x| (x * 7919) % 997).collect();
    let ds = e.parallelize(data.clone(), 7);
    let got = ds.take_ordered(10, |a, b| a.cmp(b));
    let mut want = data;
    want.sort_unstable();
    want.truncate(10);
    assert_eq!(got, want);
    assert!(ds.take_ordered(0, |a, b| a.cmp(b)).is_empty());
}

#[test]
fn take_ordered_reverse_comparator() {
    let e = engine();
    let ds = numbers(&e, 50, 4);
    let got = ds.take_ordered(3, |a, b| b.cmp(a));
    assert_eq!(got, vec![49, 48, 47]);
}

#[test]
fn count_by_key_matches_oracle() {
    let e = engine();
    let pairs: Vec<(u8, u64)> = (0..300).map(|x| ((x % 5) as u8, x)).collect();
    let got = e.parallelize(pairs.clone(), 6).count_by_key(3);
    let mut want: HashMap<u8, u64> = HashMap::new();
    for (k, _) in pairs {
        *want.entry(k).or_insert(0) += 1;
    }
    assert_eq!(got, want);
}

#[test]
fn aggregate_by_key_computes_min_max() {
    let e = engine();
    let pairs: Vec<(u8, i64)> = vec![(1, 5), (1, -2), (2, 7), (1, 3), (2, 7)];
    let got = e
        .parallelize(pairs, 3)
        .aggregate_by_key(
            (i64::MAX, i64::MIN),
            2,
            |acc, v| {
                acc.0 = acc.0.min(v);
                acc.1 = acc.1.max(v);
            },
            |acc, other| {
                acc.0 = acc.0.min(other.0);
                acc.1 = acc.1.max(other.1);
            },
        )
        .collect_as_map();
    assert_eq!(got[&1], (-2, 5));
    assert_eq!(got[&2], (7, 7));
}

#[test]
fn save_as_text_file_round_trips_through_part_files() {
    let e = engine();
    let ds = numbers(&e, 100, 4).map(|x| format!("line-{x}"));
    ds.save_as_text_file("/out").unwrap();
    // Four Hadoop-style part files appear on the DFS.
    let parts: Vec<String> = e
        .dfs()
        .list_files()
        .into_iter()
        .filter(|p| p.starts_with("/out/part-"))
        .collect();
    assert_eq!(parts.len(), 4);
    assert!(parts.contains(&"/out/part-00000".to_string()));
    // Re-reading yields the same records in the same order.
    let back = e.text_file_dir("/out").unwrap().collect();
    assert_eq!(
        back,
        (0..100).map(|x| format!("line-{x}")).collect::<Vec<_>>()
    );
}

#[test]
fn text_file_dir_truncates_lineage() {
    let e = engine();
    let expensive = numbers(&e, 50, 2).map(|x| (x * x).to_string());
    expensive.save_as_text_file("/ckpt").unwrap();
    let reread = e.text_file_dir("/ckpt").unwrap();
    // The re-read dataset's lineage reaches text files, not the original
    // parallelize/map chain.
    let lineage = reread.lineage();
    assert!(lineage.contains("textFile"));
    assert!(!lineage.contains("parallelize"));
    // And it survives dropping the original dataset entirely.
    drop(expensive);
    assert_eq!(reread.count(), 50);
}

#[test]
fn text_file_dir_missing_dir_errors() {
    let e = engine();
    assert!(e.text_file_dir("/nothing").is_err());
}

#[test]
fn map_with_cost_changes_virtual_time_not_results() {
    let cheap_engine = engine();
    let cheap = numbers(&cheap_engine, 1000, 4).map_with_cost(1.0, |x| x + 1);
    let cheap_result = cheap.collect();
    let cheap_time = cheap_engine.virtual_time_ns();

    let costly_engine = engine();
    let costly = numbers(&costly_engine, 1000, 4).map_with_cost(10_000.0, |x| x + 1);
    let costly_result = costly.collect();
    let costly_time = costly_engine.virtual_time_ns();

    assert_eq!(cheap_result, costly_result, "cost hints never change data");
    assert!(
        costly_time > cheap_time * 2,
        "declared cost must dominate virtual time: {costly_time} vs {cheap_time}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// map ∘ filter ∘ flat_map pipelines equal their iterator oracles for
    /// arbitrary data and partitioning.
    #[test]
    fn prop_narrow_pipeline_matches_oracle(
        data in proptest::collection::vec(0u64..1000, 0..200),
        parts in 1usize..12,
        mul in 1u64..5,
        modulus in 1u64..7,
    ) {
        let e = engine();
        let got = e.parallelize(data.clone(), parts)
            .map(move |x| x * mul)
            .filter(move |x| x % modulus == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect();
        let want: Vec<u64> = data.iter()
            .map(|&x| x * mul)
            .filter(|x| x % modulus == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect();
        prop_assert_eq!(got, want);
    }

    /// reduce_by_key equals a sequential HashMap fold for arbitrary pairs.
    #[test]
    fn prop_reduce_by_key_matches_oracle(
        pairs in proptest::collection::vec((0u8..16, 0u64..100), 0..150),
        parts in 1usize..8,
        reducers in 1usize..6,
    ) {
        let e = engine();
        let mut got = e.parallelize(pairs.clone(), parts)
            .reduce_by_key(reducers, |a, b| a + b)
            .collect();
        got.sort_unstable();
        let mut oracle: HashMap<u8, u64> = HashMap::new();
        for (k, v) in pairs {
            *oracle.entry(k).or_insert(0) += v;
        }
        let mut want: Vec<(u8, u64)> = oracle.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Caching never changes what an action returns.
    #[test]
    fn prop_cache_transparency(
        data in proptest::collection::vec(0u64..500, 1..100),
        parts in 1usize..6,
    ) {
        let e = engine();
        let plain = e.parallelize(data.clone(), parts).map(|x| x ^ 0xff);
        let cached = e.parallelize(data, parts).map(|x| x ^ 0xff).cache();
        prop_assert_eq!(plain.collect(), cached.collect());
        // Second read served from cache must also be identical.
        prop_assert_eq!(plain.collect(), cached.collect());
    }

    /// distinct equals a BTreeSet oracle.
    #[test]
    fn prop_distinct_matches_oracle(
        data in proptest::collection::vec(0u32..40, 0..120),
        parts in 1usize..6,
    ) {
        let e = engine();
        let mut got = e.parallelize(data.clone(), parts).distinct(3).collect();
        got.sort_unstable();
        let want: Vec<u32> = std::collections::BTreeSet::from_iter(data).into_iter().collect();
        prop_assert_eq!(got, want);
    }
}
