//! Behavioural tests for the dataflow engine: operator semantics vs
//! sequential oracles, caching, lineage recovery under injected faults,
//! shuffle correctness, virtual-time scaling.

use std::collections::HashMap;
use std::sync::Arc;

use sparkscore_cluster::{ClusterSpec, FaultPlan, NodeId};
use sparkscore_rdd::{Aggregator, Dataset, Engine};

fn engine(nodes: u32) -> Arc<Engine> {
    Engine::builder(ClusterSpec::test_small(nodes))
        .host_threads(4)
        .build()
}

fn numbers(e: &Arc<Engine>, n: u64, parts: usize) -> Dataset<u64> {
    e.parallelize((0..n).collect(), parts)
}

#[test]
fn map_filter_flat_map_match_iterators() {
    let e = engine(3);
    let ds = numbers(&e, 100, 7);
    let got = ds
        .map(|x| x + 1)
        .filter(|x| x % 3 == 0)
        .flat_map(|x| vec![x, x])
        .collect();
    let want: Vec<u64> = (0..100u64)
        .map(|x| x + 1)
        .filter(|x| x % 3 == 0)
        .flat_map(|x| vec![x, x])
        .collect();
    assert_eq!(got, want);
}

#[test]
fn collect_preserves_partition_order() {
    let e = engine(2);
    let ds = numbers(&e, 1000, 13);
    assert_eq!(ds.collect(), (0..1000u64).collect::<Vec<_>>());
}

#[test]
fn count_reduce_fold_first_take() {
    let e = engine(2);
    let ds = numbers(&e, 50, 4);
    assert_eq!(ds.count(), 50);
    assert_eq!(ds.reduce(|a, b| a + b), Some((0..50u64).sum()));
    assert_eq!(ds.fold(0, |a, b| a + b), (0..50u64).sum());
    assert_eq!(ds.first(), Some(0));
    assert_eq!(ds.take(3), vec![0, 1, 2]);
}

#[test]
fn empty_dataset_actions() {
    let e = engine(1);
    let ds: Dataset<u64> = e.parallelize(vec![], 3);
    assert_eq!(ds.count(), 0);
    assert_eq!(ds.reduce(|a, b| a + b), None);
    // Like Spark, fold applies `zero` once per partition plus once at the
    // driver, so it must be an identity of `f`.
    assert_eq!(ds.fold(0, |a, b| a + b), 0);
    assert_eq!(ds.fold(7, |a, b| a.max(b)), 7);
    assert!(ds.first().is_none());
    assert!(ds.collect().is_empty());
}

#[test]
fn more_partitions_than_records() {
    let e = engine(1);
    let ds = e.parallelize(vec![1u64, 2, 3], 10);
    assert_eq!(ds.num_partitions(), 10);
    assert_eq!(ds.collect(), vec![1, 2, 3]);
}

#[test]
fn map_partitions_sees_index_and_whole_partition() {
    let e = engine(2);
    let ds = numbers(&e, 20, 4);
    let sums = ds.map_partitions(|idx, part| vec![(idx, part.iter().sum::<u64>())]);
    let collected = sums.collect();
    assert_eq!(collected.len(), 4);
    let total: u64 = collected.iter().map(|&(_, s)| s).sum();
    assert_eq!(total, (0..20u64).sum());
    let idxs: Vec<usize> = collected.iter().map(|&(i, _)| i).collect();
    assert_eq!(idxs, vec![0, 1, 2, 3]);
}

#[test]
fn union_concatenates() {
    let e = engine(2);
    let a = e.parallelize(vec![1u64, 2], 2);
    let b = e.parallelize(vec![3u64, 4, 5], 2);
    assert_eq!(a.union(&b).collect(), vec![1, 2, 3, 4, 5]);
}

#[test]
fn key_by_and_values_round_trip() {
    let e = engine(1);
    let ds = numbers(&e, 10, 2);
    let keyed = ds.key_by(|x| x % 2);
    assert_eq!(keyed.values().collect(), (0..10u64).collect::<Vec<_>>());
    assert_eq!(keyed.keys().count(), 10);
}

#[test]
fn reduce_by_key_matches_sequential_fold() {
    let e = engine(3);
    let pairs: Vec<(u64, u64)> = (0..500u64).map(|x| (x % 7, x)).collect();
    let ds = e.parallelize(pairs.clone(), 9);
    let mut got = ds.reduce_by_key(4, |a, b| a + b).collect();
    got.sort_unstable();
    let mut want: HashMap<u64, u64> = HashMap::new();
    for (k, v) in pairs {
        *want.entry(k).or_insert(0) += v;
    }
    let mut want: Vec<(u64, u64)> = want.into_iter().collect();
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn group_by_key_collects_all_values() {
    let e = engine(2);
    let pairs: Vec<(u32, u32)> = vec![(1, 10), (2, 20), (1, 11), (2, 21), (1, 12)];
    let ds = e.parallelize(pairs, 3);
    let grouped = ds.group_by_key(2).collect_as_map();
    let mut ones = grouped[&1].clone();
    ones.sort_unstable();
    assert_eq!(ones, vec![10, 11, 12]);
    let mut twos = grouped[&2].clone();
    twos.sort_unstable();
    assert_eq!(twos, vec![20, 21]);
}

#[test]
fn join_matches_nested_loop_oracle() {
    let e = engine(2);
    let left: Vec<(u32, String)> = vec![
        (1, "a".into()),
        (2, "b".into()),
        (1, "c".into()),
        (4, "d".into()),
    ];
    let right: Vec<(u32, u64)> = vec![(1, 100), (2, 200), (3, 300), (1, 101)];
    let l = e.parallelize(left.clone(), 2);
    let r = e.parallelize(right.clone(), 3);
    let mut got = l.join(&r, 4).collect();
    got.sort_by(|a, b| (a.0, &a.1 .0, a.1 .1).cmp(&(b.0, &b.1 .0, b.1 .1)));
    let mut want = Vec::new();
    for (k, v) in &left {
        for (k2, w) in &right {
            if k == k2 {
                want.push((*k, (v.clone(), *w)));
            }
        }
    }
    want.sort_by(|a, b| (a.0, &a.1 .0, a.1 .1).cmp(&(b.0, &b.1 .0, b.1 .1)));
    assert_eq!(got, want);
}

#[test]
fn co_group_separates_sides() {
    let e = engine(2);
    let l = e.parallelize(vec![(1u32, 10u32), (2, 20)], 2);
    let r = e.parallelize(vec![(1u32, 5.0f64), (3, 7.0)], 2);
    let cg: HashMap<u32, (Vec<u32>, Vec<f64>)> = cg_map(&l.co_group(&r, 2));
    assert_eq!(cg[&1], (vec![10], vec![5.0]));
    assert_eq!(cg[&2], (vec![20], vec![]));
    assert_eq!(cg[&3], (vec![], vec![7.0]));
}

#[allow(clippy::type_complexity)]
fn cg_map<K, V, W>(ds: &Dataset<(K, (Vec<V>, Vec<W>))>) -> HashMap<K, (Vec<V>, Vec<W>)>
where
    K: sparkscore_rdd::Data + std::hash::Hash + Eq,
    V: sparkscore_rdd::Data,
    W: sparkscore_rdd::Data,
{
    ds.collect().into_iter().collect()
}

#[test]
fn partition_by_preserves_pairs_and_changes_partitioning() {
    let e = engine(2);
    let pairs: Vec<(u64, u64)> = (0..100).map(|x| (x % 10, x)).collect();
    let ds = e.parallelize(pairs.clone(), 5);
    let repart = ds.partition_by(3);
    assert_eq!(repart.num_partitions(), 3);
    let mut got = repart.collect();
    got.sort_unstable();
    let mut want = pairs;
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn combine_by_key_custom_aggregator() {
    let e = engine(2);
    let pairs: Vec<(u8, f64)> = vec![(1, 2.0), (1, 4.0), (2, 6.0)];
    let ds = e.parallelize(pairs, 2);
    // Track (sum, count) to compute means.
    let agg: Aggregator<f64, (f64, u64)> = Aggregator {
        create: Arc::new(|v| (v, 1)),
        merge_value: Arc::new(|c, v| {
            c.0 += v;
            c.1 += 1;
        }),
        merge_combiners: Arc::new(|c, o| {
            c.0 += o.0;
            c.1 += o.1;
        }),
    };
    let means: HashMap<u8, f64> = ds
        .combine_by_key(agg, 2)
        .map(|(k, (s, n))| (k, s / n as f64))
        .collect_as_map();
    assert_eq!(means[&1], 3.0);
    assert_eq!(means[&2], 6.0);
}

#[test]
fn shuffle_results_are_deterministic_across_runs() {
    let run = || {
        let e = engine(3);
        let pairs: Vec<(u64, u64)> = (0..200).map(|x| ((x * 31) % 17, x)).collect();
        e.parallelize(pairs, 8)
            .reduce_by_key(5, |a, b| a + b)
            .collect()
    };
    assert_eq!(run(), run(), "same inputs must give identical output order");
}

#[test]
fn cache_hits_skip_recomputation() {
    let e = engine(2);
    let ds = numbers(&e, 1000, 8).map(|x| x * 2).cache();
    assert!(ds.is_cached());
    let first = ds.collect();
    let m1 = e.metrics_snapshot();
    assert_eq!(m1.cache_misses, 8, "first pass misses every partition");
    let second = ds.collect();
    let m2 = e.metrics_snapshot();
    assert_eq!(second, first);
    assert_eq!(m2.cache_hits - m1.cache_hits, 8, "second pass all hits");
    assert_eq!(m2.cache_misses, m1.cache_misses);
}

#[test]
fn unpersist_forces_recomputation() {
    let e = engine(2);
    let ds = numbers(&e, 100, 4).cache();
    ds.collect();
    ds.unpersist();
    assert!(!ds.is_cached());
    let before = e.metrics_snapshot();
    ds.collect();
    let after = e.metrics_snapshot();
    assert_eq!(after.cache_hits, before.cache_hits);
}

#[test]
fn tiny_cache_budget_evicts_but_results_stay_correct() {
    let e = Engine::builder(ClusterSpec::test_small(2))
        .host_threads(2)
        .cache_budget_bytes(256) // holds ~1 partition of 8
        .build();
    let ds = e.parallelize((0..256u64).collect(), 8).cache();
    let a = ds.collect();
    let b = ds.collect();
    assert_eq!(a, b);
    let m = e.metrics_snapshot();
    assert!(
        m.cache_evictions > 0 || m.cache_misses > 8,
        "budget pressure must show up in metrics: {m:?}"
    );
}

#[test]
fn cached_dataset_short_circuits_upstream_shuffle() {
    let e = engine(2);
    let pairs: Vec<(u64, u64)> = (0..100).map(|x| (x % 5, x)).collect();
    let reduced = e
        .parallelize(pairs, 4)
        .reduce_by_key(3, |a, b| a + b)
        .cache();
    reduced.collect();
    let m1 = e.metrics_snapshot();
    reduced.map(|(_, v)| v).collect();
    let m2 = e.metrics_snapshot();
    assert_eq!(
        m2.shuffle_map_tasks, m1.shuffle_map_tasks,
        "fully-cached reduce output must prune the upstream shuffle stage"
    );
    assert_eq!(m2.shuffle_bytes_read, m1.shuffle_bytes_read);
}

#[test]
fn text_file_round_trip_through_pipeline() {
    let e = engine(3);
    let content: String = (0..100).map(|i| format!("{i}\n")).collect();
    e.dfs().write_text("/nums.txt", &content).unwrap();
    let ds = e.text_file("/nums.txt").unwrap();
    let sum: u64 = ds
        .map(|line| line.parse::<u64>().expect("numeric line"))
        .reduce(|a, b| a + b)
        .unwrap();
    assert_eq!(sum, (0..100u64).sum());
    assert!(e.metrics_snapshot().input_bytes > 0);
}

#[test]
fn text_file_missing_path_errors() {
    let e = engine(1);
    assert!(e.text_file("/missing").is_err());
}

#[test]
fn broadcast_value_visible_in_tasks() {
    let e = engine(2);
    let factor = e.broadcast(vec![10u64]);
    let ds = numbers(&e, 10, 2);
    let out = ds.map(move |x| x * factor.value()[0]).collect();
    assert_eq!(out, (0..10u64).map(|x| x * 10).collect::<Vec<_>>());
}

#[test]
fn node_death_mid_job_recovers_from_lineage() {
    let e = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(2)
        .dfs_replication(2)
        .build();
    let content: String = (0..200).map(|i| format!("{i}\n")).collect();
    e.dfs().write_text("/in.txt", &content).unwrap();
    let ds = e
        .text_file("/in.txt")
        .unwrap()
        .map(|l| l.parse::<u64>().unwrap())
        .cache();
    ds.collect(); // populate cache across nodes
    e.set_fault_plan(FaultPlan::kill_node_after(NodeId(0), 1));
    // Several more jobs; cached blocks on node 0 vanish and recompute.
    for _ in 0..3 {
        assert_eq!(ds.reduce(|a, b| a + b), Some((0..200u64).sum()));
    }
    assert!(!e.cluster().node(NodeId(0)).is_alive());
}

#[test]
fn lost_shuffle_output_is_rerun_inline() {
    let e = engine(2);
    let pairs: Vec<(u64, u64)> = (0..300).map(|x| (x % 11, 1)).collect();
    let counted = e.parallelize(pairs, 6).reduce_by_key(4, |a, b| a + b);
    let first = counted.collect_as_map();
    // Drop a shuffle output every task from now on; re-collect must recover.
    e.set_fault_plan(FaultPlan::none().with_shuffle_loss_every(2));
    let second = counted.collect_as_map();
    assert_eq!(first, second);
    assert!(
        e.metrics_snapshot().shuffle_map_reruns > 0,
        "recovery must actually have re-run map tasks"
    );
}

#[test]
fn periodic_cache_loss_still_correct() {
    let e = engine(2);
    e.set_fault_plan(FaultPlan::none().with_cached_block_loss_every(3));
    let ds = numbers(&e, 500, 10).map(|x| x + 7).cache();
    let want: Vec<u64> = (0..500u64).map(|x| x + 7).collect();
    for _ in 0..5 {
        assert_eq!(ds.collect(), want);
    }
    assert!(e.metrics_snapshot().recomputed_partitions > 0);
}

#[test]
fn virtual_time_decreases_with_more_nodes() {
    let run = |nodes: u32| {
        let e = Engine::builder(ClusterSpec::m3_2xlarge(nodes))
            .host_threads(4)
            .build();
        let ds = e.parallelize((0..512u64).collect::<Vec<u64>>(), 96);
        // Deterministic modeled work (cost hints) so slot counts — not
        // host measurement noise — dominate the makespan.
        let heavy = ds.map_with_cost(500_000.0, |x| x * 3 + 1);
        heavy.count();
        e.virtual_time_ns()
    };
    let t6 = run(6) as f64;
    let t12 = run(12) as f64;
    let t18 = run(18) as f64;
    // 12 and 18 nodes both fit the 96 tasks in one wave, so they tie up to
    // host measurement jitter; allow 1%.
    assert!(
        t12 <= t6 * 1.01,
        "12 nodes ({t12}) must not be slower than 6 ({t6})"
    );
    assert!(
        t18 <= t12 * 1.01,
        "18 nodes ({t18}) must not be slower than 12 ({t12})"
    );
    // 6 nodes (48 slots) need two task waves for 96 tasks: a real gap.
    assert!(
        t18 < t6 * 0.8,
        "18 nodes ({t18}) must clearly beat 6 ({t6})"
    );
}

#[test]
fn cached_second_pass_is_virtually_faster() {
    let e = engine(2);
    let ds = numbers(&e, 20_000, 8)
        .map(|x| x.wrapping_mul(2654435761).rotate_left(13))
        .cache();
    ds.count();
    let t_first = e.virtual_time_ns();
    ds.count();
    let t_second = e.virtual_time_ns() - t_first;
    assert!(
        t_second < t_first,
        "cached pass ({t_second} ns) must beat cold pass ({t_first} ns)"
    );
}

#[test]
fn metrics_job_and_stage_counts() {
    let e = engine(1);
    let pairs: Vec<(u8, u8)> = vec![(1, 1), (2, 2)];
    let ds = e.parallelize(pairs, 2).reduce_by_key(2, |a, b| a + b);
    ds.collect();
    let m = e.metrics_snapshot();
    assert_eq!(m.jobs, 1);
    assert_eq!(m.stages, 2, "one shuffle map stage + one result stage");
    ds.collect();
    assert_eq!(e.metrics_snapshot().jobs, 2);
}

#[test]
fn lineage_string_mentions_operators() {
    let e = engine(1);
    let ds = numbers(&e, 10, 2).map(|x| x).filter(|_| true);
    let lineage = ds.lineage();
    assert!(lineage.contains("filter"));
    assert!(lineage.contains("map"));
    assert!(lineage.contains("parallelize"));
}

#[test]
fn dropping_datasets_releases_engine_state() {
    let e = engine(1);
    {
        let pairs: Vec<(u8, u8)> = vec![(1, 1)];
        let ds = e
            .parallelize(pairs, 1)
            .reduce_by_key(1, |a, b| a + b)
            .cache();
        ds.collect();
        assert!(e.metrics_snapshot().shuffle_bytes_written > 0);
    }
    // All datasets dropped: meta registry and shuffle registrations empty.
    assert!(e.meta_registry_len() == 0, "op metadata must be GC'd");
    assert_eq!(e.shuffle_registrations(), 0, "shuffle stages must be GC'd");
}

#[test]
fn many_iterations_do_not_leak_shuffle_state() {
    let e = engine(1);
    let base = e.parallelize((0..100u64).collect::<Vec<_>>(), 4).cache();
    base.count();
    for _ in 0..50 {
        let keyed = base.map(|x| (x % 5, x)).reduce_by_key(2, |a, b| a + b);
        keyed.count();
    }
    assert!(
        e.shuffle_registrations() <= 1,
        "per-iteration shuffles must be cleaned up as datasets drop"
    );
}
