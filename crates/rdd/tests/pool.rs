//! Behavior of the persistent executor pool through the public engine
//! API: thread reuse across thousands of tiny stages, clean shutdown on
//! engine drop, panic propagation, and the event-stream invariants under
//! per-stage batched emission.

use std::sync::Arc;

use sparkscore_cluster::ClusterSpec;
use sparkscore_rdd::{Engine, EngineEvent, EventListener, MemoryEventListener, PoolDiagnostics};

fn engine_with_threads(threads: usize) -> Arc<Engine> {
    Engine::builder(ClusterSpec::test_small(3))
        .host_threads(threads)
        .build()
}

#[test]
fn ten_thousand_tiny_stages_reuse_one_thread_set() {
    let engine = engine_with_threads(4);
    let diag = engine.pool_diagnostics();
    let data = engine
        .parallelize((0..64u64).collect::<Vec<_>>(), 1)
        .cache();
    assert_eq!(data.count(), 64); // materialize the cache
    for i in 0..10_000u64 {
        // Result order/content must hold on every iteration.
        let total: u64 = data.reduce(|a, b| a + b).expect("non-empty");
        assert_eq!(total, 64 * 63 / 2, "iteration {i}");
    }
    // The pool spawns its workers once at build; ten thousand stages must
    // not create a single extra thread (the seed spawned per stage).
    assert_eq!(
        diag.threads_spawned(),
        engine.host_threads() - 1,
        "workers are spawned exactly once, at engine build"
    );
    assert_eq!(diag.threads_alive(), engine.host_threads() - 1);
}

#[test]
fn multi_task_stages_return_results_in_partition_order() {
    let engine = engine_with_threads(4);
    for _ in 0..200 {
        let out = engine
            .parallelize((0..100u64).collect::<Vec<_>>(), 25)
            .map(|x| x * 3)
            .collect();
        assert_eq!(out, (0..100u64).map(|x| x * 3).collect::<Vec<_>>());
    }
}

#[test]
fn engine_drop_joins_all_pool_workers() {
    let diag: PoolDiagnostics = {
        let engine = engine_with_threads(6);
        let diag = engine.pool_diagnostics();
        assert_eq!(engine.parallelize(vec![1u32; 10], 5).count(), 10);
        assert_eq!(diag.threads_alive(), 5);
        engine.pool_diagnostics()
    };
    assert_eq!(
        diag.threads_alive(),
        0,
        "engine drop must join every pool worker"
    );
    assert_eq!(diag.threads_spawned(), 5);
}

#[test]
fn task_panic_propagates_and_pool_survives() {
    let engine = engine_with_threads(4);
    let diag = engine.pool_diagnostics();
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine
            .parallelize((0..16u64).collect::<Vec<_>>(), 8)
            .map(|x| {
                assert!(x != 11, "injected task failure");
                x
            })
            .collect();
    }));
    assert!(boom.is_err(), "task panic must propagate to the driver");
    // The pool must survive a panicking stage: same workers, still usable.
    assert_eq!(diag.threads_alive(), 3);
    assert_eq!(
        engine
            .parallelize((0..32u64).collect::<Vec<_>>(), 8)
            .count(),
        32
    );
    assert_eq!(diag.threads_spawned(), 3, "no respawn after a panic");
}

#[test]
fn batched_emission_keeps_stage_event_invariants() {
    let mem = Arc::new(MemoryEventListener::new());
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .listener(Arc::clone(&mem) as Arc<dyn EventListener>)
        .build();
    let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i % 10, i)).collect();
    let summed = engine.parallelize(pairs, 4).reduce_by_key(4, |a, b| a + b);
    assert_eq!(summed.collect().len(), 10);

    let events = mem.snapshot();
    // Per stage: every TaskEnd strictly between Submitted and Completed,
    // one per task, and counts match num_tasks.
    let mut open: Option<(u64, usize, usize)> = None; // (stage, num_tasks, ends)
    let mut stages_seen = 0;
    for e in &events {
        match e {
            EngineEvent::StageSubmitted {
                stage, num_tasks, ..
            } => {
                assert!(open.is_none(), "stages must not interleave");
                open = Some((*stage, *num_tasks, 0));
            }
            EngineEvent::TaskEnd { stage, .. } => {
                let s = open.as_mut().expect("TaskEnd outside a stage");
                assert_eq!(s.0, *stage);
                s.2 += 1;
            }
            EngineEvent::StageCompleted { stage, .. } => {
                let (open_stage, num_tasks, ends) =
                    open.take().expect("StageCompleted without StageSubmitted");
                assert_eq!(open_stage, *stage);
                assert_eq!(ends, num_tasks);
                stages_seen += 1;
            }
            _ => {}
        }
    }
    assert!(open.is_none(), "every stage closed");
    assert_eq!(stages_seen, 2, "shuffle map stage + result stage");
}
