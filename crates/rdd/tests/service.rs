//! Service-level harness for the multi-tenant [`JobService`]:
//! deterministic replay of seeded submission schedules, property tests
//! of the pure [`AdmissionQueue`] under arbitrary interleavings, and a
//! seeded stress test racing cache admit/evict against concurrent
//! service jobs with a ledger cross-check at quiesce.

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkscore_cluster::ClusterSpec;
use sparkscore_rdd::{
    AdmissionQueue, Engine, JobService, JobState, MemCategory, Registry, RejectReason,
    ShutdownMode, TenantConfig,
};

fn engine() -> Arc<Engine> {
    Engine::builder(ClusterSpec::test_small(2))
        .host_threads(2)
        .build()
}

fn quota(weight: u64) -> TenantConfig {
    TenantConfig {
        max_queued: 256,
        max_running: 1,
        weight,
    }
}

/// Run one seeded submission schedule on a paused single-worker service
/// and return `(completion order, tenant of each completed job)` — the
/// deterministic replay record.
fn run_schedule(seed: u64) -> (Vec<u64>, Vec<String>) {
    let service = JobService::builder(engine())
        .workers(1)
        .queue_capacity(256)
        .start_paused()
        .tenant("alpha", quota(3))
        .tenant("beta", quota(2))
        .tenant("gamma", quota(1))
        .build();
    let tenants = ["alpha", "beta", "gamma"];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tenant_of = std::collections::BTreeMap::new();
    for _ in 0..60 {
        let tenant = tenants[rng.gen_range(0..tenants.len())];
        let n = rng.gen_range(10u64..200);
        let job = service
            .submit(tenant, move |e| {
                let total: u64 = e
                    .parallelize((0..n).collect::<Vec<_>>(), 2)
                    .map(|x| x + 1)
                    .reduce(|a, b| a + b)
                    .unwrap_or(0);
                (total == n * (n + 1) / 2)
                    .then_some(())
                    .ok_or_else(|| "bad sum".to_string())
            })
            .expect("within quota");
        tenant_of.insert(job, tenant.to_string());
    }
    service.resume();
    service.drain();
    let order = service.completion_order();
    let tenant_order = order.iter().map(|j| tenant_of[j].clone()).collect();
    service.shutdown(ShutdownMode::Drain);
    (order, tenant_order)
}

#[test]
fn seeded_schedules_replay_deterministically() {
    let (order_a, tenants_a) = run_schedule(7);
    let (order_b, tenants_b) = run_schedule(7);
    assert_eq!(order_a, order_b, "same seed, same completion order");
    assert_eq!(tenants_a, tenants_b);
    let (order_c, _) = run_schedule(8);
    assert_ne!(order_a, order_c, "different schedule, different order");
}

#[test]
fn completion_interleaving_is_weight_proportional() {
    let (_, tenant_order) = run_schedule(7);
    // While every tenant still has work outstanding, completions stay
    // interleaved — no long per-tenant runs. (Once a tenant's jobs are
    // exhausted the scheduler legitimately drains the rest back to back,
    // so only the all-backlogged prefix is checked.)
    let mut remaining = std::collections::BTreeMap::new();
    for t in &tenant_order {
        *remaining.entry(t.as_str()).or_insert(0usize) += 1;
    }
    let mut longest_run = 0;
    let mut run = 0;
    let mut prev: Option<&str> = None;
    for t in &tenant_order {
        if remaining.values().any(|&n| n == 0) {
            break;
        }
        *remaining.get_mut(t.as_str()).unwrap() -= 1;
        if prev == Some(t.as_str()) {
            run += 1;
        } else {
            run = 1;
        }
        longest_run = longest_run.max(run);
        prev = Some(t);
    }
    assert!(
        longest_run <= 4,
        "stride scheduling must interleave backlogged tenants; saw a run of {longest_run}: {tenant_order:?}"
    );
}

#[test]
fn drain_shutdown_finishes_queued_jobs_abort_cancels_them() {
    for (mode, queued_end) in [
        (ShutdownMode::Drain, JobState::Completed),
        (ShutdownMode::Abort, JobState::Cancelled),
    ] {
        let service = JobService::builder(engine())
            .workers(1)
            .start_paused()
            .tenant("a", quota(1))
            .build();
        let jobs: Vec<u64> = (0..8)
            .map(|_| service.submit("a", |_| Ok(())).unwrap())
            .collect();
        service.shutdown(mode);
        for &job in &jobs {
            assert_eq!(service.job_state(job), Some(queued_end), "{mode:?}");
        }
        let status = service.queue_status();
        assert_eq!(status.queued, 0);
        assert_eq!(status.running, 0);
        assert!(status.shutting_down);
        assert_eq!(
            service.submit("a", |_| Ok(())),
            Err(RejectReason::ShuttingDown)
        );
    }
}

#[test]
fn failing_and_panicking_jobs_are_terminal_and_service_survives() {
    let service = JobService::builder(engine())
        .workers(2)
        .tenant("a", quota(1))
        .build();
    let fails = service.submit("a", |_| Err("deliberate".into())).unwrap();
    let panics = service.submit("a", |_| panic!("boom in payload")).unwrap();
    let ok = service.submit("a", |_| Ok(())).unwrap();
    assert_eq!(service.wait(fails), Some(JobState::Failed));
    assert_eq!(service.wait(panics), Some(JobState::Failed));
    assert_eq!(service.wait(ok), Some(JobState::Completed));
    assert_eq!(service.job_error(fails).as_deref(), Some("deliberate"));
    let perr = service.job_error(panics);
    assert!(
        perr.as_deref().is_some_and(|e| e.contains("boom")),
        "panic error was {perr:?}"
    );
    let stats = service.queue_status().stats;
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 2);
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn registry_exports_service_flow_counters() {
    let registry = Arc::new(Registry::new());
    let service = JobService::builder(engine())
        .workers(1)
        .queue_capacity(2)
        .start_paused()
        .tenant("a", quota(1))
        .registry(Arc::clone(&registry))
        .build();
    let j0 = service.submit("a", |_| Ok(())).unwrap();
    let j1 = service.submit("a", |_| Ok(())).unwrap();
    assert!(service.submit("a", |_| Ok(())).is_err(), "queue full");
    assert!(service.cancel(j1));
    service.resume();
    assert_eq!(service.wait(j0), Some(JobState::Completed));
    let text = registry.render_prometheus();
    assert!(
        text.contains("sparkscore_service_submitted_total 2"),
        "{text}"
    );
    assert!(
        text.contains("sparkscore_service_rejected_total 1"),
        "{text}"
    );
    assert!(
        text.contains("sparkscore_service_completed_total 1"),
        "{text}"
    );
    assert!(
        text.contains("sparkscore_service_cancelled_total 1"),
        "{text}"
    );
    assert!(text.contains("sparkscore_service_queue_depth 0"), "{text}");
    assert!(text.contains("sparkscore_service_running_jobs 0"), "{text}");
    assert!(text.contains("sparkscore_service_tenants 1"), "{text}");
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn zero_deadline_times_out_deterministically_while_paused() {
    // Deterministic protocol: with dispatch paused, a zero deadline has
    // already passed at submission, so the worker must expire the job —
    // typed terminal state, no execution — while an undeadlined job from
    // the same batch still runs to completion after resume.
    let registry = Arc::new(Registry::new());
    let service = JobService::builder(engine())
        .workers(1)
        .start_paused()
        .tenant("a", quota(1))
        .registry(Arc::clone(&registry))
        .build();
    let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ran_flag = Arc::clone(&ran);
    let doomed = service
        .submit_with_deadline("a", std::time::Duration::ZERO, move |_| {
            ran_flag.store(true, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        })
        .unwrap();
    let survivor = service.submit("a", |_| Ok(())).unwrap();
    assert_eq!(service.wait(doomed), Some(JobState::TimedOut));
    assert!(
        !ran.load(std::sync::atomic::Ordering::SeqCst),
        "a timed-out payload must never run"
    );
    assert_eq!(
        service.job_error(doomed).as_deref(),
        Some("queue deadline exceeded")
    );
    service.resume();
    assert_eq!(service.wait(survivor), Some(JobState::Completed));
    let stats = service.queue_status().stats;
    assert_eq!(stats.cancelled, 1, "timeout uses cancel bookkeeping");
    assert_eq!(stats.completed, 1);
    let text = registry.render_prometheus();
    assert!(
        text.contains("sparkscore_service_timed_out_total 1"),
        "{text}"
    );
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn generous_deadline_does_not_time_out() {
    let service = JobService::builder(engine())
        .workers(1)
        .tenant("a", quota(1))
        .build();
    let job = service
        .submit_with_deadline("a", std::time::Duration::from_secs(300), |_| Ok(()))
        .unwrap();
    assert_eq!(service.wait(job), Some(JobState::Completed));
    assert_eq!(service.queue_status().stats.cancelled, 0);
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn deadline_expires_while_blocked_behind_a_running_job() {
    // max_running 1: a long job holds the tenant's running quota while a
    // short-deadline job waits in the queue, never pickable. The idle
    // worker must wake itself at the deadline (no external submit/resume
    // nudge) and expire the queued job.
    let service = JobService::builder(engine())
        .workers(2)
        .tenant("a", quota(1))
        .build();
    let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let gate_job = Arc::clone(&gate);
    let blocker = service
        .submit("a", move |_| {
            let (lock, cv) = &*gate_job;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            Ok(())
        })
        .unwrap();
    // Wait until the blocker is actually running so the deadline job is
    // genuinely queued behind it.
    while service.job_state(blocker) != Some(JobState::Running) {
        std::thread::yield_now();
    }
    let doomed = service
        .submit_with_deadline("a", std::time::Duration::from_millis(20), |_| Ok(()))
        .unwrap();
    assert_eq!(service.wait(doomed), Some(JobState::TimedOut));
    assert_eq!(service.job_state(blocker), Some(JobState::Running));
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    assert_eq!(service.wait(blocker), Some(JobState::Completed));
    service.shutdown(ShutdownMode::Drain);
}

/// Seeded stress: three tenants race jobs that cache, re-read, and
/// unpersist datasets against a deliberately tiny cache budget (constant
/// admit/evict pressure), on three workers at once. Half the datasets
/// are parked in a shared registry so their handles — and therefore
/// their cached blocks (lineage GC unpersists on last-handle drop) —
/// outlive the job, which is what actually builds eviction pressure.
/// At quiesce the memory ledger's mirror must equal the cache's own
/// byte accounting — the PR 7 invariant extended to the multi-job
/// service path.
#[test]
fn cache_ledger_invariants_hold_under_concurrent_service_jobs() {
    let engine = Engine::builder(ClusterSpec::test_small(3))
        .host_threads(4)
        .cache_budget_bytes(48 * 1024)
        .build();
    let busy = TenantConfig {
        max_queued: 64,
        max_running: 2,
        weight: 1,
    };
    let service = JobService::builder(Arc::clone(&engine))
        .workers(3)
        .queue_capacity(256)
        .tenant("t0", busy)
        .tenant("t1", busy)
        .tenant("t2", busy)
        .build();
    let held: Arc<std::sync::Mutex<Vec<sparkscore_rdd::Dataset<u64>>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut rng = StdRng::seed_from_u64(2024);
    let mut jobs = Vec::new();
    for i in 0..48 {
        let tenant = format!("t{}", i % 3);
        let len = rng.gen_range(200u64..3000);
        let parts = rng.gen_range(2usize..6);
        let unpersist = i % 2 == 0;
        let held = Arc::clone(&held);
        jobs.push(
            service
                .submit(&tenant, move |e| {
                    let ds = e
                        .parallelize((0..len).collect::<Vec<_>>(), parts)
                        .map(|x| x.wrapping_mul(3))
                        .cache();
                    let count = ds.count();
                    if count != len as usize {
                        return Err(format!("count {count} != {len}"));
                    }
                    // Second pass hits the cache or recomputes evicted
                    // partitions — both legal under pressure.
                    let _ = ds.reduce(|a, b| a ^ b);
                    if unpersist {
                        ds.unpersist();
                    } else {
                        held.lock().unwrap().push(ds);
                    }
                    Ok(())
                })
                .unwrap(),
        );
    }
    for job in jobs {
        assert_eq!(service.wait(job), Some(JobState::Completed));
    }
    service.shutdown(ShutdownMode::Drain);
    let ledger = engine.memory_ledger();
    assert_eq!(
        ledger.used(MemCategory::BlockCache),
        engine.cache_used_bytes(),
        "ledger drifted from cache accounting at quiesce"
    );
    assert!(
        engine.cache_used_bytes() <= 48 * 1024,
        "cache exceeded its budget"
    );
    assert!(
        engine.cache_used_bytes() > 0,
        "held datasets should keep blocks resident"
    );
    assert!(ledger.peak(MemCategory::BlockCache) >= ledger.used(MemCategory::BlockCache));
    let m = engine.metrics_snapshot();
    assert!(
        m.cache_evictions > 0,
        "stress must actually exercise eviction pressure: {m:?}"
    );
    // Dropping the held handles releases the remaining blocks through
    // lineage GC; the ledger must follow the cache down to zero.
    held.lock().unwrap().clear();
    assert_eq!(engine.cache_used_bytes(), 0);
    assert_eq!(ledger.used(MemCategory::BlockCache), 0);
}

// ---------------------------------------------------------------------------
// Property tests: the pure admission queue under arbitrary interleavings
// ---------------------------------------------------------------------------

const PROP_TENANTS: [&str; 3] = ["a", "b", "c"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary submit/pick/finish/cancel interleavings preserve the
    /// accounting invariant, FIFO order within every tenant, and the
    /// per-tenant running quota.
    #[test]
    fn prop_interleavings_conserve_accounting(
        ops in proptest::collection::vec((0u8..4, 0usize..3, 0usize..4), 1..120),
        capacity in 1usize..12,
        max_queued in 1usize..6,
        max_running in 1usize..3,
    ) {
        let cfg = TenantConfig { max_queued, max_running, weight: 1 };
        let mut q = AdmissionQueue::new(capacity);
        for t in PROP_TENANTS {
            q.register_tenant(t, cfg);
        }
        // Mirror model: expected FIFO queue and running count per tenant.
        let mut model_queue: Vec<VecDeque<u64>> = vec![VecDeque::new(); 3];
        let mut model_running = [0usize; 3];
        for (kind, tenant_idx, pick_idx) in ops {
            let tenant = PROP_TENANTS[tenant_idx];
            match kind {
                0 => {
                    let total_queued: usize = model_queue.iter().map(VecDeque::len).sum();
                    match q.submit(tenant) {
                        Ok(job) => {
                            prop_assert!(total_queued < capacity);
                            prop_assert!(model_queue[tenant_idx].len() < max_queued);
                            model_queue[tenant_idx].push_back(job);
                        }
                        Err(RejectReason::QueueFull { .. }) => {
                            prop_assert_eq!(total_queued, capacity);
                        }
                        Err(RejectReason::TenantQueueFull { .. }) => {
                            prop_assert_eq!(model_queue[tenant_idx].len(), max_queued);
                        }
                        Err(reason) => prop_assert!(false, "unexpected reject {:?}", reason),
                    }
                }
                1 => {
                    let eligible = (0..3).any(|i| {
                        !model_queue[i].is_empty() && model_running[i] < max_running
                    });
                    match q.pick() {
                        Some((name, job)) => {
                            prop_assert!(eligible, "picked with no eligible tenant");
                            let i = PROP_TENANTS.iter().position(|&t| t == name).unwrap();
                            // FIFO within the picked tenant.
                            prop_assert_eq!(model_queue[i].pop_front(), Some(job));
                            prop_assert!(model_running[i] < max_running);
                            model_running[i] += 1;
                        }
                        None => prop_assert!(!eligible, "eligible tenant starved by pick"),
                    }
                }
                2 => {
                    // Finish a running job of some tenant, if any.
                    if model_running[tenant_idx] > 0 {
                        q.finish(tenant, pick_idx % 2 == 0);
                        model_running[tenant_idx] -= 1;
                    }
                }
                _ => {
                    // Cancel an arbitrary queued job of the tenant.
                    if let Some(&job) = model_queue[tenant_idx]
                        .get(pick_idx.min(model_queue[tenant_idx].len().saturating_sub(1)))
                    {
                        prop_assert!(q.cancel(tenant, job));
                        model_queue[tenant_idx].retain(|&j| j != job);
                    }
                    // Cancelling something never queued must be a no-op.
                    prop_assert!(!q.cancel(tenant, u64::MAX));
                }
            }
            prop_assert!(q.conserved(), "conservation broken after op {:?}", kind);
            for (i, t) in PROP_TENANTS.iter().enumerate() {
                prop_assert_eq!(q.tenant_queued(t), model_queue[i].len());
                prop_assert_eq!(q.tenant_running(t), model_running[i]);
            }
        }
    }

    /// With every tenant backlogged, no tenant waits longer than the
    /// stride bound between dispatches: picking never starves anyone,
    /// for arbitrary weights.
    #[test]
    fn prop_backlogged_tenants_are_never_starved(
        weights in proptest::collection::vec(1u64..6, 3..6),
        jobs_each in 4usize..20,
    ) {
        let mut q = AdmissionQueue::new(weights.len() * jobs_each);
        let names: Vec<String> = (0..weights.len()).map(|i| format!("t{i}")).collect();
        for (name, &w) in names.iter().zip(&weights) {
            q.register_tenant(name, TenantConfig {
                max_queued: jobs_each,
                max_running: usize::MAX,
                weight: w,
            });
        }
        for _ in 0..jobs_each {
            for name in &names {
                q.submit(name).unwrap();
            }
        }
        // Between two picks of tenant t (while t stays backlogged), each
        // other tenant o can be picked at most ceil(w_o/w_t) + 1 times.
        let bound = |t: usize| -> usize {
            (0..weights.len())
                .filter(|&o| o != t)
                .map(|o| (weights[o].div_ceil(weights[t])) as usize + 1)
                .sum::<usize>() + 1
        };
        let mut since_pick = vec![0usize; weights.len()];
        while let Some((name, _)) = q.pick() {
            let picked = names.iter().position(|n| *n == name).unwrap();
            q.finish(&name, false);
            for (i, gap) in since_pick.iter_mut().enumerate() {
                if i == picked {
                    *gap = 0;
                } else if q.tenant_queued(&names[i]) > 0 {
                    *gap += 1;
                    prop_assert!(
                        *gap <= bound(i),
                        "tenant {} starved: gap {} > bound {} (weights {:?})",
                        i, *gap, bound(i), weights
                    );
                }
            }
        }
        prop_assert!(q.conserved());
        prop_assert_eq!(q.queued_total(), 0);
    }
}
