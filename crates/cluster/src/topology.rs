//! Cluster topology: nodes, liveness, and cluster construction.
//!
//! A [`Cluster`] is a fixed set of [`Node`]s built from a [`ClusterSpec`]
//! (count × instance type, mirroring an EMR cluster request). Nodes can be
//! killed at runtime — the dataflow engine then loses the cached blocks and
//! shuffle outputs that lived there and must recover them from lineage,
//! which is the fault-tolerance property the paper inherits from Spark.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::instance::InstanceType;

/// Identifier of a node within one cluster (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// One machine in the simulated cluster.
#[derive(Debug)]
pub struct Node {
    pub id: NodeId,
    pub instance: InstanceType,
    alive: AtomicBool,
}

impl Node {
    #[inline]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }
}

/// Shape of a cluster: how many nodes of which instance type.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    pub nodes: u32,
    pub instance: InstanceType,
}

impl ClusterSpec {
    /// The paper's cluster shape: `nodes` × m3.2xlarge.
    pub fn m3_2xlarge(nodes: u32) -> Self {
        ClusterSpec {
            nodes,
            instance: crate::instance::M3_2XLARGE,
        }
    }

    /// Small cluster of the test instance profile.
    pub fn test_small(nodes: u32) -> Self {
        ClusterSpec {
            nodes,
            instance: crate::instance::TEST_SMALL,
        }
    }

    /// Total vCPUs across the cluster.
    pub fn total_vcpus(&self) -> u32 {
        self.nodes * self.instance.vcpus
    }

    /// Total memory in bytes across the cluster.
    pub fn total_memory_bytes(&self) -> u64 {
        self.nodes as u64 * self.instance.memory_bytes()
    }
}

/// A provisioned cluster. Cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct Cluster {
    spec: ClusterSpec,
    nodes: Vec<Node>,
    /// Bumped after every liveness change; versions [`Cluster::alive_snapshot`].
    liveness_epoch: AtomicU64,
    /// Cached `(epoch, alive set)` so hot placement paths don't rebuild the
    /// alive-node `Vec` on every call.
    alive_cache: Mutex<(u64, Arc<Vec<NodeId>>)>,
}

impl Cluster {
    /// Provision a cluster. Panics on a zero-node spec — an EMR request for
    /// zero instances is a configuration bug, not a runtime condition.
    pub fn provision(spec: ClusterSpec) -> Self {
        assert!(spec.nodes > 0, "cluster must have at least one node");
        let nodes = (0..spec.nodes)
            .map(|i| Node {
                id: NodeId(i),
                instance: spec.instance.clone(),
                alive: AtomicBool::new(true),
            })
            .collect();
        Cluster {
            spec,
            nodes,
            liveness_epoch: AtomicU64::new(0),
            // Sentinel epoch so the first snapshot call populates the cache.
            alive_cache: Mutex::new((u64::MAX, Arc::new(Vec::new()))),
        }
    }

    #[inline]
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// IDs of all currently-alive nodes.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_alive())
            .map(|n| n.id)
            .collect()
    }

    /// Cached shared snapshot of the alive-node set. Hot placement paths
    /// call this once per block/bucket; rebuilding a `Vec` each time (as
    /// [`Cluster::alive_nodes`] does) was measurable allocator churn. The
    /// cache is invalidated by [`Cluster::kill_node`] /
    /// [`Cluster::revive_node`] bumping the liveness epoch *after* the flag
    /// write, so a cached snapshot is always at least as new as its epoch.
    pub fn alive_snapshot(&self) -> Arc<Vec<NodeId>> {
        let epoch = self.liveness_epoch.load(Ordering::Acquire);
        let mut cache = self.alive_cache.lock();
        if cache.0 != epoch {
            *cache = (epoch, Arc::new(self.alive_nodes()));
        }
        Arc::clone(&cache.1)
    }

    pub fn num_alive(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_alive()).count()
    }

    /// Mark a node dead. Returns `true` if it was alive. Idempotent.
    pub fn kill_node(&self, id: NodeId) -> bool {
        let was_alive = self.nodes[id.index()].alive.swap(false, Ordering::AcqRel);
        if was_alive {
            self.liveness_epoch.fetch_add(1, Ordering::AcqRel);
        }
        was_alive
    }

    /// Bring a node back (models replacement hardware re-joining).
    pub fn revive_node(&self, id: NodeId) {
        self.nodes[id.index()].alive.store(true, Ordering::Release);
        self.liveness_epoch.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TEST_SMALL;

    fn cluster(n: u32) -> Cluster {
        Cluster::provision(ClusterSpec::test_small(n))
    }

    #[test]
    fn provision_creates_dense_ids() {
        let c = cluster(4);
        assert_eq!(c.num_nodes(), 4);
        for (i, n) in c.nodes().enumerate() {
            assert_eq!(n.id, NodeId(i as u32));
            assert!(n.is_alive());
            assert_eq!(n.instance, TEST_SMALL);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = cluster(0);
    }

    #[test]
    fn kill_and_revive() {
        let c = cluster(3);
        assert!(c.kill_node(NodeId(1)));
        assert!(!c.kill_node(NodeId(1)), "second kill is a no-op");
        assert_eq!(c.num_alive(), 2);
        assert_eq!(c.alive_nodes(), vec![NodeId(0), NodeId(2)]);
        c.revive_node(NodeId(1));
        assert_eq!(c.num_alive(), 3);
    }

    #[test]
    fn alive_snapshot_caches_and_invalidates() {
        let c = cluster(3);
        let s1 = c.alive_snapshot();
        assert_eq!(*s1, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let s2 = c.alive_snapshot();
        assert!(Arc::ptr_eq(&s1, &s2), "unchanged liveness reuses snapshot");
        c.kill_node(NodeId(1));
        let s3 = c.alive_snapshot();
        assert_eq!(*s3, vec![NodeId(0), NodeId(2)]);
        c.revive_node(NodeId(1));
        assert_eq!(*c.alive_snapshot(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn spec_totals() {
        let spec = ClusterSpec::m3_2xlarge(6);
        assert_eq!(spec.total_vcpus(), 48);
        assert_eq!(spec.total_memory_bytes(), 6 * 30 * 1024 * 1024 * 1024);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node-7");
    }
}
