//! YARN-like resource manager.
//!
//! Spark-on-YARN jobs request a number of *containers* (executors), each
//! with a memory grant and a core count (`--num-executors`,
//! `--executor-memory`, `--executor-cores`). YARN packs containers onto
//! nodes subject to node capacities. The paper's auto-tuning experiment
//! (Tables VII/VIII, Fig 7) sweeps exactly these three flags on a fixed
//! 36-node cluster; [`ResourceManager::allocate`] performs the same packing
//! arithmetic and yields the [`ExecutorLayout`] the task scheduler runs on.

use std::fmt;
use std::sync::Arc;

use crate::topology::{Cluster, NodeId};

/// A Spark-on-YARN style container/executor request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerRequest {
    /// Number of containers (executors) requested.
    pub containers: u32,
    /// Memory per container, MiB.
    pub memory_mib: u64,
    /// Cores per container.
    pub cores: u32,
}

impl ContainerRequest {
    pub fn new(containers: u32, memory_mib: u64, cores: u32) -> Self {
        ContainerRequest {
            containers,
            memory_mib,
            cores,
        }
    }

    /// Table VIII, row 1: 42 containers × 10 GiB × 6 cores.
    pub fn paper_42() -> Self {
        Self::new(42, 10 * 1024, 6)
    }

    /// Table VIII, row 2: 84 containers × 5 GiB (half) × 3 cores.
    pub fn paper_84() -> Self {
        Self::new(84, 5 * 1024, 3)
    }

    /// Table VIII, row 3: 126 containers × 8/3 GiB × 2 cores.
    pub fn paper_126() -> Self {
        Self::new(126, 10 * 1024 / 3, 2)
    }

    /// Total task slots the request would provide if fully granted.
    pub fn total_slots(&self) -> u64 {
        self.containers as u64 * self.cores as u64
    }
}

/// One granted executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executor {
    /// Dense executor index within the layout.
    pub id: u32,
    /// Node hosting the executor.
    pub node: NodeId,
    /// Concurrent task slots.
    pub cores: u32,
    /// Memory grant in bytes (storage + execution memory).
    pub memory_bytes: u64,
}

/// The set of executors a job runs on, plus derived totals.
#[derive(Debug, Clone)]
pub struct ExecutorLayout {
    executors: Vec<Executor>,
}

impl ExecutorLayout {
    pub fn executors(&self) -> &[Executor] {
        &self.executors
    }

    pub fn num_executors(&self) -> usize {
        self.executors.len()
    }

    /// Total concurrent task slots.
    pub fn total_slots(&self) -> usize {
        self.executors.iter().map(|e| e.cores as usize).sum()
    }

    /// Total granted memory in bytes.
    pub fn total_memory_bytes(&self) -> u64 {
        self.executors.iter().map(|e| e.memory_bytes).sum()
    }

    /// Executors restricted to nodes that are still alive.
    pub fn alive(&self, cluster: &Cluster) -> ExecutorLayout {
        ExecutorLayout {
            executors: self
                .executors
                .iter()
                .filter(|e| cluster.node(e.node).is_alive())
                .cloned()
                .collect(),
        }
    }

    /// Nodes that host at least one executor, deduplicated, in node order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.executors.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// Why an allocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// A single container is larger than any node (cores or memory).
    ContainerTooLarge {
        memory_mib: u64,
        cores: u32,
        node_memory_mib: u64,
        node_cores: u32,
    },
    /// Aggregate demand exceeds aggregate cluster capacity.
    ClusterExhausted { granted: u32, requested: u32 },
    /// Request for zero containers or zero cores.
    EmptyRequest,
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::ContainerTooLarge {
                memory_mib,
                cores,
                node_memory_mib,
                node_cores,
            } => write!(
                f,
                "container ({memory_mib} MiB, {cores} cores) exceeds node capacity \
                 ({node_memory_mib} MiB, {node_cores} cores)"
            ),
            ResourceError::ClusterExhausted { granted, requested } => write!(
                f,
                "cluster exhausted: granted {granted} of {requested} containers"
            ),
            ResourceError::EmptyRequest => write!(f, "request for zero containers or cores"),
        }
    }
}

impl std::error::Error for ResourceError {}

/// Packs container requests onto cluster nodes (first-fit round-robin, the
/// effective behaviour of YARN's default capacity scheduler for uniform
/// containers on a homogeneous cluster).
#[derive(Debug)]
pub struct ResourceManager {
    cluster: Arc<Cluster>,
    /// Fraction of node memory YARN hands out to containers (the rest is
    /// reserved for the OS/daemons). EMR defaults leave roughly 75–90%;
    /// we use 90%.
    usable_memory_fraction: f64,
    /// Whether cores are a hard packing constraint. YARN's default
    /// `DefaultResourceCalculator` packs by memory only — which is how the
    /// paper fits 42 containers × 6 cores onto 36 × 8-vCPU nodes
    /// (Table VIII). Enable to model `DominantResourceCalculator`.
    enforce_cores: bool,
}

impl ResourceManager {
    pub fn new(cluster: Arc<Cluster>) -> Self {
        ResourceManager {
            cluster,
            usable_memory_fraction: 0.9,
            enforce_cores: false,
        }
    }

    pub fn with_usable_memory_fraction(mut self, frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0, 1]");
        self.usable_memory_fraction = frac;
        self
    }

    /// Treat cores as a hard constraint (YARN `DominantResourceCalculator`).
    pub fn with_core_enforcement(mut self) -> Self {
        self.enforce_cores = true;
        self
    }

    fn node_usable_memory(&self) -> u64 {
        let per_node = self.cluster.spec().instance.memory_bytes() as f64;
        (per_node * self.usable_memory_fraction) as u64
    }

    /// Allocate `req`, spreading containers round-robin over alive nodes.
    pub fn allocate(&self, req: ContainerRequest) -> Result<ExecutorLayout, ResourceError> {
        if req.containers == 0 || req.cores == 0 {
            return Err(ResourceError::EmptyRequest);
        }
        let inst = &self.cluster.spec().instance;
        let node_mem = self.node_usable_memory();
        let req_mem = req.memory_mib * 1024 * 1024;
        if req_mem > node_mem || (self.enforce_cores && req.cores > inst.vcpus) {
            return Err(ResourceError::ContainerTooLarge {
                memory_mib: req.memory_mib,
                cores: req.cores,
                node_memory_mib: node_mem / (1024 * 1024),
                node_cores: inst.vcpus,
            });
        }

        let alive = self.cluster.alive_nodes();
        let mut free_mem: Vec<u64> = vec![node_mem; alive.len()];
        let mut free_cores: Vec<u32> = vec![inst.vcpus; alive.len()];
        let enforce_cores = self.enforce_cores;
        let mut executors = Vec::with_capacity(req.containers as usize);
        let mut cursor = 0usize;
        let mut granted = 0u32;

        'outer: while granted < req.containers {
            // One full round-robin sweep; if nothing fits anywhere, stop.
            let mut placed = false;
            for _ in 0..alive.len() {
                let i = cursor % alive.len();
                cursor += 1;
                if free_mem[i] >= req_mem && (!enforce_cores || free_cores[i] >= req.cores) {
                    free_mem[i] -= req_mem;
                    free_cores[i] = free_cores[i].saturating_sub(req.cores);
                    executors.push(Executor {
                        id: granted,
                        node: alive[i],
                        cores: req.cores,
                        memory_bytes: req_mem,
                    });
                    granted += 1;
                    placed = true;
                    if granted == req.containers {
                        break 'outer;
                    }
                }
            }
            if !placed {
                return Err(ResourceError::ClusterExhausted {
                    granted,
                    requested: req.containers,
                });
            }
        }
        Ok(ExecutorLayout { executors })
    }

    /// Convenience: one executor per alive node using every core and all
    /// usable memory — the layout the non-auto-tuning experiments use.
    pub fn one_executor_per_node(&self) -> ExecutorLayout {
        let inst = &self.cluster.spec().instance;
        let mem = self.node_usable_memory();
        let executors = self
            .cluster
            .alive_nodes()
            .into_iter()
            .enumerate()
            .map(|(i, node)| Executor {
                id: i as u32,
                node,
                cores: inst.vcpus,
                memory_bytes: mem,
            })
            .collect();
        ExecutorLayout { executors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterSpec;

    fn rm(nodes: u32) -> ResourceManager {
        ResourceManager::new(Arc::new(Cluster::provision(ClusterSpec::m3_2xlarge(nodes))))
    }

    #[test]
    fn one_executor_per_node_uses_all_cores() {
        let rm = rm(6);
        let layout = rm.one_executor_per_node();
        assert_eq!(layout.num_executors(), 6);
        assert_eq!(layout.total_slots(), 48);
        assert_eq!(layout.nodes().len(), 6);
    }

    #[test]
    fn paper_container_configs_fit_36_nodes() {
        // Tables VII/VIII: 36 m3.2xlarge nodes; 42, 84, 126 containers.
        let rm = rm(36);
        for (req, slots) in [
            (ContainerRequest::paper_42(), 252),
            (ContainerRequest::paper_84(), 252),
            (ContainerRequest::paper_126(), 252),
        ] {
            let layout = rm.allocate(req).expect("paper config must fit");
            assert_eq!(layout.num_executors(), req.containers as usize);
            assert_eq!(layout.total_slots(), slots, "req {req:?}");
        }
    }

    #[test]
    fn round_robin_spreads_over_nodes() {
        let rm = rm(4);
        let layout = rm.allocate(ContainerRequest::new(4, 1024, 2)).unwrap();
        let nodes = layout.nodes();
        assert_eq!(nodes.len(), 4, "4 small containers land on 4 nodes");
    }

    #[test]
    fn oversized_container_rejected_by_memory() {
        let rm = rm(2);
        let err = rm
            .allocate(ContainerRequest::new(1, 64 * 1024, 4))
            .unwrap_err();
        assert!(matches!(err, ResourceError::ContainerTooLarge { .. }));
    }

    #[test]
    fn cores_ignored_by_default_like_yarn_default_calculator() {
        // 16 cores > 8 vcpus, but the default calculator packs by memory.
        let rm = rm(2);
        assert!(rm.allocate(ContainerRequest::new(1, 1024, 16)).is_ok());
    }

    #[test]
    fn oversized_container_rejected_by_cores_when_enforced() {
        let rm = ResourceManager::new(Arc::new(Cluster::provision(ClusterSpec::m3_2xlarge(2))))
            .with_core_enforcement();
        let err = rm.allocate(ContainerRequest::new(1, 1024, 16)).unwrap_err();
        assert!(matches!(err, ResourceError::ContainerTooLarge { .. }));
    }

    #[test]
    fn exhaustion_reports_partial_grant() {
        let rm = ResourceManager::new(Arc::new(Cluster::provision(ClusterSpec::m3_2xlarge(1))))
            .with_core_enforcement();
        // 8 vcpus per node -> at most 2 containers of 4 cores.
        let err = rm.allocate(ContainerRequest::new(3, 1024, 4)).unwrap_err();
        assert_eq!(
            err,
            ResourceError::ClusterExhausted {
                granted: 2,
                requested: 3
            }
        );
    }

    #[test]
    fn memory_exhaustion_without_core_enforcement() {
        // 27 GiB usable per node; 3 × 10 GiB doesn't fit on one node.
        let rm = rm(1);
        let err = rm
            .allocate(ContainerRequest::new(3, 10 * 1024, 1))
            .unwrap_err();
        assert_eq!(
            err,
            ResourceError::ClusterExhausted {
                granted: 2,
                requested: 3
            }
        );
    }

    #[test]
    fn empty_request_rejected() {
        let rm = rm(1);
        assert_eq!(
            rm.allocate(ContainerRequest::new(0, 1024, 1)).unwrap_err(),
            ResourceError::EmptyRequest
        );
        assert_eq!(
            rm.allocate(ContainerRequest::new(1, 1024, 0)).unwrap_err(),
            ResourceError::EmptyRequest
        );
    }

    #[test]
    fn dead_nodes_excluded_from_allocation() {
        let cluster = Arc::new(Cluster::provision(ClusterSpec::m3_2xlarge(3)));
        cluster.kill_node(NodeId(1));
        let rm = ResourceManager::new(Arc::clone(&cluster));
        let layout = rm.one_executor_per_node();
        assert_eq!(layout.num_executors(), 2);
        assert!(!layout.nodes().contains(&NodeId(1)));
    }

    #[test]
    fn alive_filters_executors_after_kill() {
        let cluster = Arc::new(Cluster::provision(ClusterSpec::m3_2xlarge(3)));
        let rm = ResourceManager::new(Arc::clone(&cluster));
        let layout = rm.one_executor_per_node();
        cluster.kill_node(NodeId(0));
        let alive = layout.alive(&cluster);
        assert_eq!(alive.num_executors(), 2);
    }

    #[test]
    fn error_display_is_informative() {
        let msg = ResourceError::ClusterExhausted {
            granted: 1,
            requested: 5,
        }
        .to_string();
        assert!(msg.contains("granted 1 of 5"));
    }
}
