//! Instance-type profiles.
//!
//! The paper benchmarks on Amazon EC2 `m3.2xlarge` instances (Table I:
//! Intel Xeon E5-2670 v2, 8 vCPU, 30 GiB memory, 2×80 GB SSD). An
//! [`InstanceType`] captures the capacities the simulator cares about;
//! bandwidth figures are nominal values for that hardware generation and
//! only influence virtual time, never computed statistics.

use serde::{Deserialize, Serialize};

/// Hardware profile of one cluster node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// EC2-style name, e.g. `"m3.2xlarge"`.
    pub name: &'static str,
    /// Number of virtual CPUs (task slots before executor packing).
    pub vcpus: u32,
    /// Main memory in MiB.
    pub memory_mib: u64,
    /// Local instance storage in GB (paper: 2×80 SSD).
    pub storage_gb: u64,
    /// Sequential local-disk bandwidth in bytes/second.
    pub disk_bandwidth: u64,
    /// Network bandwidth in bytes/second ("High" on m3.2xlarge ≈ 1 Gbit/s
    /// sustained per flow, ~125 MB/s).
    pub network_bandwidth: u64,
}

impl InstanceType {
    /// Memory in bytes.
    #[inline]
    pub fn memory_bytes(&self) -> u64 {
        self.memory_mib * 1024 * 1024
    }
}

/// The paper's instance type (Table I).
pub const M3_2XLARGE: InstanceType = InstanceType {
    name: "m3.2xlarge",
    vcpus: 8,
    memory_mib: 30 * 1024,
    storage_gb: 160,
    disk_bandwidth: 450 * 1024 * 1024,
    network_bandwidth: 125 * 1024 * 1024,
};

/// A small profile handy for unit tests (2 cores, 1 GiB).
pub const TEST_SMALL: InstanceType = InstanceType {
    name: "test.small",
    vcpus: 2,
    memory_mib: 1024,
    storage_gb: 10,
    disk_bandwidth: 200 * 1024 * 1024,
    network_bandwidth: 100 * 1024 * 1024,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m3_2xlarge_matches_table_i() {
        assert_eq!(M3_2XLARGE.name, "m3.2xlarge");
        assert_eq!(M3_2XLARGE.vcpus, 8);
        assert_eq!(M3_2XLARGE.memory_mib, 30 * 1024);
        assert_eq!(M3_2XLARGE.storage_gb, 2 * 80);
    }

    #[test]
    fn memory_bytes_converts_mib() {
        assert_eq!(TEST_SMALL.memory_bytes(), 1024 * 1024 * 1024);
    }

    #[test]
    fn clone_and_eq() {
        let cloned = M3_2XLARGE.clone();
        assert_eq!(cloned, M3_2XLARGE);
        assert_ne!(cloned, TEST_SMALL);
    }
}
