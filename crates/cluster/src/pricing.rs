//! Pay-as-you-go cost accounting.
//!
//! The paper's introduction motivates the cloud precisely by economics:
//! "the pay-as-you-go model of cloud computing … makes it well suited for
//! genomic analysis", and its experiments were funded by AWS research
//! credits (the permutation runs were cut short by "funding limitations").
//! This module prices a virtual-time run the way EMR would have billed it,
//! so the harnesses can report the dollar trade-off between the methods —
//! e.g. what those permutation runs would actually have cost.

use crate::instance::InstanceType;
use crate::topology::ClusterSpec;

/// On-demand hourly price (USD) for an instance type, 2016 us-east-1
/// rates contemporaneous with the paper.
pub fn on_demand_hourly_usd(instance: &InstanceType) -> f64 {
    match instance.name {
        "m3.2xlarge" => 0.532,
        // Anything else is priced by compute capacity relative to
        // m3.2xlarge (8 vCPU, 30 GiB).
        _ => 0.532 * (instance.vcpus as f64 / 8.0).max(instance.memory_mib as f64 / 30720.0),
    }
}

/// EMR adds a per-instance service surcharge on top of EC2.
const EMR_SURCHARGE_FRACTION: f64 = 0.25;

/// Billing granularity: EC2 billed whole instance-hours in 2016.
const BILLING_GRANULARITY_SECS: f64 = 3600.0;

/// Cost estimate for one cluster over one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Instance-hours billed (rounded up to the hour, per 2016 billing).
    pub instance_hours: f64,
    /// EC2 on-demand cost in USD.
    pub ec2_usd: f64,
    /// EMR surcharge in USD.
    pub emr_usd: f64,
}

impl CostEstimate {
    pub fn total_usd(&self) -> f64 {
        self.ec2_usd + self.emr_usd
    }
}

/// Price `runtime_secs` of wall-clock on `spec`'s cluster.
pub fn estimate_cost(spec: &ClusterSpec, runtime_secs: f64) -> CostEstimate {
    assert!(runtime_secs >= 0.0, "negative runtime");
    let hours_per_node = (runtime_secs / BILLING_GRANULARITY_SECS).ceil().max(1.0);
    let instance_hours = hours_per_node * f64::from(spec.nodes);
    let hourly = on_demand_hourly_usd(&spec.instance);
    let ec2_usd = instance_hours * hourly;
    CostEstimate {
        instance_hours,
        ec2_usd,
        emr_usd: ec2_usd * EMR_SURCHARGE_FRACTION,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_priced_at_2016_rate() {
        assert_eq!(on_demand_hourly_usd(&crate::instance::M3_2XLARGE), 0.532);
    }

    #[test]
    fn sub_hour_runs_bill_a_full_hour() {
        let spec = ClusterSpec::m3_2xlarge(6);
        let cost = estimate_cost(&spec, 600.0); // 10 minutes
        assert_eq!(cost.instance_hours, 6.0);
        assert!((cost.ec2_usd - 6.0 * 0.532).abs() < 1e-12);
        assert!((cost.total_usd() - 6.0 * 0.532 * 1.25).abs() < 1e-12);
    }

    #[test]
    fn multi_hour_runs_round_up_per_node() {
        let spec = ClusterSpec::m3_2xlarge(18);
        let cost = estimate_cost(&spec, 2.5 * 3600.0);
        assert_eq!(cost.instance_hours, 3.0 * 18.0);
    }

    #[test]
    fn cost_scales_with_nodes() {
        let small = estimate_cost(&ClusterSpec::m3_2xlarge(6), 3600.0);
        let large = estimate_cost(&ClusterSpec::m3_2xlarge(36), 3600.0);
        assert!((large.total_usd() / small.total_usd() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_instances_priced_by_capacity() {
        let price = on_demand_hourly_usd(&crate::instance::TEST_SMALL);
        assert!(price > 0.0 && price < 0.532);
    }
}
