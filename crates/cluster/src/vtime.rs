//! Virtual-time scheduling.
//!
//! The reproduction cannot rent 6–36 EC2 nodes, so cluster-scaling results
//! (paper Figs 6 and 7) come from a deterministic simulation: every task's
//! cost (from [`crate::cost::CostModel`]) is list-scheduled onto the virtual
//! slots of the configured [`crate::resource::ExecutorLayout`], with
//! locality-aware input-read costs, and the job's *virtual duration* is the
//! resulting makespan. A [`VirtualClock`] accumulates makespans across the
//! jobs of an analysis (e.g. one observed pass + B resampling iterations).
//!
//! List scheduling (greedy earliest-finish-time) is the same policy family
//! as Spark's FIFO task scheduler with delay scheduling collapsed into the
//! finish-time comparison: a slot on a node holding the task's input blocks
//! reads at disk bandwidth, any other slot pays the network transfer, so
//! local slots win whenever they are not badly backlogged.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cost::CostModel;
use crate::instance::InstanceType;
use crate::resource::ExecutorLayout;
use crate::topology::NodeId;

/// A unit of schedulable work, produced by the dataflow engine after the
/// task has really executed (costs are known, results are already computed).
#[derive(Debug, Clone)]
pub struct VirtualTask {
    /// Pure compute cost in virtual ns (work counters × cost model).
    pub compute_ns: u64,
    /// Bytes of input read from the DFS or a cached block.
    pub input_bytes: u64,
    /// Nodes holding a local replica of the input (empty → no preference,
    /// input is either tiny or already partitioned in executor memory).
    pub preferred_nodes: Vec<NodeId>,
    /// Bytes fetched from shuffle outputs (always charged at network rate
    /// except for the fraction residing on the chosen node, which we
    /// approximate as `1/num_nodes` local).
    pub shuffle_bytes: u64,
}

impl VirtualTask {
    pub fn compute_only(compute_ns: u64) -> Self {
        VirtualTask {
            compute_ns,
            input_bytes: 0,
            preferred_nodes: Vec::new(),
            shuffle_bytes: 0,
        }
    }
}

/// Where and when a task ran in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledTask {
    pub node: NodeId,
    pub executor: u32,
    pub start_ns: u64,
    pub finish_ns: u64,
    /// Whether the input was read from a local replica.
    pub input_local: bool,
}

/// Outcome of scheduling one batch (stage) of tasks.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    pub tasks: Vec<ScheduledTask>,
    /// Stage makespan in virtual ns (0 for an empty stage).
    pub makespan_ns: u64,
    /// How many tasks read their input locally.
    pub local_reads: usize,
}

/// Greedy earliest-finish-time list scheduler over an executor layout.
#[derive(Debug)]
pub struct VirtualScheduler {
    /// One entry per slot: (executor index, node, next-free virtual time).
    slots: Vec<(u32, NodeId, u64)>,
    disk_bw: u64,
    net_bw: u64,
    model: CostModel,
    num_nodes: usize,
}

impl VirtualScheduler {
    pub fn new(layout: &ExecutorLayout, instance: &InstanceType, model: CostModel) -> Self {
        let mut slots = Vec::with_capacity(layout.total_slots());
        for exec in layout.executors() {
            for _ in 0..exec.cores {
                slots.push((exec.id, exec.node, 0u64));
            }
        }
        assert!(!slots.is_empty(), "layout provides no task slots");
        let disk_bw = if model.disk_bandwidth_override > 0 {
            model.disk_bandwidth_override
        } else {
            instance.disk_bandwidth
        };
        let net_bw = if model.network_bandwidth_override > 0 {
            model.network_bandwidth_override
        } else {
            instance.network_bandwidth
        };
        let num_nodes = layout.nodes().len().max(1);
        VirtualScheduler {
            slots,
            disk_bw,
            net_bw,
            model,
            num_nodes,
        }
    }

    /// Number of concurrent task slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    fn task_duration(&self, task: &VirtualTask, node: NodeId) -> (u64, bool) {
        let local = task.preferred_nodes.is_empty() || task.preferred_nodes.contains(&node);
        let input_ns = if task.input_bytes == 0 {
            0
        } else if local {
            CostModel::transfer_ns(task.input_bytes, self.disk_bw)
        } else {
            self.model.remote_fetch_latency_ns
                + CostModel::transfer_ns(task.input_bytes, self.net_bw)
        };
        // Shuffle reads: approximately (n-1)/n of the bytes cross the
        // network on an n-node cluster.
        let shuffle_ns = if task.shuffle_bytes == 0 {
            0
        } else {
            let remote = task.shuffle_bytes * (self.num_nodes as u64 - 1) / self.num_nodes as u64;
            let local_bytes = task.shuffle_bytes - remote;
            CostModel::transfer_ns(remote, self.net_bw)
                + CostModel::transfer_ns(local_bytes, self.disk_bw)
        };
        (
            self.model.task_overhead_ns + task.compute_ns + input_ns + shuffle_ns,
            local && task.input_bytes > 0,
        )
    }

    /// Schedule a batch of tasks that may all run concurrently (one stage).
    /// Slot backlogs carry over from previous calls, so successive stages
    /// pipeline onto the same virtual slots.
    pub fn schedule(&mut self, tasks: &[VirtualTask]) -> ScheduleOutcome {
        let stage_start = self.slots.iter().map(|s| s.2).min().unwrap_or(0);
        let mut out = Vec::with_capacity(tasks.len());
        let mut local_reads = 0usize;
        for task in tasks {
            // Pick the slot that finishes this task earliest.
            let mut best: Option<(usize, u64, u64, bool)> = None;
            for (i, &(_exec, node, avail)) in self.slots.iter().enumerate() {
                let (dur, local) = self.task_duration(task, node);
                let finish = avail + dur;
                let better = match best {
                    None => true,
                    Some((_, _, best_finish, _)) => finish < best_finish,
                };
                if better {
                    best = Some((i, avail, finish, local));
                }
            }
            let (slot_idx, start, finish, local) = best.expect("scheduler has at least one slot");
            self.slots[slot_idx].2 = finish;
            if local {
                local_reads += 1;
            }
            out.push(ScheduledTask {
                node: self.slots[slot_idx].1,
                executor: self.slots[slot_idx].0,
                start_ns: start,
                finish_ns: finish,
                input_local: local,
            });
        }
        let end = out.iter().map(|t| t.finish_ns).max().unwrap_or(stage_start);
        ScheduleOutcome {
            makespan_ns: end.saturating_sub(stage_start),
            tasks: out,
            local_reads,
        }
    }

    /// Like [`Self::remove_node`], but refuses (returning `false`) instead
    /// of panicking when the node holds the only remaining slots — the
    /// engine keeps limping on the last node rather than aborting, matching
    /// a Spark driver that never schedules onto the lost executor again.
    pub fn remove_node_checked(&mut self, node: NodeId) -> bool {
        let remaining = self.slots.iter().filter(|&&(_, n, _)| n != node).count();
        if remaining == 0 {
            return false;
        }
        self.slots.retain(|&(_, n, _)| n != node);
        true
    }

    /// Remove the slots of a node that died mid-job. Pending backlogs on
    /// other slots are kept. Panics if this would leave zero slots.
    pub fn remove_node(&mut self, node: NodeId) {
        self.slots.retain(|&(_, n, _)| n != node);
        assert!(
            !self.slots.is_empty(),
            "removing {node} left the virtual scheduler with no slots"
        );
    }

    /// Current virtual time at which all slots are free (job end).
    pub fn horizon_ns(&self) -> u64 {
        self.slots.iter().map(|s| s.2).max().unwrap_or(0)
    }

    /// Synchronize every slot to the horizon. Called between *jobs*: a
    /// driver submits jobs sequentially, so a new job's tasks cannot start
    /// before the previous job's last task finished — without this, small
    /// jobs would hide inside the backlog of earlier wide stages and read
    /// as free.
    pub fn barrier(&mut self) {
        let horizon = self.horizon_ns();
        for slot in &mut self.slots {
            slot.2 = horizon;
        }
    }
}

/// Monotonic accumulator of virtual nanoseconds across jobs/stages.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ns: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn advance(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TEST_SMALL;
    use crate::resource::ResourceManager;
    use crate::topology::{Cluster, ClusterSpec};
    use std::sync::Arc;

    fn sched(nodes: u32) -> VirtualScheduler {
        let cluster = Arc::new(Cluster::provision(ClusterSpec::test_small(nodes)));
        let layout = ResourceManager::new(Arc::clone(&cluster)).one_executor_per_node();
        VirtualScheduler::new(&layout, &TEST_SMALL, CostModel::default())
    }

    fn flat_tasks(n: usize, compute_ns: u64) -> Vec<VirtualTask> {
        (0..n)
            .map(|_| VirtualTask::compute_only(compute_ns))
            .collect()
    }

    #[test]
    fn slots_match_layout() {
        assert_eq!(sched(3).num_slots(), 6); // 3 nodes × 2 cores
    }

    #[test]
    fn single_task_duration_includes_overhead() {
        let mut s = sched(1);
        let out = s.schedule(&flat_tasks(1, 1_000_000));
        assert_eq!(
            out.makespan_ns,
            1_000_000 + CostModel::default().task_overhead_ns
        );
    }

    #[test]
    fn perfect_parallelism_within_slots() {
        let mut s = sched(2); // 4 slots
        let out = s.schedule(&flat_tasks(4, 10_000_000));
        let one = 10_000_000 + CostModel::default().task_overhead_ns;
        assert_eq!(
            out.makespan_ns, one,
            "4 equal tasks on 4 slots take 1 task-time"
        );
    }

    #[test]
    fn oversubscription_serializes_waves() {
        let mut s = sched(1); // 2 slots
        let out = s.schedule(&flat_tasks(4, 10_000_000));
        let one = 10_000_000 + CostModel::default().task_overhead_ns;
        assert_eq!(out.makespan_ns, 2 * one, "4 tasks on 2 slots = 2 waves");
    }

    #[test]
    fn more_nodes_never_slower() {
        let tasks = flat_tasks(64, 5_000_000);
        let m6 = sched(6).schedule(&tasks).makespan_ns;
        let m12 = sched(12).schedule(&tasks).makespan_ns;
        let m18 = sched(18).schedule(&tasks).makespan_ns;
        assert!(m12 <= m6);
        assert!(m18 <= m12);
        assert!(m18 < m6, "18 nodes must beat 6 on 64 tasks");
    }

    #[test]
    fn locality_preferred_when_available() {
        let mut s = sched(2);
        let task = VirtualTask {
            compute_ns: 1_000_000,
            input_bytes: 100 * 1024 * 1024,
            preferred_nodes: vec![NodeId(1)],
            shuffle_bytes: 0,
        };
        let out = s.schedule(std::slice::from_ref(&task));
        assert_eq!(out.tasks[0].node, NodeId(1));
        assert!(out.tasks[0].input_local);
        assert_eq!(out.local_reads, 1);
    }

    #[test]
    fn remote_read_costs_more() {
        // One node only, input lives elsewhere: remote read at network bw.
        let mut local = sched(1);
        let mut remote = sched(1);
        let bytes = 200 * 1024 * 1024u64;
        let t_local = VirtualTask {
            compute_ns: 0,
            input_bytes: bytes,
            preferred_nodes: vec![NodeId(0)],
            shuffle_bytes: 0,
        };
        let t_remote = VirtualTask {
            preferred_nodes: vec![NodeId(99)], // not in this cluster
            ..t_local.clone()
        };
        let m_local = local.schedule(std::slice::from_ref(&t_local)).makespan_ns;
        let m_remote = remote.schedule(std::slice::from_ref(&t_remote)).makespan_ns;
        assert!(
            m_remote > m_local,
            "network read ({m_remote}) must cost more than disk read ({m_local})"
        );
    }

    #[test]
    fn backlog_carries_across_stages() {
        let mut s = sched(1);
        let first = s.schedule(&flat_tasks(2, 10_000_000));
        let second = s.schedule(&flat_tasks(2, 10_000_000));
        assert!(s.horizon_ns() >= first.makespan_ns + second.makespan_ns);
    }

    #[test]
    fn remove_node_drops_slots() {
        let mut s = sched(2);
        s.remove_node(NodeId(0));
        assert_eq!(s.num_slots(), 2);
        let out = s.schedule(&flat_tasks(2, 1_000_000));
        assert!(out.tasks.iter().all(|t| t.node == NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "no slots")]
    fn removing_last_node_panics() {
        let mut s = sched(1);
        s.remove_node(NodeId(0));
    }

    #[test]
    fn clock_accumulates() {
        let clock = VirtualClock::new();
        clock.advance(1_500_000_000);
        clock.advance(500_000_000);
        assert_eq!(clock.now_ns(), 2_000_000_000);
        assert!((clock.now_secs() - 2.0).abs() < 1e-12);
        clock.reset();
        assert_eq!(clock.now_ns(), 0);
    }

    #[test]
    fn barrier_prevents_backfill_into_prior_jobs() {
        let mut s = sched(1); // 2 slots
                              // A lopsided stage: one long task, one short → slot 2 idles.
        let long = VirtualTask::compute_only(100_000_000);
        let short = VirtualTask::compute_only(1_000_000);
        s.schedule(&[long, short]);
        let horizon = s.horizon_ns();
        // Without a barrier a tiny follow-up task would hide in the idle
        // slot and not move the horizon; with it, it must.
        s.barrier();
        s.schedule(&[VirtualTask::compute_only(1_000_000)]);
        assert!(
            s.horizon_ns() > horizon,
            "post-barrier work must extend the horizon"
        );
    }

    #[test]
    fn empty_stage_has_zero_makespan() {
        let mut s = sched(1);
        let out = s.schedule(&[]);
        assert_eq!(out.makespan_ns, 0);
        assert!(out.tasks.is_empty());
    }

    #[test]
    fn shuffle_bytes_cost_scales_with_cluster_remote_fraction() {
        // On 1 node shuffle is all-local (disk); on 4 nodes 3/4 crosses
        // the network which is slower.
        let task = VirtualTask {
            compute_ns: 0,
            input_bytes: 0,
            preferred_nodes: vec![],
            shuffle_bytes: 400 * 1024 * 1024,
        };
        let m1 = sched(1).schedule(std::slice::from_ref(&task)).makespan_ns;
        let m4 = sched(4).schedule(std::slice::from_ref(&task)).makespan_ns;
        assert!(m4 > m1);
    }
}
