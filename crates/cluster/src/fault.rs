//! Declarative fault plans.
//!
//! Spark's headline resilience property — and the one the paper leans on
//! ("harnesses the fault-tolerant features of Spark") — is that lost
//! partitions are recomputed from lineage rather than failing the job.
//! A [`FaultPlan`] describes faults to inject while a job runs; the dataflow
//! engine polls it at task boundaries and applies the resulting
//! [`FaultEvent`]s (killing a node, dropping cached blocks or shuffle
//! outputs). Tests then assert that results are unchanged and that the
//! engine's recompute counters moved.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::topology::NodeId;

/// A fault the engine must apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Kill this node: drop its cached blocks and shuffle outputs, remove
    /// its executors from scheduling.
    KillNode(NodeId),
    /// Drop one cached block (the engine picks the least-recently used).
    DropCachedBlock,
    /// Drop one map-output (shuffle) file.
    DropShuffleOutput,
}

/// Faults to inject, keyed on the global count of completed tasks.
///
/// All triggers are one-shot or periodic and deterministic, so a test can
/// predict exactly which task boundary fires them.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Kill `node` once `after_tasks` tasks have completed.
    kill_node: Option<(NodeId, u64)>,
    kill_fired: AtomicBool,
    /// Every `n` completed tasks, drop a cached block.
    drop_cached_every: Option<u64>,
    /// Every `n` completed tasks, drop a shuffle output.
    drop_shuffle_every: Option<u64>,
    tasks_seen: AtomicU64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kill `node` after `after_tasks` completed tasks.
    pub fn kill_node_after(node: NodeId, after_tasks: u64) -> Self {
        FaultPlan {
            kill_node: Some((node, after_tasks)),
            ..Self::default()
        }
    }

    /// Builder: drop one cached block every `n` completed tasks.
    pub fn with_cached_block_loss_every(mut self, n: u64) -> Self {
        assert!(n > 0, "period must be positive");
        self.drop_cached_every = Some(n);
        self
    }

    /// Builder: drop one shuffle output every `n` completed tasks.
    pub fn with_shuffle_loss_every(mut self, n: u64) -> Self {
        assert!(n > 0, "period must be positive");
        self.drop_shuffle_every = Some(n);
        self
    }

    /// Whether this plan can ever fire.
    pub fn is_active(&self) -> bool {
        self.kill_node.is_some()
            || self.drop_cached_every.is_some()
            || self.drop_shuffle_every.is_some()
    }

    /// Record one completed task; returns the faults that fire at this
    /// boundary. Thread-safe; each event fires on exactly one caller.
    pub fn on_task_complete(&self) -> Vec<FaultEvent> {
        if !self.is_active() {
            return Vec::new();
        }
        let count = self.tasks_seen.fetch_add(1, Ordering::AcqRel) + 1;
        let mut events = Vec::new();
        if let Some((node, after)) = self.kill_node {
            if count >= after && !self.kill_fired.swap(true, Ordering::AcqRel) {
                events.push(FaultEvent::KillNode(node));
            }
        }
        if let Some(n) = self.drop_cached_every {
            if count.is_multiple_of(n) {
                events.push(FaultEvent::DropCachedBlock);
            }
        }
        if let Some(n) = self.drop_shuffle_every {
            if count.is_multiple_of(n) {
                events.push(FaultEvent::DropShuffleOutput);
            }
        }
        events
    }

    /// Number of completed tasks observed so far.
    pub fn tasks_seen(&self) -> u64 {
        self.tasks_seen.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for _ in 0..100 {
            assert!(plan.on_task_complete().is_empty());
        }
        // Inactive plans skip counting entirely.
        assert_eq!(plan.tasks_seen(), 0);
    }

    #[test]
    fn node_kill_fires_exactly_once() {
        let plan = FaultPlan::kill_node_after(NodeId(2), 3);
        assert!(plan.on_task_complete().is_empty()); // 1
        assert!(plan.on_task_complete().is_empty()); // 2
        assert_eq!(
            plan.on_task_complete(),
            vec![FaultEvent::KillNode(NodeId(2))]
        ); // 3
        assert!(plan.on_task_complete().is_empty()); // 4: one-shot
    }

    #[test]
    fn periodic_cache_loss() {
        let plan = FaultPlan::none().with_cached_block_loss_every(2);
        let fired: usize = (0..10).map(|_| plan.on_task_complete().len()).sum();
        assert_eq!(fired, 5);
    }

    #[test]
    fn combined_events_on_same_boundary() {
        let plan = FaultPlan::kill_node_after(NodeId(0), 2)
            .with_cached_block_loss_every(2)
            .with_shuffle_loss_every(2);
        assert!(plan.on_task_complete().is_empty());
        let events = plan.on_task_complete();
        assert_eq!(events.len(), 3);
        assert!(events.contains(&FaultEvent::KillNode(NodeId(0))));
        assert!(events.contains(&FaultEvent::DropCachedBlock));
        assert!(events.contains(&FaultEvent::DropShuffleOutput));
    }

    #[test]
    fn concurrent_counting_fires_kill_once() {
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::kill_node_after(NodeId(1), 50));
        let mut handles = Vec::new();
        let total = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let plan = Arc::clone(&plan);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let kills = plan
                        .on_task_complete()
                        .iter()
                        .filter(|e| matches!(e, FaultEvent::KillNode(_)))
                        .count();
                    total.fetch_add(kills as u64, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 1);
        assert_eq!(plan.tasks_seen(), 400);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = FaultPlan::none().with_cached_block_loss_every(0);
    }
}
