//! Simulated compute cluster for the SparkScore reproduction.
//!
//! The original SparkScore system ran on Amazon EMR clusters of `m3.2xlarge`
//! EC2 instances managed by YARN. This crate models that substrate:
//!
//! * [`instance`] — instance-type profiles (vCPUs, memory, storage, network),
//!   including the paper's `m3.2xlarge` (Table I).
//! * [`topology`] — a cluster of nodes with liveness tracking, the unit the
//!   task scheduler, DFS placement, and fault injection operate on.
//! * [`resource`] — a YARN-like resource manager that packs container
//!   (executor) requests onto nodes and yields the executor/slot layout
//!   (`--num-executors/--executor-memory/--executor-cores` in the paper's
//!   auto-tuning experiment, Tables VII/VIII).
//! * [`cost`] — the calibrated cost model translating work done by a task
//!   (records processed, bytes read/shuffled) into virtual nanoseconds.
//! * [`vtime`] — a deterministic list scheduler that assigns task costs to
//!   the cluster's virtual slots and computes job makespans; this is what
//!   reproduces the paper's *cluster scaling* results on a single host.
//! * [`fault`] — declarative fault plans (node kills, block drops) consumed
//!   by the dataflow engine to exercise lineage recovery.
//! * [`pricing`] — pay-as-you-go cost estimates at the paper's 2016 EMR
//!   rates, so harnesses can report the dollar trade-off between methods.
//!
//! Real numeric work always runs on the host; virtual time is bookkeeping
//! layered on top, so injected faults or changed cluster shapes never alter
//! computed statistics — only the simulated clock.

pub mod cost;
pub mod fault;
pub mod instance;
pub mod pricing;
pub mod resource;
pub mod topology;
pub mod vtime;

pub use cost::CostModel;
pub use fault::{FaultEvent, FaultPlan};
pub use instance::{InstanceType, M3_2XLARGE};
pub use pricing::{estimate_cost, on_demand_hourly_usd, CostEstimate};
pub use resource::{ContainerRequest, ExecutorLayout, ResourceError, ResourceManager};
pub use topology::{Cluster, ClusterSpec, Node, NodeId};
pub use vtime::{ScheduledTask, VirtualClock, VirtualScheduler, VirtualTask};
