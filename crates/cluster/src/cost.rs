//! Cost model translating task work into virtual time.
//!
//! During real execution every task counts the work it performs — records
//! processed (weighted per operator), bytes read from the DFS (local or
//! remote), and bytes shuffled. The cost model converts those counters into
//! deterministic virtual nanoseconds, which the [`crate::vtime`] scheduler
//! then packs onto the configured cluster's slots. Keeping costs a pure
//! function of work counters (rather than measured host wall time) makes
//! virtual durations reproducible across machines and load conditions.
//!
//! Constants are calibrated to the paper's absolute numbers only loosely:
//! what the reproduction preserves is the *relative shape* of Figs 2–7
//! (cache reuse vs lineage re-execution, scaling with slots), which depends
//! on the ratios, not the absolute magnitudes.

use serde::{Deserialize, Serialize};

/// Conversion rates from work counters to virtual nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of one weighted record of operator work, in ns. The JVM-based
    /// Spark pipeline in the paper spends on the order of tens of ns per
    /// simple record operation once deserialization is amortized.
    pub ns_per_record_unit: f64,
    /// Multiplier applied to a task's *measured* host CPU time to obtain
    /// its baseline virtual compute cost — the residual JVM-vs-native
    /// factor for code paths without explicit cost hints. The dominant
    /// JVM costs (text tokenization, per-record pipeline overhead) are
    /// modeled by per-record cost hints on the operators instead, because
    /// their penalty relative to native Rust differs by orders of
    /// magnitude between parsing and arithmetic.
    pub cpu_slowdown: f64,
    /// Fixed per-task cost: task serialization, dispatch, and result
    /// handling. Spark's rule of thumb is O(ms) per task.
    pub task_overhead_ns: u64,
    /// Driver-side cost of submitting one stage (DAG bookkeeping).
    pub stage_overhead_ns: u64,
    /// Extra latency applied to each remote (non-local) byte read, expressed
    /// through bandwidth below; this flag-like knob keeps a minimum
    /// round-trip cost per remote fetch.
    pub remote_fetch_latency_ns: u64,
    /// Local disk read bandwidth, bytes/s (overrides instance profile when
    /// nonzero; zero means use the instance's own figure).
    pub disk_bandwidth_override: u64,
    /// Network bandwidth, bytes/s (same override convention).
    pub network_bandwidth_override: u64,
}

impl CostModel {
    /// Nanoseconds to read `bytes` at `bandwidth` bytes/s.
    #[inline]
    pub fn transfer_ns(bytes: u64, bandwidth: u64) -> u64 {
        if bytes == 0 || bandwidth == 0 {
            return 0;
        }
        ((bytes as u128 * 1_000_000_000u128) / bandwidth as u128) as u64
    }

    /// Compute cost of `record_units` weighted records.
    #[inline]
    pub fn compute_ns(&self, record_units: f64) -> u64 {
        (record_units * self.ns_per_record_unit) as u64
    }

    /// Virtual compute cost of a task that ran for `measured_ns` of host
    /// CPU time.
    #[inline]
    pub fn task_compute_ns(&self, measured_ns: u64) -> u64 {
        (measured_ns as f64 * self.cpu_slowdown) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_record_unit: 25.0,
            cpu_slowdown: 4.0,
            task_overhead_ns: 2_000_000,      // 2 ms per task
            stage_overhead_ns: 10_000_000,    // 10 ms per stage
            remote_fetch_latency_ns: 500_000, // 0.5 ms per remote fetch
            disk_bandwidth_override: 0,
            network_bandwidth_override: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let bw = 100 * 1024 * 1024; // 100 MiB/s
        let t1 = CostModel::transfer_ns(1024 * 1024, bw);
        let t2 = CostModel::transfer_ns(2 * 1024 * 1024, bw);
        assert_eq!(t2, 2 * t1);
        // 1 MiB at 100 MiB/s = 10 ms
        assert_eq!(t1, 10_000_000);
    }

    #[test]
    fn zero_bytes_or_bandwidth_is_free() {
        assert_eq!(CostModel::transfer_ns(0, 100), 0);
        assert_eq!(CostModel::transfer_ns(100, 0), 0);
    }

    #[test]
    fn compute_cost_uses_rate() {
        let m = CostModel {
            ns_per_record_unit: 10.0,
            ..CostModel::default()
        };
        assert_eq!(m.compute_ns(1000.0), 10_000);
        assert_eq!(m.compute_ns(0.0), 0);
    }

    #[test]
    fn measured_task_time_is_scaled_by_slowdown() {
        let m = CostModel {
            cpu_slowdown: 40.0,
            ..CostModel::default()
        };
        assert_eq!(m.task_compute_ns(1_000), 40_000);
        assert_eq!(m.task_compute_ns(0), 0);
    }

    #[test]
    fn huge_transfers_do_not_overflow() {
        // 1 PiB at 1 B/s must not overflow the intermediate product.
        let t = CostModel::transfer_ns(1 << 50, 1);
        assert!(t > 0);
    }
}
