//! Genotype quality control.
//!
//! Real GWAS pipelines (the paper's references [3], [10], [12]) filter
//! variants before inference: minor-allele frequency, completeness, and
//! Hardy–Weinberg equilibrium. These utilities operate on both the byte
//! dosage-vector representation ([`check_snp`]) and directly on 2-bit
//! packed columns via the popcount kernels ([`check_snp_packed`] — no
//! byte materialization), and feed the SKAT weight schemes (Beta(MAF)
//! weights need MAF estimates).

use crate::bitkern;
use crate::dist::chi2_sf;

/// A dosage outside {0, 1, 2} in byte genotype input. QC sits on the
/// untrusted-input boundary, so this is a checked error in every build —
/// a release binary that silently miscounted corrupt input would wave
/// bad variants through the filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDosage {
    /// Patient index of the offending value.
    pub index: usize,
    pub value: u8,
}

impl std::fmt::Display for InvalidDosage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid dosage {} at patient {} (expected 0, 1, or 2)",
            self.value, self.index
        )
    }
}

impl std::error::Error for InvalidDosage {}

/// Genotype counts for one SNP: carriers of 0, 1, and 2 minor alleles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenotypeCounts {
    pub homozygous_ref: usize,
    pub heterozygous: usize,
    pub homozygous_alt: usize,
}

impl GenotypeCounts {
    /// Count byte dosages; values above 2 are rejected as
    /// [`InvalidDosage`] (previously a debug-only concern that release
    /// builds scored silently).
    pub fn from_dosages(g: &[u8]) -> Result<Self, InvalidDosage> {
        let mut c = GenotypeCounts::default();
        for (index, &d) in g.iter().enumerate() {
            match d {
                0 => c.homozygous_ref += 1,
                1 => c.heterozygous += 1,
                2 => c.homozygous_alt += 1,
                value => return Err(InvalidDosage { index, value }),
            }
        }
        Ok(c)
    }

    /// Counts straight from a 2-bit packed column of `num_patients`
    /// calls via the popcount kernels — no byte materialization. Missing
    /// calls (code `0b11`) are excluded from the counts and returned
    /// separately; packed codes cannot be out of range, so unlike
    /// [`GenotypeCounts::from_dosages`] this is infallible.
    pub fn from_packed(packed: &[u8], num_patients: usize) -> (Self, usize) {
        let c = bitkern::count_codes(packed, num_patients);
        (
            GenotypeCounts {
                homozygous_ref: c.hom_ref,
                heterozygous: c.het,
                homozygous_alt: c.hom_alt,
            },
            c.missing,
        )
    }

    pub fn total(&self) -> usize {
        self.homozygous_ref + self.heterozygous + self.homozygous_alt
    }

    /// Allele frequency of the alternate allele.
    pub fn alt_allele_frequency(&self) -> f64 {
        let n = self.total();
        assert!(n > 0, "no genotypes");
        (self.heterozygous + 2 * self.homozygous_alt) as f64 / (2 * n) as f64
    }

    /// Minor-allele frequency: `min(p, 1 − p)` of the alternate allele.
    pub fn minor_allele_frequency(&self) -> f64 {
        let p = self.alt_allele_frequency();
        p.min(1.0 - p)
    }

    /// Pearson χ²₁ test of Hardy–Weinberg equilibrium. Returns the
    /// p-value; monomorphic SNPs return 1.0 (no departure measurable).
    pub fn hardy_weinberg_pvalue(&self) -> f64 {
        let n = self.total() as f64;
        assert!(n > 0.0, "no genotypes");
        let p = self.alt_allele_frequency();
        let q = 1.0 - p;
        if p == 0.0 || q == 0.0 {
            return 1.0;
        }
        let expected = [n * q * q, 2.0 * n * p * q, n * p * p];
        let observed = [
            self.homozygous_ref as f64,
            self.heterozygous as f64,
            self.homozygous_alt as f64,
        ];
        let chi2: f64 = observed
            .iter()
            .zip(&expected)
            .map(|(o, e)| (o - e) * (o - e) / e)
            .sum();
        // One degree of freedom: three cells, two constraints (total and
        // allele frequency estimated from the data).
        chi2_sf(chi2, 1.0)
    }
}

/// Why a SNP fails QC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QcFailure {
    /// MAF below the threshold.
    RareVariant { maf: f64 },
    /// Monomorphic: zero variance, score statistics degenerate.
    Monomorphic,
    /// Hardy–Weinberg departure beyond the p-value threshold (often a
    /// genotyping artifact).
    HardyWeinberg { pvalue: f64 },
    /// Byte input contained a dosage outside {0, 1, 2}.
    InvalidDosage(InvalidDosage),
}

/// QC thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcThresholds {
    /// Minimum minor-allele frequency (common GWAS default: 0.01–0.05).
    pub min_maf: f64,
    /// Minimum HWE p-value (common default: 1e-6).
    pub min_hwe_pvalue: f64,
}

impl Default for QcThresholds {
    fn default() -> Self {
        QcThresholds {
            min_maf: 0.01,
            min_hwe_pvalue: 1e-6,
        }
    }
}

/// Check one SNP's byte dosage vector against the thresholds.
pub fn check_snp(g: &[u8], thresholds: &QcThresholds) -> Result<GenotypeCounts, QcFailure> {
    let counts = GenotypeCounts::from_dosages(g).map_err(QcFailure::InvalidDosage)?;
    classify(counts, thresholds)
}

/// Check one SNP's 2-bit packed column against the thresholds — the
/// popcount QC path: counts, MAF, and HWE all come from the packed
/// words. Missing calls are excluded from the counts; a column with no
/// called genotype at all fails as [`QcFailure::Monomorphic`] (no
/// frequency is estimable).
pub fn check_snp_packed(
    packed: &[u8],
    num_patients: usize,
    thresholds: &QcThresholds,
) -> Result<GenotypeCounts, QcFailure> {
    let (counts, _missing) = GenotypeCounts::from_packed(packed, num_patients);
    classify(counts, thresholds)
}

fn classify(
    counts: GenotypeCounts,
    thresholds: &QcThresholds,
) -> Result<GenotypeCounts, QcFailure> {
    if counts.total() == 0 {
        return Err(QcFailure::Monomorphic);
    }
    let maf = counts.minor_allele_frequency();
    if maf == 0.0 {
        return Err(QcFailure::Monomorphic);
    }
    if maf < thresholds.min_maf {
        return Err(QcFailure::RareVariant { maf });
    }
    let hwe = counts.hardy_weinberg_pvalue();
    if hwe < thresholds.min_hwe_pvalue {
        return Err(QcFailure::HardyWeinberg { pvalue: hwe });
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::sample_genotype;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_and_frequencies() {
        // 4 ref-hom, 4 het, 2 alt-hom: alt freq = (4 + 4)/20 = 0.4.
        let g = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2];
        let c = GenotypeCounts::from_dosages(&g).unwrap();
        assert_eq!(c.total(), 10);
        assert!((c.alt_allele_frequency() - 0.4).abs() < 1e-12);
        assert!((c.minor_allele_frequency() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn maf_folds_major_allele() {
        let g = [2u8; 9]; // alt freq 1.0 → MAF 0.
        let c = GenotypeCounts::from_dosages(&g).unwrap();
        assert_eq!(c.minor_allele_frequency(), 0.0);
    }

    #[test]
    fn bad_dosage_is_a_checked_error_in_all_builds() {
        assert_eq!(
            GenotypeCounts::from_dosages(&[0, 3]),
            Err(InvalidDosage { index: 1, value: 3 })
        );
        assert_eq!(
            check_snp(&[0, 1, 200], &QcThresholds::default()),
            Err(QcFailure::InvalidDosage(InvalidDosage {
                index: 2,
                value: 200
            }))
        );
        let msg = InvalidDosage { index: 1, value: 3 }.to_string();
        assert!(msg.contains("invalid dosage 3"), "{msg}");
    }

    #[test]
    fn hwe_equilibrium_data_passes() {
        // Generate genotypes under exact HWE sampling: p-values should be
        // comfortably large for a big sample at ρ = 0.3.
        let mut rng = StdRng::seed_from_u64(4);
        let g: Vec<u8> = (0..20_000)
            .map(|_| sample_genotype(&mut rng, 0.3))
            .collect();
        let c = GenotypeCounts::from_dosages(&g).unwrap();
        assert!(
            c.hardy_weinberg_pvalue() > 0.001,
            "HWE data must not be rejected: p = {}",
            c.hardy_weinberg_pvalue()
        );
    }

    #[test]
    fn hwe_detects_heterozygote_deficit() {
        // Extreme inbreeding-like data: only homozygotes at p = 0.5.
        let counts = GenotypeCounts {
            homozygous_ref: 500,
            heterozygous: 0,
            homozygous_alt: 500,
        };
        assert!(counts.hardy_weinberg_pvalue() < 1e-10);
    }

    #[test]
    fn hwe_monomorphic_is_vacuous() {
        let c = GenotypeCounts::from_dosages(&[0u8; 50]).unwrap();
        assert_eq!(c.hardy_weinberg_pvalue(), 1.0);
    }

    #[test]
    fn check_snp_classifies_failures() {
        let thresholds = QcThresholds::default();
        assert!(matches!(
            check_snp(&[0u8; 100], &thresholds),
            Err(QcFailure::Monomorphic)
        ));
        // One het in 200 patients: MAF = 1/400 < 0.01.
        let mut rare = vec![0u8; 200];
        rare[0] = 1;
        assert!(matches!(
            check_snp(&rare, &thresholds),
            Err(QcFailure::RareVariant { .. })
        ));
        // Clean common variant passes.
        let mut rng = StdRng::seed_from_u64(9);
        let good: Vec<u8> = (0..500).map(|_| sample_genotype(&mut rng, 0.25)).collect();
        assert!(check_snp(&good, &thresholds).is_ok());
        // All-het data at p=0.5 violates HWE strongly.
        let het = vec![1u8; 1000];
        assert!(matches!(
            check_snp(&het, &thresholds),
            Err(QcFailure::HardyWeinberg { .. })
        ));
    }

    /// Pack a dosage vector 2-bit column-style (4 codes per byte).
    fn pack(dosages: &[u8]) -> Vec<u8> {
        let mut data = vec![0u8; dosages.len().div_ceil(4)];
        for (i, &d) in dosages.iter().enumerate() {
            data[i / 4] |= d << (2 * (i % 4));
        }
        data
    }

    #[test]
    fn packed_qc_of_all_missing_column_is_monomorphic_not_a_panic() {
        let n = 23;
        let packed = pack(&vec![3u8; n]);
        let (counts, missing) = GenotypeCounts::from_packed(&packed, n);
        assert_eq!(counts.total(), 0);
        assert_eq!(missing, n);
        assert_eq!(
            check_snp_packed(&packed, n, &QcThresholds::default()),
            Err(QcFailure::Monomorphic)
        );
    }

    proptest::proptest! {
        /// Packed-direct QC is identical to the byte path: same counts,
        /// bitwise-equal MAF and HWE p-value, same `check_snp` verdict —
        /// across random missingness and all tail lengths. Missing calls
        /// are dropped before the byte oracle runs (the byte path rejects
        /// them by design).
        #[test]
        fn prop_packed_qc_equals_byte_oracle(
            g in proptest::collection::vec(0u8..4, 0..300)
        ) {
            let packed = pack(&g);
            let called: Vec<u8> = g.iter().copied().filter(|&d| d < 3).collect();
            let byte = GenotypeCounts::from_dosages(&called).unwrap();
            let (direct, missing) = GenotypeCounts::from_packed(&packed, g.len());
            proptest::prop_assert_eq!(byte, direct);
            proptest::prop_assert_eq!(missing, g.len() - called.len());
            if direct.total() > 0 {
                proptest::prop_assert_eq!(
                    byte.minor_allele_frequency().to_bits(),
                    direct.minor_allele_frequency().to_bits()
                );
                proptest::prop_assert_eq!(
                    byte.hardy_weinberg_pvalue().to_bits(),
                    direct.hardy_weinberg_pvalue().to_bits()
                );
            }
            let thresholds = QcThresholds::default();
            proptest::prop_assert_eq!(
                check_snp(&called, &thresholds),
                check_snp_packed(&packed, g.len(), &thresholds)
            );
        }
    }

    #[test]
    fn hwe_pvalue_roughly_uniform_under_null() {
        // Type-I calibration: across many null SNPs, ~5% rejected at 0.05.
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 400;
        let rejected = (0..trials)
            .filter(|_| {
                let g: Vec<u8> = (0..400).map(|_| sample_genotype(&mut rng, 0.3)).collect();
                GenotypeCounts::from_dosages(&g)
                    .unwrap()
                    .hardy_weinberg_pvalue()
                    < 0.05
            })
            .count();
        let rate = rejected as f64 / trials as f64;
        assert!(
            (0.01..=0.10).contains(&rate),
            "HWE test must be calibrated: rejection rate {rate}"
        );
    }
}
