//! Genotype quality control.
//!
//! Real GWAS pipelines (the paper's references [3], [10], [12]) filter
//! variants before inference: minor-allele frequency, completeness, and
//! Hardy–Weinberg equilibrium. These utilities operate on the same
//! dosage-vector representation the rest of the stack uses and feed the
//! SKAT weight schemes (Beta(MAF) weights need MAF estimates).

use crate::dist::chi2_sf;

/// Genotype counts for one SNP: carriers of 0, 1, and 2 minor alleles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenotypeCounts {
    pub homozygous_ref: usize,
    pub heterozygous: usize,
    pub homozygous_alt: usize,
}

impl GenotypeCounts {
    /// Count dosages (values above 2 are a caller bug and panic).
    pub fn from_dosages(g: &[u8]) -> Self {
        let mut c = GenotypeCounts::default();
        for &d in g {
            match d {
                0 => c.homozygous_ref += 1,
                1 => c.heterozygous += 1,
                2 => c.homozygous_alt += 1,
                other => panic!("invalid dosage {other}"),
            }
        }
        c
    }

    pub fn total(&self) -> usize {
        self.homozygous_ref + self.heterozygous + self.homozygous_alt
    }

    /// Allele frequency of the alternate allele.
    pub fn alt_allele_frequency(&self) -> f64 {
        let n = self.total();
        assert!(n > 0, "no genotypes");
        (self.heterozygous + 2 * self.homozygous_alt) as f64 / (2 * n) as f64
    }

    /// Minor-allele frequency: `min(p, 1 − p)` of the alternate allele.
    pub fn minor_allele_frequency(&self) -> f64 {
        let p = self.alt_allele_frequency();
        p.min(1.0 - p)
    }

    /// Pearson χ²₁ test of Hardy–Weinberg equilibrium. Returns the
    /// p-value; monomorphic SNPs return 1.0 (no departure measurable).
    pub fn hardy_weinberg_pvalue(&self) -> f64 {
        let n = self.total() as f64;
        assert!(n > 0.0, "no genotypes");
        let p = self.alt_allele_frequency();
        let q = 1.0 - p;
        if p == 0.0 || q == 0.0 {
            return 1.0;
        }
        let expected = [n * q * q, 2.0 * n * p * q, n * p * p];
        let observed = [
            self.homozygous_ref as f64,
            self.heterozygous as f64,
            self.homozygous_alt as f64,
        ];
        let chi2: f64 = observed
            .iter()
            .zip(&expected)
            .map(|(o, e)| (o - e) * (o - e) / e)
            .sum();
        // One degree of freedom: three cells, two constraints (total and
        // allele frequency estimated from the data).
        chi2_sf(chi2, 1.0)
    }
}

/// Why a SNP fails QC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QcFailure {
    /// MAF below the threshold.
    RareVariant { maf: f64 },
    /// Monomorphic: zero variance, score statistics degenerate.
    Monomorphic,
    /// Hardy–Weinberg departure beyond the p-value threshold (often a
    /// genotyping artifact).
    HardyWeinberg { pvalue: f64 },
}

/// QC thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcThresholds {
    /// Minimum minor-allele frequency (common GWAS default: 0.01–0.05).
    pub min_maf: f64,
    /// Minimum HWE p-value (common default: 1e-6).
    pub min_hwe_pvalue: f64,
}

impl Default for QcThresholds {
    fn default() -> Self {
        QcThresholds {
            min_maf: 0.01,
            min_hwe_pvalue: 1e-6,
        }
    }
}

/// Check one SNP's dosage vector against the thresholds.
pub fn check_snp(g: &[u8], thresholds: &QcThresholds) -> Result<GenotypeCounts, QcFailure> {
    let counts = GenotypeCounts::from_dosages(g);
    let maf = counts.minor_allele_frequency();
    if maf == 0.0 {
        return Err(QcFailure::Monomorphic);
    }
    if maf < thresholds.min_maf {
        return Err(QcFailure::RareVariant { maf });
    }
    let hwe = counts.hardy_weinberg_pvalue();
    if hwe < thresholds.min_hwe_pvalue {
        return Err(QcFailure::HardyWeinberg { pvalue: hwe });
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::sample_genotype;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_and_frequencies() {
        // 4 ref-hom, 4 het, 2 alt-hom: alt freq = (4 + 4)/20 = 0.4.
        let g = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2];
        let c = GenotypeCounts::from_dosages(&g);
        assert_eq!(c.total(), 10);
        assert!((c.alt_allele_frequency() - 0.4).abs() < 1e-12);
        assert!((c.minor_allele_frequency() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn maf_folds_major_allele() {
        let g = [2u8; 9]; // alt freq 1.0 → MAF 0.
        let c = GenotypeCounts::from_dosages(&g);
        assert_eq!(c.minor_allele_frequency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid dosage")]
    fn bad_dosage_panics() {
        let _ = GenotypeCounts::from_dosages(&[0, 3]);
    }

    #[test]
    fn hwe_equilibrium_data_passes() {
        // Generate genotypes under exact HWE sampling: p-values should be
        // comfortably large for a big sample at ρ = 0.3.
        let mut rng = StdRng::seed_from_u64(4);
        let g: Vec<u8> = (0..20_000)
            .map(|_| sample_genotype(&mut rng, 0.3))
            .collect();
        let c = GenotypeCounts::from_dosages(&g);
        assert!(
            c.hardy_weinberg_pvalue() > 0.001,
            "HWE data must not be rejected: p = {}",
            c.hardy_weinberg_pvalue()
        );
    }

    #[test]
    fn hwe_detects_heterozygote_deficit() {
        // Extreme inbreeding-like data: only homozygotes at p = 0.5.
        let counts = GenotypeCounts {
            homozygous_ref: 500,
            heterozygous: 0,
            homozygous_alt: 500,
        };
        assert!(counts.hardy_weinberg_pvalue() < 1e-10);
    }

    #[test]
    fn hwe_monomorphic_is_vacuous() {
        let c = GenotypeCounts::from_dosages(&[0u8; 50]);
        assert_eq!(c.hardy_weinberg_pvalue(), 1.0);
    }

    #[test]
    fn check_snp_classifies_failures() {
        let thresholds = QcThresholds::default();
        assert!(matches!(
            check_snp(&[0u8; 100], &thresholds),
            Err(QcFailure::Monomorphic)
        ));
        // One het in 200 patients: MAF = 1/400 < 0.01.
        let mut rare = vec![0u8; 200];
        rare[0] = 1;
        assert!(matches!(
            check_snp(&rare, &thresholds),
            Err(QcFailure::RareVariant { .. })
        ));
        // Clean common variant passes.
        let mut rng = StdRng::seed_from_u64(9);
        let good: Vec<u8> = (0..500).map(|_| sample_genotype(&mut rng, 0.25)).collect();
        assert!(check_snp(&good, &thresholds).is_ok());
        // All-het data at p=0.5 violates HWE strongly.
        let het = vec![1u8; 1000];
        assert!(matches!(
            check_snp(&het, &thresholds),
            Err(QcFailure::HardyWeinberg { .. })
        ));
    }

    #[test]
    fn hwe_pvalue_roughly_uniform_under_null() {
        // Type-I calibration: across many null SNPs, ~5% rejected at 0.05.
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 400;
        let rejected = (0..trials)
            .filter(|_| {
                let g: Vec<u8> = (0..400).map(|_| sample_genotype(&mut rng, 0.3)).collect();
                GenotypeCounts::from_dosages(&g).hardy_weinberg_pvalue() < 0.05
            })
            .count();
        let rate = rejected as f64 / trials as f64;
        assert!(
            (0.01..=0.10).contains(&rate),
            "HWE test must be calibrated: rejection rate {rate}"
        );
    }
}
