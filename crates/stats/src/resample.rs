//! Resampling inference — sequential reference implementations.
//!
//! These are the single-machine analogues of the paper's Algorithms 1
//! (observed SKAT), 2 (permutation resampling), and 3 (Lin's Monte Carlo
//! multiplier resampling). The distributed pipelines in `sparkscore-core`
//! are cross-checked against these oracles in the integration tests; they
//! are also useful in their own right for laptop-scale analyses.
//!
//! * **Permutation** (Westfall & Young): shuffle the phenotype pairs
//!   `(Y_i, Δ_i)` among patients and recompute *everything* per replicate.
//! * **Monte Carlo** (Lin 2005): draw `Z_i ~ N(0,1)` and perturb the
//!   *observed* contributions, `Ũ_j = Σ_i Z_i U_ij` — no recomputation of
//!   the score contributions, which is what makes RDD caching so effective.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::dist::sample_standard_normal;
use crate::linalg::perturb_scores_blocked;
use crate::pvalue::{empirical_pvalue, StoppingRule};
use crate::score::ScoreModel;
use crate::skat::{skat_all, skat_statistic, SnpSet};

/// Default replicate-tile width K for the blocked Monte Carlo kernel:
/// each pass over the cached contribution matrix serves K replicates.
/// 32 keeps a 256-patient × K multiplier tile at 64 KiB (L1/L2-resident)
/// while amortizing the `U` stream 32×.
pub const MC_TILE: usize = 32;

/// A full resampling analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResamplingResult {
    /// Observed SKAT statistic per set (the paper's `S_k⁰`).
    pub observed: Vec<f64>,
    /// Per-set count of replicates with `S̃_k ≥ S_k⁰` (`counter_k`).
    pub counts_ge: Vec<usize>,
    /// Number of replicates `B`.
    pub num_replicates: usize,
}

impl ResamplingResult {
    /// Add-one empirical p-values per set.
    pub fn pvalues(&self) -> Vec<f64> {
        self.counts_ge
            .iter()
            .map(|&c| empirical_pvalue(c, self.num_replicates))
            .collect()
    }
}

/// Draw a uniformly random permutation of `0..n`.
pub fn random_permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    perm
}

/// Draw `n` Monte Carlo multipliers `Z_i ~ N(0, 1)`.
pub fn mc_weights<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| sample_standard_normal(rng)).collect()
}

/// Observed per-SNP scores `U_j` (Algorithm 1's marginal pass). One
/// contribution buffer is reused across SNPs via the allocation-free
/// kernel path.
pub fn observed_scores<M: ScoreModel>(model: &M, genotype_rows: &[Vec<u8>]) -> Vec<f64> {
    let mut buf = vec![0.0f64; model.num_patients()];
    genotype_rows
        .iter()
        .map(|g| {
            model.contributions_into(g, &mut buf);
            buf.iter().sum()
        })
        .collect()
}

/// Observed SKAT statistics per set (Algorithm 1 end-to-end).
pub fn observed_skat<M: ScoreModel>(
    model: &M,
    genotype_rows: &[Vec<u8>],
    weights: &[f64],
    sets: &[SnpSet],
) -> Vec<f64> {
    let scores = observed_scores(model, genotype_rows);
    skat_all(&scores, weights, sets)
}

/// Algorithm 3 (Monte Carlo): perturb the observed contributions with
/// standard-normal multipliers for `B` replicates. Runs the blocked
/// kernel at the default tile width [`MC_TILE`]; results are bitwise
/// identical to [`monte_carlo_per_iteration`] for any tile width.
pub fn monte_carlo<M: ScoreModel>(
    model: &M,
    genotype_rows: &[Vec<u8>],
    weights: &[f64],
    sets: &[SnpSet],
    num_replicates: usize,
    seed: u64,
) -> ResamplingResult {
    monte_carlo_blocked(
        model,
        genotype_rows,
        weights,
        sets,
        num_replicates,
        seed,
        MC_TILE,
    )
}

/// Blocked Algorithm 3: replicates are processed in tiles of `tile`
/// multiplier vectors against the flat contribution matrix
/// ([`perturb_scores_blocked`]), so `U` is streamed from memory once per
/// `tile` replicates instead of once per replicate. The multiplier RNG
/// stream, per-replicate perturbed scores, SKAT statistics, and
/// exceedance counts are all bitwise identical to the per-iteration path.
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_blocked<M: ScoreModel>(
    model: &M,
    genotype_rows: &[Vec<u8>],
    weights: &[f64],
    sets: &[SnpSet],
    num_replicates: usize,
    seed: u64,
    tile: usize,
) -> ResamplingResult {
    assert!(tile > 0, "tile width must be positive");
    let n = model.num_patients();
    let m = genotype_rows.len();
    // The "cached U RDD" as one flat row-major m × n matrix, built through
    // the allocation-free kernel (one write slice per SNP, no temporaries).
    let mut contribs = vec![0.0f64; m * n];
    for (g, row) in genotype_rows.iter().zip(contribs.chunks_exact_mut(n)) {
        model.contributions_into(g, row);
    }
    let scores: Vec<f64> = contribs.chunks_exact(n).map(|c| c.iter().sum()).collect();
    let observed = skat_all(&scores, weights, sets);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; sets.len()];
    let mut z_tile = vec![0.0f64; n * tile];
    let mut tile_out = vec![0.0f64; m * tile];
    let mut perturbed = vec![0.0f64; m];
    let mut done = 0;
    while done < num_replicates {
        let k = tile.min(num_replicates - done);
        // Draw the tile's multipliers replicate-by-replicate — the same
        // draw order as the per-iteration path — transposed into the
        // patient-major layout the kernel wants.
        for kk in 0..k {
            for (i, zi) in mc_weights(&mut rng, n).into_iter().enumerate() {
                z_tile[i * k + kk] = zi;
            }
        }
        perturb_scores_blocked(&contribs, m, n, &z_tile[..n * k], k, &mut tile_out[..m * k]);
        for kk in 0..k {
            for (j, p) in perturbed.iter_mut().enumerate() {
                *p = tile_out[j * k + kk];
            }
            let replicate = skat_all(&perturbed, weights, sets);
            for (s, (&rep, &obs)) in replicate.iter().zip(&observed).enumerate() {
                if rep >= obs {
                    counts[s] += 1;
                }
            }
        }
        done += k;
    }
    ResamplingResult {
        observed,
        counts_ge: counts,
        num_replicates,
    }
}

/// Result of an adaptive (sequentially stopped) Monte Carlo analysis.
///
/// Unlike [`ResamplingResult`], each set carries its own replicate count:
/// `pvalues()[s]` is the add-one estimate over the `replicates_used[s]`
/// replicates set `s` saw before its [`StoppingRule`] decision (or the
/// full budget if it never stopped).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    /// Observed SKAT statistic per set.
    pub observed: Vec<f64>,
    /// Per-set exceedance count over that set's own replicates.
    pub counts_ge: Vec<usize>,
    /// Replicates each set consumed before stopping (≤ `max_replicates`).
    pub replicates_used: Vec<usize>,
    /// The fixed-B budget the run was capped at.
    pub max_replicates: usize,
    /// Row-replicate units of GEMM work actually performed: one unit is
    /// one SNP row perturbed for one replicate.
    pub replicates_run: u64,
    /// Row-replicate units the stopping rule avoided versus running every
    /// in-scope row for the full budget.
    pub replicates_saved: u64,
}

impl AdaptiveResult {
    /// Add-one empirical p-values, each over its set's own replicates.
    pub fn pvalues(&self) -> Vec<f64> {
        self.counts_ge
            .iter()
            .zip(&self.replicates_used)
            .map(|(&c, &t)| empirical_pvalue(c, t))
            .collect()
    }
}

/// Adaptive Algorithm 3: [`monte_carlo_blocked`] tile rounds with a
/// per-set sequential [`StoppingRule`]. After every tile of `tile`
/// replicates each still-active set's running exceedance count is tested;
/// decided sets freeze their count and replicate tally and drop out of
/// the per-replicate SKAT pass.
///
/// The multiplier stream is drawn in full every round regardless of which
/// sets remain active, so replicates `1..=replicates_used[s]` of set `s`
/// are **bitwise identical** to the same replicates of the fixed-B oracle
/// — adaptivity only truncates, never re-randomizes. A rule that cannot
/// fire (e.g. `min_replicates > max_replicates`) therefore reproduces
/// [`monte_carlo_blocked`] exactly. This single-machine path is the
/// semantic oracle for the distributed grid's adaptive mode.
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_adaptive<M: ScoreModel>(
    model: &M,
    genotype_rows: &[Vec<u8>],
    weights: &[f64],
    sets: &[SnpSet],
    max_replicates: usize,
    seed: u64,
    tile: usize,
    rule: &StoppingRule,
) -> AdaptiveResult {
    assert!(tile > 0, "tile width must be positive");
    let n = model.num_patients();
    let m = genotype_rows.len();
    let mut contribs = vec![0.0f64; m * n];
    for (g, row) in genotype_rows.iter().zip(contribs.chunks_exact_mut(n)) {
        model.contributions_into(g, row);
    }
    let scores: Vec<f64> = contribs.chunks_exact(n).map(|c| c.iter().sum()).collect();
    let observed = skat_all(&scores, weights, sets);

    // SNPs that belong to at least one set: the work the fixed-B budget
    // would spend, in row-replicate units.
    let mut in_scope = vec![false; m];
    for set in sets {
        for &j in &set.members {
            in_scope[j] = true;
        }
    }
    let scope_rows = in_scope.iter().filter(|&&b| b).count();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; sets.len()];
    let mut used = vec![0usize; sets.len()];
    let mut decided = vec![false; sets.len()];
    let mut replicates_run = 0u64;
    let mut z_tile = vec![0.0f64; n * tile];
    let mut tile_out = vec![0.0f64; m * tile];
    let mut perturbed = vec![0.0f64; m];
    let mut done = 0;
    while done < max_replicates && decided.iter().any(|d| !d) {
        let k = tile.min(max_replicates - done);
        // Draw the full tile even for rows that have dropped out — the
        // stream must stay aligned with the fixed-B oracle's.
        for kk in 0..k {
            for (i, zi) in mc_weights(&mut rng, n).into_iter().enumerate() {
                z_tile[i * k + kk] = zi;
            }
        }
        perturb_scores_blocked(&contribs, m, n, &z_tile[..n * k], k, &mut tile_out[..m * k]);
        let active_rows = (0..m)
            .filter(|&j| {
                in_scope[j]
                    && sets
                        .iter()
                        .enumerate()
                        .any(|(s, set)| !decided[s] && set.members.contains(&j))
            })
            .count();
        replicates_run += (active_rows * k) as u64;
        for kk in 0..k {
            for (j, p) in perturbed.iter_mut().enumerate() {
                *p = tile_out[j * k + kk];
            }
            for (s, set) in sets.iter().enumerate() {
                if decided[s] {
                    continue;
                }
                if skat_statistic(&perturbed, weights, set) >= observed[s] {
                    counts[s] += 1;
                }
            }
        }
        done += k;
        for s in 0..sets.len() {
            if !decided[s] {
                used[s] = done;
                if rule.decided(counts[s], done) {
                    decided[s] = true;
                }
            }
        }
    }
    let potential = (scope_rows * max_replicates) as u64;
    AdaptiveResult {
        observed,
        counts_ge: counts,
        replicates_used: used,
        max_replicates,
        replicates_run,
        replicates_saved: potential.saturating_sub(replicates_run),
    }
}

/// The pre-blocking Algorithm 3 reference: one full pass over the cached
/// contributions per replicate. Kept as the oracle the blocked kernel is
/// tested (and benchmarked) against.
pub fn monte_carlo_per_iteration<M: ScoreModel>(
    model: &M,
    genotype_rows: &[Vec<u8>],
    weights: &[f64],
    sets: &[SnpSet],
    num_replicates: usize,
    seed: u64,
) -> ResamplingResult {
    let n = model.num_patients();
    let contribs: Vec<Vec<f64>> = genotype_rows
        .iter()
        .map(|g| model.contributions(g))
        .collect();
    let scores: Vec<f64> = contribs.iter().map(|c| c.iter().sum()).collect();
    let observed = skat_all(&scores, weights, sets);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; sets.len()];
    let mut perturbed = vec![0.0f64; genotype_rows.len()];
    for _ in 0..num_replicates {
        let z = mc_weights(&mut rng, n);
        for (j, c) in contribs.iter().enumerate() {
            perturbed[j] = c.iter().zip(&z).map(|(u, zi)| u * zi).sum();
        }
        let replicate = skat_all(&perturbed, weights, sets);
        for (k, (&rep, &obs)) in replicate.iter().zip(&observed).enumerate() {
            if rep >= obs {
                counts[k] += 1;
            }
        }
    }
    ResamplingResult {
        observed,
        counts_ge: counts,
        num_replicates,
    }
}

/// Algorithm 2 (permutation): shuffle the phenotype pairs and recompute the
/// full score pass per replicate. `rebuild(perm)` must return the model for
/// the shuffled phenotypes (e.g. [`crate::score::CoxScore::permuted`]).
pub fn permutation<M, F>(
    model: &M,
    rebuild: F,
    genotype_rows: &[Vec<u8>],
    weights: &[f64],
    sets: &[SnpSet],
    num_replicates: usize,
    seed: u64,
) -> ResamplingResult
where
    M: ScoreModel,
    F: Fn(&[usize]) -> M,
{
    let n = model.num_patients();
    let observed = observed_skat(model, genotype_rows, weights, sets);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; sets.len()];
    for _ in 0..num_replicates {
        let perm = random_permutation(&mut rng, n);
        let shuffled = rebuild(&perm);
        let replicate = observed_skat(&shuffled, genotype_rows, weights, sets);
        for (k, (&rep, &obs)) in replicate.iter().zip(&observed).enumerate() {
            if rep >= obs {
                counts[k] += 1;
            }
        }
    }
    ResamplingResult {
        observed,
        counts_ge: counts,
        num_replicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{CoxScore, GaussianScore, Survival};

    fn tiny_cohort() -> (CoxScore, Vec<Vec<u8>>, Vec<f64>, Vec<SnpSet>) {
        let ph = vec![
            Survival::event_at(1.0),
            Survival::event_at(4.0),
            Survival::censored_at(2.0),
            Survival::event_at(8.0),
            Survival::event_at(3.0),
            Survival::censored_at(6.0),
        ];
        let rows = vec![
            vec![0u8, 1, 2, 0, 1, 2],
            vec![2u8, 2, 0, 1, 0, 1],
            vec![1u8, 0, 1, 2, 2, 0],
            vec![0u8, 0, 1, 1, 2, 2],
        ];
        let weights = vec![1.0, 0.5, 2.0, 1.0];
        let sets = vec![SnpSet::new(0, vec![0, 1]), SnpSet::new(1, vec![2, 3])];
        (CoxScore::new(&ph), rows, weights, sets)
    }

    #[test]
    fn observed_skat_matches_manual_composition() {
        let (model, rows, weights, sets) = tiny_cohort();
        let scores = observed_scores(&model, &rows);
        let skat = observed_skat(&model, &rows, &weights, &sets);
        assert_eq!(
            skat[0],
            weights[0].powi(2) * scores[0].powi(2) + weights[1].powi(2) * scores[1].powi(2)
        );
        assert_eq!(skat.len(), 2);
    }

    #[test]
    fn mc_observed_matches_algorithm1() {
        let (model, rows, weights, sets) = tiny_cohort();
        let res = monte_carlo(&model, &rows, &weights, &sets, 10, 42);
        assert_eq!(res.observed, observed_skat(&model, &rows, &weights, &sets));
        assert_eq!(res.num_replicates, 10);
    }

    #[test]
    fn mc_blocked_is_bitwise_identical_to_per_iteration() {
        // Any tile width — including 1, a width that doesn't divide B, and
        // the default — must reproduce the per-iteration path exactly
        // (same RNG stream, same statistics, same counts).
        let (model, rows, weights, sets) = tiny_cohort();
        let reference = monte_carlo_per_iteration(&model, &rows, &weights, &sets, 101, 42);
        for tile in [1, 3, MC_TILE] {
            let blocked = monte_carlo_blocked(&model, &rows, &weights, &sets, 101, 42, tile);
            assert_eq!(blocked, reference, "tile={tile}");
        }
        assert_eq!(
            monte_carlo(&model, &rows, &weights, &sets, 101, 42),
            reference
        );
    }

    #[test]
    fn mc_is_deterministic_per_seed() {
        let (model, rows, weights, sets) = tiny_cohort();
        let a = monte_carlo(&model, &rows, &weights, &sets, 50, 7);
        let b = monte_carlo(&model, &rows, &weights, &sets, 50, 7);
        assert_eq!(a, b);
        let c = monte_carlo(&model, &rows, &weights, &sets, 50, 8);
        // Different seed should (almost surely) differ somewhere.
        assert!(a.counts_ge != c.counts_ge || a.observed == c.observed);
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        let (model, rows, weights, sets) = tiny_cohort();
        let a = permutation(&model, |p| model.permuted(p), &rows, &weights, &sets, 20, 3);
        let b = permutation(&model, |p| model.permuted(p), &rows, &weights, &sets, 20, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn pvalues_in_unit_interval_and_match_counts() {
        let (model, rows, weights, sets) = tiny_cohort();
        let res = monte_carlo(&model, &rows, &weights, &sets, 99, 5);
        let ps = res.pvalues();
        for (p, &c) in ps.iter().zip(&res.counts_ge) {
            assert!((0.0..=1.0).contains(p));
            assert_eq!(*p, (c + 1) as f64 / 100.0);
        }
    }

    #[test]
    fn null_data_gives_uniform_ish_pvalues() {
        // Pure-null Gaussian trait: p-values should not pile up near zero.
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 60;
        let y: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let rows: Vec<Vec<u8>> = (0..30)
            .map(|_| (0..n).map(|_| rng.gen_range(0u8..3)).collect())
            .collect();
        let weights = vec![1.0; 30];
        let sets: Vec<SnpSet> = (0..10)
            .map(|k| SnpSet::new(k as u64, (3 * k..3 * k + 3).collect()))
            .collect();
        let model = GaussianScore::new(&y);
        let res = monte_carlo(&model, &rows, &weights, &sets, 200, 99);
        let ps = res.pvalues();
        let small = ps.iter().filter(|&&p| p < 0.05).count();
        assert!(
            small <= 3,
            "under the null, few of 10 sets should have p < 0.05 (got {small}: {ps:?})"
        );
    }

    #[test]
    fn planted_association_is_detected_by_both_methods() {
        // Trait strongly follows SNP 0's dosage: set containing SNP 0 must
        // get a small p-value; a pure-noise set must not.
        let mut rng = StdRng::seed_from_u64(77);
        let n = 80;
        let causal: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
        let y: Vec<f64> = causal
            .iter()
            .map(|&g| 3.0 * f64::from(g) + 0.3 * sample_standard_normal(&mut rng))
            .collect();
        let noise: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
        let rows = vec![causal, noise];
        let weights = vec![1.0, 1.0];
        let sets = vec![SnpSet::new(0, vec![0]), SnpSet::new(1, vec![1])];
        let model = GaussianScore::new(&y);

        let mc = monte_carlo(&model, &rows, &weights, &sets, 199, 5).pvalues();
        assert!(mc[0] <= 0.01, "causal set must be significant (mc: {mc:?})");
        assert!(mc[1] > 0.05, "noise set must not be (mc: {mc:?})");

        let perm = permutation(
            &model,
            |p| model.permuted(p),
            &rows,
            &weights,
            &sets,
            199,
            6,
        )
        .pvalues();
        assert!(perm[0] <= 0.01, "causal set (perm: {perm:?})");
        assert!(perm[1] > 0.05, "noise set (perm: {perm:?})");
    }

    #[test]
    fn mc_and_permutation_agree_on_null_data() {
        // The two schemes are asymptotically equivalent; at n = 200 their
        // p-values on null data should agree coarsely (they can differ
        // substantially in very small samples — that is expected and is
        // precisely why both are offered).
        let mut rng = StdRng::seed_from_u64(2024);
        let n = 200;
        let y: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let rows: Vec<Vec<u8>> = (0..8)
            .map(|_| (0..n).map(|_| rng.gen_range(0u8..3)).collect())
            .collect();
        let weights = vec![1.0; 8];
        let sets = vec![
            SnpSet::new(0, vec![0, 1, 2, 3]),
            SnpSet::new(1, vec![4, 5, 6, 7]),
        ];
        let model = GaussianScore::new(&y);
        let mc = monte_carlo(&model, &rows, &weights, &sets, 400, 1).pvalues();
        let pm = permutation(
            &model,
            |p| model.permuted(p),
            &rows,
            &weights,
            &sets,
            400,
            2,
        )
        .pvalues();
        for (a, b) in mc.iter().zip(&pm) {
            assert!(
                (a - b).abs() < 0.2,
                "MC ({a}) and permutation ({b}) should roughly agree on the null"
            );
        }
    }

    #[test]
    fn adaptive_with_unreachable_rule_matches_fixed_b_exactly() {
        // A rule that can never fire reduces the adaptive path to the
        // fixed-B oracle: same counts, every set consuming the full budget.
        let (model, rows, weights, sets) = tiny_cohort();
        let rule = StoppingRule::new(1000, 0.05, 0.01);
        let adaptive = monte_carlo_adaptive(&model, &rows, &weights, &sets, 120, 42, 7, &rule);
        let oracle = monte_carlo_blocked(&model, &rows, &weights, &sets, 120, 42, 7);
        assert_eq!(adaptive.observed, oracle.observed);
        assert_eq!(adaptive.counts_ge, oracle.counts_ge);
        assert_eq!(adaptive.replicates_used, vec![120, 120]);
        assert_eq!(adaptive.replicates_saved, 0);
        assert_eq!(adaptive.replicates_run, 4 * 120);
    }

    #[test]
    fn adaptive_truncation_is_bitwise_prefix_of_oracle() {
        // Whatever prefix a set consumes, its count over that prefix must
        // equal the oracle's count over the same prefix — adaptivity only
        // truncates the replicate stream, never re-randomizes it.
        let (model, rows, weights, sets) = tiny_cohort();
        let rule = StoppingRule::new(30, 0.05, 0.2);
        let adaptive = monte_carlo_adaptive(&model, &rows, &weights, &sets, 200, 11, 10, &rule);
        for (s, &t) in adaptive.replicates_used.iter().enumerate() {
            let prefix = monte_carlo_blocked(&model, &rows, &weights, &sets, t, 11, 10);
            assert_eq!(
                adaptive.counts_ge[s], prefix.counts_ge[s],
                "set {s} over its {t}-replicate prefix"
            );
        }
    }

    #[test]
    fn adaptive_stops_clearly_null_and_clearly_significant_sets_early() {
        // Planted causal set (p ≈ 1/B) and pure-noise set (p far from
        // alpha): both should curtail at or near the floor, far below the
        // budget, while agreeing with the oracle's significance call.
        let mut rng = StdRng::seed_from_u64(77);
        let n = 80;
        let causal: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
        let y: Vec<f64> = causal
            .iter()
            .map(|&g| 3.0 * f64::from(g) + 0.3 * sample_standard_normal(&mut rng))
            .collect();
        let noise: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
        let rows = vec![causal, noise];
        let weights = vec![1.0, 1.0];
        let sets = vec![SnpSet::new(0, vec![0]), SnpSet::new(1, vec![1])];
        let model = GaussianScore::new(&y);

        let budget = 2000;
        let rule = StoppingRule::new(60, 0.05, 0.01);
        let adaptive =
            monte_carlo_adaptive(&model, &rows, &weights, &sets, budget, 5, MC_TILE, &rule);
        let oracle = monte_carlo_blocked(&model, &rows, &weights, &sets, budget, 5, MC_TILE);
        let pa = adaptive.pvalues();
        let po = oracle.pvalues();
        for s in 0..2 {
            assert!(
                adaptive.replicates_used[s] <= budget / 10,
                "set {s} should stop early (used {} of {budget})",
                adaptive.replicates_used[s]
            );
            assert_eq!(
                pa[s] <= 0.05,
                po[s] <= 0.05,
                "significance call must match the oracle (adaptive {pa:?}, oracle {po:?})"
            );
        }
        assert!(
            adaptive.replicates_saved >= 9 * adaptive.replicates_run,
            "clear sets should save ≥ 90% of the budgeted work (run {}, saved {})",
            adaptive.replicates_run,
            adaptive.replicates_saved
        );
    }

    mod adaptive_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Adaptive p-values agree with the fixed-B oracle to within the
        /// two estimates' combined CI widths (with slack for the
        /// sequential looks and the add-one bias) across random models.
        #[test]
        fn prop_adaptive_within_combined_ci_of_oracle(
            seed in 0u64..1_000,
            data_seed in 0u64..1_000,
        ) {
            let mut rng = StdRng::seed_from_u64(data_seed);
            let n = 40;
            let m = 12;
            let y: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
            let rows: Vec<Vec<u8>> = (0..m)
                .map(|_| (0..n).map(|_| rng.gen_range(0u8..3)).collect())
                .collect();
            let weights = vec![1.0; m];
            let sets: Vec<SnpSet> = (0..m / 3)
                .map(|k| SnpSet::new(k as u64, (3 * k..3 * k + 3).collect()))
                .collect();
            let model = GaussianScore::new(&y);

            let budget = 300;
            let rule = StoppingRule::new(80, 0.05, 0.05);
            let adaptive =
                monte_carlo_adaptive(&model, &rows, &weights, &sets, budget, seed, MC_TILE, &rule);
            let oracle = monte_carlo_blocked(&model, &rows, &weights, &sets, budget, seed, MC_TILE);
            let pa = adaptive.pvalues();
            let po = oracle.pvalues();
            for s in 0..sets.len() {
                let t = adaptive.replicates_used[s];
                prop_assert!(t >= rule.min_replicates.min(budget) && t <= budget);
                prop_assert!(adaptive.counts_ge[s] <= t);
                let w_adaptive = rule.ci_half_width(adaptive.counts_ge[s], t);
                let w_oracle = rule.ci_half_width(oracle.counts_ge[s], budget);
                let bound = 2.5 * (w_adaptive + w_oracle) + 0.02;
                prop_assert!(
                    (pa[s] - po[s]).abs() <= bound,
                    "set {}: adaptive p {} vs oracle p {} exceeds bound {}",
                    s, pa[s], po[s], bound
                );
            }
        }
        }
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = random_permutation(&mut rng, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mc_weights_have_unit_scale() {
        let mut rng = StdRng::seed_from_u64(9);
        let z = mc_weights(&mut rng, 50_000);
        let var = z.iter().map(|x| x * x).sum::<f64>() / z.len() as f64;
        assert!((var - 1.0).abs() < 0.03, "MC weights variance {var}");
    }
}
