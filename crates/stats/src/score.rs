//! Efficient score statistics.
//!
//! For each SNP `j`, the marginal score is `U_j = Σ_i U_ij`, where `U_ij`
//! is patient `i`'s contribution. The paper's primary model is the Cox
//! score for censored survival (`U_ij = Δ_i (G_ij − a_ij/b_i)`); linear
//! (Gaussian) and binomial models cover quantitative traits (eQTL) and
//! case/control phenotypes, the extensions the abstract calls out. Unlike
//! Wald or likelihood-ratio tests, none of these require per-SNP numerical
//! optimization — the property that makes the method "efficient".

use crate::scratch;

/// The missing-dosage marker in the 2-bit packed genotype encoding
/// (`0b11`). This is the single definition of the convention: packed
/// storage ([`GenotypeBlock`](../../sparkscore_data/packed/index.html))
/// uses codes 0/1/2 for dosages and this code for missing calls, and the
/// unpacked kernel paths debug-assert that missing values were imputed
/// away before scoring.
pub const MISSING_DOSAGE: u8 = 3;

/// Debug-build check that a genotype slice contains only real dosages
/// (0/1/2). Values `>= MISSING_DOSAGE` were historically accepted
/// silently and scored as if they were huge dosages; every unpacked
/// kernel path now routes through this assertion.
#[inline]
pub fn debug_assert_dosages(g: &[u8]) {
    debug_assert!(
        g.iter().all(|&d| d < MISSING_DOSAGE),
        "dosage out of range: kernels accept 0/1/2; code {MISSING_DOSAGE} marks a missing \
         call in packed storage and must be imputed before scoring"
    );
}

/// A censored survival observation `(Y_i, Δ_i)`: observed time and whether
/// it was an event (`true`) or censoring (`false`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Survival {
    pub time: f64,
    pub event: bool,
}

impl Survival {
    pub fn event_at(time: f64) -> Self {
        Survival { time, event: true }
    }

    pub fn censored_at(time: f64) -> Self {
        Survival { time, event: false }
    }
}

/// A score model: maps one SNP's genotype vector to per-patient score
/// contributions. Implementations precompute all phenotype-only terms once
/// per analysis (the paper notes `b_i` "only needs to be calculated once").
pub trait ScoreModel: Send + Sync {
    fn num_patients(&self) -> usize;

    /// Allocation-free kernel: write the per-patient contributions `U_ij`
    /// for genotype vector `g` (dosages 0/1/2, one entry per patient) into
    /// `out`. Panics if `g.len()` or `out.len()` mismatches
    /// `num_patients()`. This is the hot path — implementations must not
    /// allocate for the three primary models.
    fn contributions_into(&self, g: &[u8], out: &mut [f64]);

    /// Packed-column fast path: compute the contributions directly from
    /// a 2-bit packed genotype column (`ceil(n/4)` bytes, codes 0/1/2
    /// plus [`MISSING_DOSAGE`]) and return `true`, or return `false`
    /// when the model has no packed kernel and the caller must unpack
    /// and use [`ScoreModel::contributions_into`]. Models whose
    /// per-patient contribution is affine in the dosage (Gaussian,
    /// binomial) override this with the popcount/table kernels in
    /// [`crate::bitkern`]; the Cox risk-set prefix and
    /// covariate-projected models keep the default.
    fn contributions_into_packed(&self, packed: &[u8], out: &mut [f64]) -> bool {
        let _ = (packed, out);
        false
    }

    /// Per-patient contributions `U_ij`, allocating the output vector.
    /// Convenience wrapper over [`ScoreModel::contributions_into`].
    fn contributions(&self, g: &[u8]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_patients()];
        self.contributions_into(g, &mut out);
        out
    }

    /// The marginal score `U_j = Σ_i U_ij`.
    fn score(&self, g: &[u8]) -> f64 {
        self.contributions(g).iter().sum()
    }
}

/// Sum and empirical variance (`Σ U_ij²`) of a contribution vector — the
/// ingredients of the asymptotic test `U²/V ~ χ²₁`. Single pass: it runs
/// once per SNP per iteration.
#[inline]
pub fn score_and_variance(contribs: &[f64]) -> (f64, f64) {
    let mut u = 0.0f64;
    let mut v = 0.0f64;
    for &c in contribs {
        u += c;
        v += c * c;
    }
    (u, v)
}

// ---------------- Cox ----------------

/// Cox proportional-hazards score under the global null.
///
/// `U_ij = Δ_i (G_ij − a_ij / b_i)` with `a_ij = Σ_l 1(Y_l ≥ Y_i) G_lj`
/// and `b_i = Σ_l 1(Y_l ≥ Y_i)`.
///
/// The naive evaluation is O(n²) per SNP; this implementation sorts
/// patients by descending time once per analysis and answers each SNP in
/// O(n) via prefix sums over the sorted order (`a_ij` is a risk-set sum —
/// a prefix of the descending order; ties share the same prefix bound).
#[derive(Debug, Clone)]
pub struct CoxScore {
    phenotypes: Vec<Survival>,
    /// Patient indices sorted by time descending (ties by index).
    order: Vec<usize>,
    /// Per patient: `b_i` = |{l : Y_l ≥ Y_i}|, which is also the length of
    /// the descending-order prefix covering the risk set.
    rank_end: Vec<usize>,
}

impl CoxScore {
    pub fn new(phenotypes: &[Survival]) -> Self {
        assert!(!phenotypes.is_empty(), "need at least one patient");
        let n = phenotypes.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            phenotypes[b]
                .time
                .partial_cmp(&phenotypes[a].time)
                .expect("survival times must not be NaN")
                .then(a.cmp(&b))
        });
        // Descending times; rank_end[i] = #\{l: Y_l >= Y_i\} = index one past
        // the last sorted position whose time >= Y_i.
        let sorted_times: Vec<f64> = order.iter().map(|&i| phenotypes[i].time).collect();
        let mut rank_end = vec![0usize; n];
        for i in 0..n {
            let t = phenotypes[i].time;
            // partition_point: first k where sorted_times[k] < t.
            rank_end[i] = sorted_times.partition_point(|&y| y >= t);
            debug_assert!(rank_end[i] >= 1);
        }
        CoxScore {
            phenotypes: phenotypes.to_vec(),
            order,
            rank_end,
        }
    }

    /// The model after shuffling the phenotype pairs with `perm`
    /// (patient `i` receives phenotype `perm[i]`): permutation resampling's
    /// per-replicate model (Algorithm 2).
    ///
    /// O(n): the time multiset is permutation-invariant, so the shuffled
    /// model's descending order is the existing order relabeled through the
    /// inverse permutation, and `b_i` for new patient `i` is the old `b` of
    /// the patient whose phenotype it received. No re-sort per replicate.
    /// (Patients tied on time may appear in a different relative order than
    /// a fresh sort would produce; `rank_end` always lands on a tie-group
    /// boundary, so every risk set sums the same values — contributions
    /// agree with a freshly built model up to FP summation order.)
    pub fn permuted(&self, perm: &[usize]) -> CoxScore {
        let n = self.phenotypes.len();
        assert_eq!(perm.len(), n);
        let shuffled: Vec<Survival> = perm.iter().map(|&p| self.phenotypes[p]).collect();
        let mut inv_perm = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            inv_perm[p] = i;
        }
        let order: Vec<usize> = self.order.iter().map(|&o| inv_perm[o]).collect();
        let rank_end: Vec<usize> = (0..n).map(|i| self.rank_end[perm[i]]).collect();
        CoxScore {
            phenotypes: shuffled,
            order,
            rank_end,
        }
    }

    pub fn phenotypes(&self) -> &[Survival] {
        &self.phenotypes
    }
}

impl ScoreModel for CoxScore {
    fn num_patients(&self) -> usize {
        self.phenotypes.len()
    }

    fn contributions_into(&self, g: &[u8], out: &mut [f64]) {
        let n = self.phenotypes.len();
        assert_eq!(g.len(), n, "genotype vector length mismatch");
        assert_eq!(out.len(), n, "output vector length mismatch");
        debug_assert_dosages(g);
        // prefix[k] = sum of genotypes of the k patients with largest times,
        // built in thread-local scratch (reused across tasks on a worker).
        scratch::with_f64(n + 1, |prefix| {
            let mut acc = 0.0f64;
            for (p, &idx) in prefix[1..].iter_mut().zip(&self.order) {
                acc += f64::from(g[idx]);
                *p = acc;
            }
            for (i, o) in out.iter_mut().enumerate() {
                *o = if self.phenotypes[i].event {
                    let b = self.rank_end[i] as f64;
                    let a = prefix[self.rank_end[i]];
                    f64::from(g[i]) - a / b
                } else {
                    0.0
                };
            }
        });
    }
}

/// O(n²)-per-SNP Cox contributions, straight from the definition. Kept as
/// the property-test oracle for [`CoxScore`].
pub fn cox_contributions_naive(phenotypes: &[Survival], g: &[u8]) -> Vec<f64> {
    let n = phenotypes.len();
    assert_eq!(g.len(), n);
    (0..n)
        .map(|i| {
            if !phenotypes[i].event {
                return 0.0;
            }
            let mut a = 0.0f64;
            let mut b = 0.0f64;
            for l in 0..n {
                if phenotypes[l].time >= phenotypes[i].time {
                    a += f64::from(g[l]);
                    b += 1.0;
                }
            }
            f64::from(g[i]) - a / b
        })
        .collect()
}

// ---------------- Gaussian ----------------

/// Linear-model score for a quantitative trait:
/// `U_ij = (Y_i − Ȳ)(G_ij − Ḡ_j)`.
///
/// Genotypes are centered per SNP (the intercept-profiled efficient score).
/// The marginal score `U_j` is unchanged by centering (residuals sum to
/// zero), but the *contributions* — and hence Lin's Monte Carlo
/// perturbation variance `Σ U_ij²` — are only correct with it: uncentered
/// contributions would inflate the MC null spread relative to permutation.
#[derive(Debug, Clone)]
pub struct GaussianScore {
    residuals: Vec<f64>,
}

impl GaussianScore {
    pub fn new(trait_values: &[f64]) -> Self {
        assert!(!trait_values.is_empty(), "need at least one patient");
        let mean = trait_values.iter().sum::<f64>() / trait_values.len() as f64;
        GaussianScore {
            residuals: trait_values.iter().map(|y| y - mean).collect(),
        }
    }

    /// Permutation-resampling helper: shuffle trait values with `perm`.
    pub fn permuted(&self, perm: &[usize]) -> GaussianScore {
        assert_eq!(perm.len(), self.residuals.len());
        // Residuals are permutation-invariant as a multiset; shuffling them
        // directly is equivalent to shuffling the raw trait values.
        GaussianScore {
            residuals: perm.iter().map(|&p| self.residuals[p]).collect(),
        }
    }
}

impl ScoreModel for GaussianScore {
    fn num_patients(&self) -> usize {
        self.residuals.len()
    }

    fn contributions_into(&self, g: &[u8], out: &mut [f64]) {
        assert_eq!(
            g.len(),
            self.residuals.len(),
            "genotype vector length mismatch"
        );
        centered_residual_contributions_into(&self.residuals, g, out);
    }

    fn contributions_into_packed(&self, packed: &[u8], out: &mut [f64]) -> bool {
        crate::bitkern::residual_contributions_packed(&self.residuals, packed, out);
        true
    }
}

/// `U_ij = r_i (G_ij − Ḡ_j)` — shared by the Gaussian and binomial models.
///
/// The dosage sum is accumulated in `u64` (dosages are small integers, so
/// the `f64` conversion is exact and equals the sequential float sum
/// bitwise) and the write-out loop is a straight slice zip — both shapes
/// the autovectorizer handles.
fn centered_residual_contributions_into(residuals: &[f64], g: &[u8], out: &mut [f64]) {
    assert_eq!(out.len(), residuals.len(), "output vector length mismatch");
    debug_assert_dosages(g);
    let g_sum: u64 = g.iter().map(|&x| u64::from(x)).sum();
    let g_mean = g_sum as f64 / g.len() as f64;
    for ((o, r), &gi) in out.iter_mut().zip(residuals).zip(g) {
        *o = r * (f64::from(gi) - g_mean);
    }
}

// ---------------- Binomial ----------------

/// Score for a binary (case/control) phenotype under the intercept-only
/// null: `U_ij = (Y_i − p̄)(G_ij − Ḡ_j)` with `p̄` the case fraction
/// (genotypes centered per SNP, see [`GaussianScore`]).
#[derive(Debug, Clone)]
pub struct BinomialScore {
    residuals: Vec<f64>,
}

impl BinomialScore {
    pub fn new(cases: &[bool]) -> Self {
        assert!(!cases.is_empty(), "need at least one patient");
        let p = cases.iter().filter(|&&c| c).count() as f64 / cases.len() as f64;
        BinomialScore {
            residuals: cases.iter().map(|&c| f64::from(u8::from(c)) - p).collect(),
        }
    }

    pub fn permuted(&self, perm: &[usize]) -> BinomialScore {
        assert_eq!(perm.len(), self.residuals.len());
        BinomialScore {
            residuals: perm.iter().map(|&p| self.residuals[p]).collect(),
        }
    }
}

impl ScoreModel for BinomialScore {
    fn num_patients(&self) -> usize {
        self.residuals.len()
    }

    fn contributions_into(&self, g: &[u8], out: &mut [f64]) {
        assert_eq!(
            g.len(),
            self.residuals.len(),
            "genotype vector length mismatch"
        );
        centered_residual_contributions_into(&self.residuals, g, out);
    }

    fn contributions_into_packed(&self, packed: &[u8], out: &mut [f64]) -> bool {
        crate::bitkern::residual_contributions_packed(&self.residuals, packed, out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    fn close_vecs(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            close(*x, *y);
        }
    }

    #[test]
    fn cox_matches_naive_on_small_example() {
        let ph = vec![
            Survival::event_at(3.0),
            Survival::censored_at(5.0),
            Survival::event_at(1.0),
            Survival::event_at(5.0),
        ];
        let g = vec![2u8, 0, 1, 1];
        let fast = CoxScore::new(&ph).contributions(&g);
        let naive = cox_contributions_naive(&ph, &g);
        close_vecs(&fast, &naive);
    }

    #[test]
    fn cox_censored_patients_contribute_zero() {
        let ph = vec![Survival::censored_at(2.0), Survival::event_at(1.0)];
        let c = CoxScore::new(&ph).contributions(&[2, 1]);
        close(c[0], 0.0);
        assert!(c[1].abs() > 0.0 || c[1] == 0.0);
    }

    #[test]
    fn cox_constant_genotype_scores_zero() {
        // If everyone has the same genotype, G_ij == a_ij/b_i for every
        // event, so all contributions vanish.
        let ph: Vec<Survival> = (0..10)
            .map(|i| Survival {
                time: i as f64,
                event: i % 3 != 0,
            })
            .collect();
        for dose in 0u8..=2 {
            let g = vec![dose; 10];
            let (u, v) = score_and_variance(&CoxScore::new(&ph).contributions(&g));
            close(u, 0.0);
            close(v, 0.0);
        }
    }

    #[test]
    fn cox_handles_ties_like_naive() {
        let ph = vec![
            Survival::event_at(2.0),
            Survival::event_at(2.0),
            Survival::event_at(2.0),
            Survival::censored_at(2.0),
        ];
        let g = vec![0u8, 1, 2, 1];
        close_vecs(
            &CoxScore::new(&ph).contributions(&g),
            &cox_contributions_naive(&ph, &g),
        );
    }

    #[test]
    fn cox_permuted_identity_is_noop() {
        let ph = vec![
            Survival::event_at(1.0),
            Survival::event_at(4.0),
            Survival::censored_at(2.0),
        ];
        let model = CoxScore::new(&ph);
        let same = model.permuted(&[0, 1, 2]);
        let g = vec![1u8, 2, 0];
        close_vecs(&model.contributions(&g), &same.contributions(&g));
    }

    #[test]
    fn gaussian_contributions_sum_is_covariance_like() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let g = vec![0u8, 1, 1, 2];
        let model = GaussianScore::new(&y);
        let u = model.score(&g);
        // Σ (y_i - ȳ) g_i with ȳ = 2.5: -1.5*0 -0.5*1 +0.5*1 +1.5*2 = 3.
        close(u, 3.0);
    }

    #[test]
    fn gaussian_residuals_sum_zero_so_constant_genotype_scores_zero() {
        let y = vec![3.0, 9.0, -2.0, 0.5, 11.0];
        let model = GaussianScore::new(&y);
        close(model.score(&[1; 5]), 0.0);
        close(model.score(&[2; 5]), 0.0);
    }

    #[test]
    fn binomial_score_detects_enrichment() {
        // Cases carry the allele, controls don't → positive score.
        let cases = vec![true, true, false, false];
        let g = vec![2u8, 2, 0, 0];
        let u = BinomialScore::new(&cases).score(&g);
        assert!(u > 0.0);
        // Flip genotypes → negative score of equal magnitude.
        let u2 = BinomialScore::new(&cases).score(&[0, 0, 2, 2]);
        close(u, -u2);
    }

    #[test]
    fn score_and_variance_definition() {
        let (u, v) = score_and_variance(&[1.0, -2.0, 0.5]);
        close(u, -0.5);
        close(v, 1.0 + 4.0 + 0.25);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn contribution_length_checked() {
        let model = GaussianScore::new(&[1.0, 2.0]);
        let _ = model.contributions(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn contributions_into_output_length_checked() {
        let model = GaussianScore::new(&[1.0, 2.0]);
        let mut out = vec![0.0; 3];
        model.contributions_into(&[1, 2], &mut out);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "dosage out of range")]
    fn missing_dosage_rejected_by_unpacked_kernels() {
        let model = GaussianScore::new(&[1.0, 2.0, 3.0]);
        let _ = model.contributions(&[0, MISSING_DOSAGE, 1]);
    }

    /// Pack a dosage vector 2-bit column-style (4 codes per byte).
    fn pack(dosages: &[u8]) -> Vec<u8> {
        let mut data = vec![0u8; dosages.len().div_ceil(4)];
        for (i, &d) in dosages.iter().enumerate() {
            data[i / 4] |= d << (2 * (i % 4));
        }
        data
    }

    #[test]
    fn cox_has_no_packed_fast_path() {
        let ph = vec![Survival::event_at(1.0), Survival::event_at(2.0)];
        let model = CoxScore::new(&ph);
        let mut out = vec![f64::NAN; 2];
        assert!(!model.contributions_into_packed(&pack(&[1, 2]), &mut out));
        assert!(out.iter().all(|v| v.is_nan()), "declining must not write");
    }

    #[test]
    fn packed_fast_path_is_bitwise_identical_to_byte_kernel() {
        let g: Vec<u8> = (0..37).map(|i| (i % 3) as u8).collect();
        let packed = pack(&g);
        let y: Vec<f64> = (0..37).map(|i| (i as f64).sin() * 4.0).collect();
        let cases: Vec<bool> = (0..37).map(|i| i % 3 == 0).collect();
        let gauss = GaussianScore::new(&y);
        let binom = BinomialScore::new(&cases);
        let mut byte_out = vec![0.0; 37];
        let mut packed_out = vec![f64::NAN; 37];
        gauss.contributions_into(&g, &mut byte_out);
        assert!(gauss.contributions_into_packed(&packed, &mut packed_out));
        assert_eq!(byte_out, packed_out);
        binom.contributions_into(&g, &mut byte_out);
        assert!(binom.contributions_into_packed(&packed, &mut packed_out));
        assert_eq!(byte_out, packed_out);
    }

    /// The pre-`contributions_into` float summation order, kept as a
    /// bitwise oracle for the centered-residual kernel's integer sum.
    fn centered_naive(residuals: &[f64], g: &[u8]) -> Vec<f64> {
        let g_mean = g.iter().map(|&x| f64::from(x)).sum::<f64>() / g.len() as f64;
        residuals
            .iter()
            .zip(g)
            .map(|(r, &gi)| r * (f64::from(gi) - g_mean))
            .collect()
    }

    proptest! {
        /// The O(n) Cox implementation agrees with the O(n²) definition on
        /// arbitrary phenotypes (with ties and censoring) and genotypes.
        #[test]
        fn prop_cox_fast_equals_naive(
            raw in proptest::collection::vec((0u8..40, any::<bool>(), 0u8..3), 1..60)
        ) {
            // Coarse integer times force plenty of ties.
            let ph: Vec<Survival> = raw.iter()
                .map(|&(t, e, _)| Survival { time: f64::from(t) / 4.0, event: e })
                .collect();
            let g: Vec<u8> = raw.iter().map(|&(_, _, d)| d).collect();
            let fast = CoxScore::new(&ph).contributions(&g);
            let naive = cox_contributions_naive(&ph, &g);
            for (a, b) in fast.iter().zip(&naive) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }

        /// Scores are equivariant under patient relabeling: permuting both
        /// phenotypes and genotypes the same way permutes contributions.
        #[test]
        fn prop_cox_relabeling_equivariance(
            raw in proptest::collection::vec((0u8..30, any::<bool>(), 0u8..3), 2..30),
            seed in any::<u64>()
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let ph: Vec<Survival> = raw.iter()
                .map(|&(t, e, _)| Survival { time: f64::from(t), event: e })
                .collect();
            let g: Vec<u8> = raw.iter().map(|&(_, _, d)| d).collect();
            let mut perm: Vec<usize> = (0..raw.len()).collect();
            perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
            let ph2: Vec<Survival> = perm.iter().map(|&p| ph[p]).collect();
            let g2: Vec<u8> = perm.iter().map(|&p| g[p]).collect();
            let c1 = CoxScore::new(&ph).contributions(&g);
            let c2 = CoxScore::new(&ph2).contributions(&g2);
            for (i, &p) in perm.iter().enumerate() {
                prop_assert!((c2[i] - c1[p]).abs() < 1e-9);
            }
        }

        /// `contributions_into` is bitwise-identical to the allocating
        /// `contributions` path and matches the reference formulas on
        /// random cohorts, for all three models.
        #[test]
        fn prop_into_equals_contributions_all_models(
            raw in proptest::collection::vec(
                (0u8..20, any::<bool>(), 0u8..3, -50.0f64..50.0, any::<bool>()),
                1..50,
            )
        ) {
            let n = raw.len();
            let ph: Vec<Survival> = raw.iter()
                .map(|&(t, e, _, _, _)| Survival { time: f64::from(t) / 2.0, event: e })
                .collect();
            let g: Vec<u8> = raw.iter().map(|&(_, _, d, _, _)| d).collect();
            let y: Vec<f64> = raw.iter().map(|&(_, _, _, v, _)| v).collect();
            let cases: Vec<bool> = raw.iter().map(|&(_, _, _, _, c)| c).collect();

            let cox = CoxScore::new(&ph);
            let gauss = GaussianScore::new(&y);
            let binom = BinomialScore::new(&cases);

            let mut out = vec![f64::NAN; n];
            cox.contributions_into(&g, &mut out);
            prop_assert_eq!(&out, &cox.contributions(&g));
            let naive = cox_contributions_naive(&ph, &g);
            for (a, b) in out.iter().zip(&naive) {
                prop_assert!((a - b).abs() < 1e-9, "cox {a} vs naive {b}");
            }

            gauss.contributions_into(&g, &mut out);
            prop_assert_eq!(&out, &gauss.contributions(&g));
            prop_assert_eq!(&out, &centered_naive(&gauss.residuals, &g));

            binom.contributions_into(&g, &mut out);
            prop_assert_eq!(&out, &binom.contributions(&g));
            prop_assert_eq!(&out, &centered_naive(&binom.residuals, &g));
        }

        /// The packed fast path reproduces the byte kernel bitwise for
        /// the affine models — same contributions, hence the same score
        /// and variance — on every cohort size (all n%4 tails).
        #[test]
        fn prop_packed_fast_path_equals_byte_kernel(
            raw in proptest::collection::vec((0u8..3, -50.0f64..50.0, any::<bool>()), 1..80)
        ) {
            let n = raw.len();
            let g: Vec<u8> = raw.iter().map(|&(d, _, _)| d).collect();
            let y: Vec<f64> = raw.iter().map(|&(_, v, _)| v).collect();
            let cases: Vec<bool> = raw.iter().map(|&(_, _, c)| c).collect();
            let packed = pack(&g);
            let mut byte_out = vec![0.0; n];
            let mut packed_out = vec![f64::NAN; n];
            for model in [GaussianScore::new(&y), GaussianScore::new(&y).permuted(&{
                let mut p: Vec<usize> = (0..n).collect();
                p.reverse();
                p
            })] {
                model.contributions_into(&g, &mut byte_out);
                prop_assert!(model.contributions_into_packed(&packed, &mut packed_out));
                prop_assert_eq!(&byte_out, &packed_out);
                let (u, v) = score_and_variance(&byte_out);
                let (up, vp) = score_and_variance(&packed_out);
                prop_assert_eq!(u.to_bits(), up.to_bits());
                prop_assert_eq!(v.to_bits(), vp.to_bits());
            }
            let binom = BinomialScore::new(&cases);
            binom.contributions_into(&g, &mut byte_out);
            prop_assert!(binom.contributions_into_packed(&packed, &mut packed_out));
            prop_assert_eq!(&byte_out, &packed_out);
        }

        /// The O(n) `permuted` agrees with rebuilding from the shuffled
        /// phenotypes (up to FP summation order within time ties).
        #[test]
        fn prop_cox_permuted_equals_fresh_sort(
            raw in proptest::collection::vec((0u8..20, any::<bool>(), 0u8..3), 2..40),
            seed in any::<u64>()
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            // Coarse times force ties, the case where the relabeled order
            // can differ from a fresh sort.
            let ph: Vec<Survival> = raw.iter()
                .map(|&(t, e, _)| Survival { time: f64::from(t) / 4.0, event: e })
                .collect();
            let g: Vec<u8> = raw.iter().map(|&(_, _, d)| d).collect();
            let model = CoxScore::new(&ph);
            let mut perm: Vec<usize> = (0..raw.len()).collect();
            perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
            let fast = model.permuted(&perm);
            let shuffled: Vec<Survival> = perm.iter().map(|&p| ph[p]).collect();
            let fresh = CoxScore::new(&shuffled);
            prop_assert_eq!(&fast.rank_end, &fresh.rank_end);
            let a = fast.contributions(&g);
            let b = fresh.contributions(&g);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }

        /// Gaussian residual centering makes constant genotypes score zero.
        #[test]
        fn prop_gaussian_constant_genotype_zero(
            y in proptest::collection::vec(-100.0f64..100.0, 1..50),
            dose in 0u8..3
        ) {
            let model = GaussianScore::new(&y);
            let g = vec![dose; y.len()];
            prop_assert!(model.score(&g).abs() < 1e-7 * (1.0 + y.len() as f64));
        }
    }
}
