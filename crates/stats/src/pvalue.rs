//! Empirical p-values from resampling replicates.
//!
//! "The smaller the proportion of resampling statistics found to be greater
//! than the observed statistic, the stronger the evidence" — the p-value of
//! set `k` is the fraction of replicates with `S̃_k ≥ S_k`. We use the
//! add-one (Davison–Hinkley) estimator `(#{S̃ ≥ S} + 1)/(B + 1)`, which is
//! never exactly zero and is valid as a p-value. The Westfall–Young
//! max-statistic procedure (the paper's reference [40]) gives family-wise
//! error control across the K sets from the same replicates.

/// Add-one empirical p-value from the count of replicates at least as
/// extreme as the observed statistic.
pub fn empirical_pvalue(count_ge: usize, num_replicates: usize) -> f64 {
    assert!(
        count_ge <= num_replicates,
        "count ({count_ge}) cannot exceed replicates ({num_replicates})"
    );
    (count_ge + 1) as f64 / (num_replicates + 1) as f64
}

/// Per-set p-values from full replicate matrices: `replicates[b][k]` is
/// set `k`'s statistic in replicate `b`.
pub fn empirical_pvalues(observed: &[f64], replicates: &[Vec<f64>]) -> Vec<f64> {
    let b = replicates.len();
    observed
        .iter()
        .enumerate()
        .map(|(k, &s)| {
            let count = replicates
                .iter()
                .filter(|rep| {
                    assert_eq!(rep.len(), observed.len(), "replicate width mismatch");
                    rep[k] >= s
                })
                .count();
            empirical_pvalue(count, b)
        })
        .collect()
}

/// Westfall–Young single-step max-T adjusted p-values:
/// `p̃_k = (#{b : max_j S̃_bj ≥ S_k} + 1)/(B + 1)`.
///
/// Controls the family-wise error rate under the complete null, using the
/// same replicates as the marginal p-values.
pub fn westfall_young_adjusted(observed: &[f64], replicates: &[Vec<f64>]) -> Vec<f64> {
    let maxima: Vec<f64> = replicates
        .iter()
        .map(|rep| {
            assert_eq!(rep.len(), observed.len(), "replicate width mismatch");
            rep.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    let b = maxima.len();
    observed
        .iter()
        .map(|&s| {
            let count = maxima.iter().filter(|&&m| m >= s).count();
            empirical_pvalue(count, b)
        })
        .collect()
}

/// Sequential stopping rule for adaptive multiplier resampling.
///
/// After each round of replicates the rule looks at a set's running
/// exceedance count and decides whether more replicates can still change
/// the answer. A set stops as soon as either
///
/// * the normal-approximation confidence interval around the add-one
///   p-value `p̂` **excludes the significance threshold** `alpha`
///   (curtailed sampling: the significant/not-significant call is already
///   settled at this confidence), or
/// * the interval's half-width has shrunk to the requested precision
///   `half_width` (fixed-width CI: `p̂` itself is pinned down).
///
/// `min_replicates` floors every decision so the asymptotic interval is
/// not trusted on a handful of draws. The guarantee reported alongside an
/// adaptive p-value is [`StoppingRule::ci_half_width`] at stop time: with
/// confidence `~Φ(z)` the true resampling p-value lies within that band.
/// The fixed-B path remains the statistical oracle; tests bound the
/// adaptive-vs-oracle disagreement by the two runs' combined widths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// Replicates a set must accumulate before any stop decision.
    pub min_replicates: usize,
    /// Significance threshold the CI must clear for a curtailed stop.
    pub alpha: f64,
    /// Target CI half-width for a precision stop.
    pub half_width: f64,
    /// Normal quantile scaling the interval (2.0 ≈ 95% coverage).
    pub z: f64,
}

impl StoppingRule {
    /// Rule with the conventional defaults: curtail against `alpha`,
    /// or stop once `p̂` is known to `half_width`, at z = 2 (~95%).
    pub fn new(min_replicates: usize, alpha: f64, half_width: f64) -> Self {
        assert!(min_replicates >= 1, "min_replicates must be >= 1");
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
        assert!(half_width > 0.0, "half_width must be positive");
        Self {
            min_replicates,
            alpha,
            half_width,
            z: 2.0,
        }
    }

    /// Half-width of the normal-approximation CI around the add-one
    /// p-value after `num_replicates` replicates with `count_ge`
    /// exceedances: `z · sqrt(p̂(1−p̂)/t)`.
    pub fn ci_half_width(&self, count_ge: usize, num_replicates: usize) -> f64 {
        let p = empirical_pvalue(count_ge, num_replicates);
        self.z * (p * (1.0 - p) / num_replicates as f64).sqrt()
    }

    /// Whether a set with this running count may stop sampling.
    pub fn decided(&self, count_ge: usize, num_replicates: usize) -> bool {
        if num_replicates < self.min_replicates {
            return false;
        }
        let p = empirical_pvalue(count_ge, num_replicates);
        let w = self.ci_half_width(count_ge, num_replicates);
        (p - w > self.alpha) || (p + w < self.alpha) || w <= self.half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_one_estimator() {
        assert_eq!(empirical_pvalue(0, 99), 0.01);
        assert_eq!(empirical_pvalue(99, 99), 1.0);
        assert_eq!(empirical_pvalue(4, 9), 0.5);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn count_bounds_checked() {
        let _ = empirical_pvalue(5, 4);
    }

    #[test]
    fn pvalues_from_replicates() {
        let observed = vec![10.0, 0.0];
        let reps = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![11.0, 0.0]];
        let p = empirical_pvalues(&observed, &reps);
        // Set 0: one replicate >= 10 → (1+1)/4. Set 1: all >= 0 → 4/4.
        assert_eq!(p, vec![0.5, 1.0]);
    }

    #[test]
    fn westfall_young_dominates_marginal() {
        let observed = vec![5.0, 2.0, 8.0];
        let reps: Vec<Vec<f64>> = (0..50)
            .map(|b| vec![(b % 7) as f64, (b % 5) as f64, (b % 9) as f64])
            .collect();
        let marginal = empirical_pvalues(&observed, &reps);
        let adjusted = westfall_young_adjusted(&observed, &reps);
        for (m, a) in marginal.iter().zip(&adjusted) {
            assert!(a >= m, "adjusted {a} must be >= marginal {m}");
        }
    }

    #[test]
    fn stopping_rule_respects_min_replicates() {
        let rule = StoppingRule::new(50, 0.05, 0.01);
        // A wildly non-significant count, but below the floor: no stop.
        assert!(!rule.decided(20, 40));
        // Same proportion past the floor: CI [p̂ ± w] sits far above alpha.
        assert!(rule.decided(30, 60));
    }

    #[test]
    fn stopping_rule_curtails_extremes_but_not_the_boundary() {
        let rule = StoppingRule::new(50, 0.05, 0.01);
        // Clearly significant: zero exceedances in 100 → p̂ ≈ 0.0099,
        // CI upper end < alpha.
        assert!(rule.decided(0, 100));
        // Clearly null: all exceedances → p̂ = 1, zero-width CI.
        assert!(rule.decided(100, 100));
        // Right at alpha: p̂ ≈ 0.05 with t=100 → CI straddles alpha and
        // the half-width (~0.044) is far from the 0.01 target.
        assert!(!rule.decided(4, 100));
    }

    #[test]
    fn stopping_rule_precision_stop() {
        // alpha sits on top of p̂ = 0.5 so curtailment can never fire and
        // only the precision criterion decides.
        let rule = StoppingRule::new(50, 0.5, 0.02);
        // p̂ = 0.5 has maximal variance: needs t >= z²·p(1−p)/w² = 2500.
        assert!(!rule.decided(1000, 2000));
        assert!(rule.decided(1250, 2500));
    }

    proptest! {
        /// p-values lie in (0, 1] and are antitone in the observed value.
        #[test]
        fn prop_pvalue_bounds_and_monotonicity(
            reps in proptest::collection::vec(
                proptest::collection::vec(0.0f64..10.0, 3..=3), 1..40),
            s in 0.0f64..10.0,
        ) {
            let p_lo = empirical_pvalues(&[s, s, s], &reps);
            let p_hi = empirical_pvalues(&[s + 1.0, s + 1.0, s + 1.0], &reps);
            for (lo, hi) in p_lo.iter().zip(&p_hi) {
                prop_assert!(*lo > 0.0 && *lo <= 1.0);
                prop_assert!(hi <= lo, "larger statistic can't raise the p-value");
            }
        }

        /// Adjusted p-values are monotone in the observed statistic too.
        #[test]
        fn prop_wy_bounds(
            reps in proptest::collection::vec(
                proptest::collection::vec(-5.0f64..5.0, 2..=2), 1..30),
            observed in proptest::collection::vec(-5.0f64..5.0, 2..=2),
        ) {
            let adj = westfall_young_adjusted(&observed, &reps);
            for a in adj {
                prop_assert!(a > 0.0 && a <= 1.0);
            }
        }
    }
}
