//! Empirical p-values from resampling replicates.
//!
//! "The smaller the proportion of resampling statistics found to be greater
//! than the observed statistic, the stronger the evidence" — the p-value of
//! set `k` is the fraction of replicates with `S̃_k ≥ S_k`. We use the
//! add-one (Davison–Hinkley) estimator `(#{S̃ ≥ S} + 1)/(B + 1)`, which is
//! never exactly zero and is valid as a p-value. The Westfall–Young
//! max-statistic procedure (the paper's reference [40]) gives family-wise
//! error control across the K sets from the same replicates.

/// Add-one empirical p-value from the count of replicates at least as
/// extreme as the observed statistic.
pub fn empirical_pvalue(count_ge: usize, num_replicates: usize) -> f64 {
    assert!(
        count_ge <= num_replicates,
        "count ({count_ge}) cannot exceed replicates ({num_replicates})"
    );
    (count_ge + 1) as f64 / (num_replicates + 1) as f64
}

/// Per-set p-values from full replicate matrices: `replicates[b][k]` is
/// set `k`'s statistic in replicate `b`.
pub fn empirical_pvalues(observed: &[f64], replicates: &[Vec<f64>]) -> Vec<f64> {
    let b = replicates.len();
    observed
        .iter()
        .enumerate()
        .map(|(k, &s)| {
            let count = replicates
                .iter()
                .filter(|rep| {
                    assert_eq!(rep.len(), observed.len(), "replicate width mismatch");
                    rep[k] >= s
                })
                .count();
            empirical_pvalue(count, b)
        })
        .collect()
}

/// Westfall–Young single-step max-T adjusted p-values:
/// `p̃_k = (#{b : max_j S̃_bj ≥ S_k} + 1)/(B + 1)`.
///
/// Controls the family-wise error rate under the complete null, using the
/// same replicates as the marginal p-values.
pub fn westfall_young_adjusted(observed: &[f64], replicates: &[Vec<f64>]) -> Vec<f64> {
    let maxima: Vec<f64> = replicates
        .iter()
        .map(|rep| {
            assert_eq!(rep.len(), observed.len(), "replicate width mismatch");
            rep.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    let b = maxima.len();
    observed
        .iter()
        .map(|&s| {
            let count = maxima.iter().filter(|&&m| m >= s).count();
            empirical_pvalue(count, b)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_one_estimator() {
        assert_eq!(empirical_pvalue(0, 99), 0.01);
        assert_eq!(empirical_pvalue(99, 99), 1.0);
        assert_eq!(empirical_pvalue(4, 9), 0.5);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn count_bounds_checked() {
        let _ = empirical_pvalue(5, 4);
    }

    #[test]
    fn pvalues_from_replicates() {
        let observed = vec![10.0, 0.0];
        let reps = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![11.0, 0.0]];
        let p = empirical_pvalues(&observed, &reps);
        // Set 0: one replicate >= 10 → (1+1)/4. Set 1: all >= 0 → 4/4.
        assert_eq!(p, vec![0.5, 1.0]);
    }

    #[test]
    fn westfall_young_dominates_marginal() {
        let observed = vec![5.0, 2.0, 8.0];
        let reps: Vec<Vec<f64>> = (0..50)
            .map(|b| vec![(b % 7) as f64, (b % 5) as f64, (b % 9) as f64])
            .collect();
        let marginal = empirical_pvalues(&observed, &reps);
        let adjusted = westfall_young_adjusted(&observed, &reps);
        for (m, a) in marginal.iter().zip(&adjusted) {
            assert!(a >= m, "adjusted {a} must be >= marginal {m}");
        }
    }

    proptest! {
        /// p-values lie in (0, 1] and are antitone in the observed value.
        #[test]
        fn prop_pvalue_bounds_and_monotonicity(
            reps in proptest::collection::vec(
                proptest::collection::vec(0.0f64..10.0, 3..=3), 1..40),
            s in 0.0f64..10.0,
        ) {
            let p_lo = empirical_pvalues(&[s, s, s], &reps);
            let p_hi = empirical_pvalues(&[s + 1.0, s + 1.0, s + 1.0], &reps);
            for (lo, hi) in p_lo.iter().zip(&p_hi) {
                prop_assert!(*lo > 0.0 && *lo <= 1.0);
                prop_assert!(hi <= lo, "larger statistic can't raise the p-value");
            }
        }

        /// Adjusted p-values are monotone in the observed statistic too.
        #[test]
        fn prop_wy_bounds(
            reps in proptest::collection::vec(
                proptest::collection::vec(-5.0f64..5.0, 2..=2), 1..30),
            observed in proptest::collection::vec(-5.0f64..5.0, 2..=2),
        ) {
            let adj = westfall_young_adjusted(&observed, &reps);
            for a in adj {
                prop_assert!(a > 0.0 && a <= 1.0);
            }
        }
    }
}
