//! Bit kernels: QC counting and score accumulation directly on 2-bit
//! packed genotype columns — no byte materialization.
//!
//! A packed column (PLINK-style, see `sparkscore_data::packed`) stores
//! four codes per byte, patient `i` in bits `2·(i % 4)` of byte `i / 4`;
//! codes 0/1/2 are dosages and `0b11` marks a missing call. Loaded as
//! little-endian u64 words, 32 patients sit in each word, and with
//! `lo = w & 0x5555…` (the low bit of every slot) and `hi = (w >> 1) &
//! 0x5555…` the genotype classes fall out of three popcounts:
//!
//! * heterozygous (`0b01`):   `popcount(lo & !hi)`
//! * homozygous-alt (`0b10`): `popcount(hi & !lo)`
//! * missing (`0b11`):        `popcount(lo & hi)`
//! * dosage sum:              `het + 2·hom_alt`
//!
//! Homozygous-ref is derived as `n − het − hom_alt − missing`, and the
//! padding slots of the last partial byte are masked to zero before
//! counting, so neither the `0b00` padding nor a dirty packer can leak
//! into the counts.
//!
//! `std::simd` is nightly-only, so the word pass is an explicit u64×4
//! unroll with independent accumulator lanes (the popcounts of
//! neighbouring words don't serialize on one add chain); missing codes
//! are handled by sparse fixup loops over the missing mask, so fully
//! typed columns pay nothing for the missing branch.
//!
//! Every kernel here is verified against the byte oracles: integer
//! counts bitwise, f64 sums exactly under the documented accumulation
//! order (see the proptests at the bottom).

/// Bit 0 of every 2-bit slot in a word.
const LO_BITS: u64 = 0x5555_5555_5555_5555;

/// Genotype-class counts of one packed column, straight from the
/// popcount pass. `hom_ref` excludes both missing calls and the padding
/// slots of the last partial byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedCounts {
    pub hom_ref: usize,
    pub het: usize,
    pub hom_alt: usize,
    pub missing: usize,
}

impl PackedCounts {
    /// Patients with a called genotype.
    #[inline]
    pub fn non_missing(&self) -> usize {
        self.hom_ref + self.het + self.hom_alt
    }

    /// `Σ g_i` over non-missing patients — exact, since dosages are
    /// integers: `het + 2·hom_alt`.
    #[inline]
    pub fn dosage_sum(&self) -> u64 {
        self.het as u64 + 2 * self.hom_alt as u64
    }
}

/// `(lo, hi)` bit planes of a word of 16 packed codes × 4 bytes.
#[inline]
fn split(word: u64) -> (u64, u64) {
    (word & LO_BITS, (word >> 1) & LO_BITS)
}

#[inline]
fn load_word(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte word"))
}

/// Split a column into its fully valid body and, when `n % 4 != 0`, the
/// last byte with the padding slots masked to zero.
#[inline]
fn split_tail(packed: &[u8], n: usize) -> (&[u8], Option<u8>) {
    debug_assert_eq!(packed.len(), n.div_ceil(4));
    if n.is_multiple_of(4) {
        (packed, None)
    } else {
        let (body, last) = packed.split_at(packed.len() - 1);
        (body, Some(last[0] & ((1u8 << (2 * (n % 4))) - 1)))
    }
}

/// Drive `f(base_patient_index, word)` over the column as little-endian
/// u64 words of 32 slots, tail zero-padded and padding slots masked.
#[inline]
fn for_each_word(packed: &[u8], n: usize, mut f: impl FnMut(usize, u64)) {
    let (body, last) = split_tail(packed, n);
    let mut words = body.chunks_exact(8);
    let mut base = 0usize;
    for w in words.by_ref() {
        f(base, load_word(w));
        base += 32;
    }
    let rest = words.remainder();
    if !rest.is_empty() || last.is_some() {
        let mut buf = [0u8; 8];
        buf[..rest.len()].copy_from_slice(rest);
        if let Some(b) = last {
            buf[rest.len()] = b;
        }
        f(base, load_word(&buf));
    }
}

#[inline]
fn accumulate(word: u64, het: &mut u64, hom: &mut u64, mis: &mut u64) {
    let (lo, hi) = split(word);
    *het += (lo & !hi).count_ones() as u64;
    *hom += (hi & !lo).count_ones() as u64;
    *mis += (lo & hi).count_ones() as u64;
}

/// Walk the set slots of a 2-bit-slot mask (bits only at even
/// positions), calling `f` with each slot's patient index.
#[inline]
fn for_each_slot(mut mask: u64, base: usize, mut f: impl FnMut(usize)) {
    while mask != 0 {
        f(base + (mask.trailing_zeros() / 2) as usize);
        mask &= mask - 1;
    }
}

/// Count genotype classes of a packed column of `n` patients in one
/// popcount pass over the words — the packed-direct substrate for
/// `GenotypeCounts`/MAF/HWE QC.
pub fn count_codes(packed: &[u8], n: usize) -> PackedCounts {
    assert_eq!(packed.len(), n.div_ceil(4), "packed column length mismatch");
    let (body, last) = split_tail(packed, n);
    // u64×4 unroll: four independent accumulator lanes per class.
    let mut het = [0u64; 4];
    let mut hom = [0u64; 4];
    let mut mis = [0u64; 4];
    let mut quads = body.chunks_exact(32);
    for quad in quads.by_ref() {
        for (k, w) in quad.chunks_exact(8).enumerate() {
            accumulate(load_word(w), &mut het[k], &mut hom[k], &mut mis[k]);
        }
    }
    let mut words = quads.remainder().chunks_exact(8);
    for w in words.by_ref() {
        accumulate(load_word(w), &mut het[0], &mut hom[0], &mut mis[0]);
    }
    let rest = words.remainder();
    if !rest.is_empty() || last.is_some() {
        let mut buf = [0u8; 8];
        buf[..rest.len()].copy_from_slice(rest);
        if let Some(b) = last {
            buf[rest.len()] = b;
        }
        accumulate(load_word(&buf), &mut het[0], &mut hom[0], &mut mis[0]);
    }
    let het: u64 = het.iter().sum();
    let hom: u64 = hom.iter().sum();
    let mis: u64 = mis.iter().sum();
    PackedCounts {
        hom_ref: n - (het + hom + mis) as usize,
        het: het as usize,
        hom_alt: hom as usize,
        missing: mis as usize,
    }
}

/// `Σ g_i` over non-missing patients — the burden / allele-count
/// numerator, via the popcount identity `het + 2·hom_alt`.
pub fn dosage_sum(packed: &[u8], n: usize) -> u64 {
    count_codes(packed, n).dosage_sum()
}

/// Dosage dot-product `Σ_i g_i·x_i` over non-missing patients, computed
/// as `Σ_{het carriers} x_i + 2·Σ_{hom-alt carriers} x_i` — carrier sets
/// come from the word masks and are walked sparsely, so cost scales with
/// carrier count, not cohort size, and missing calls are excluded by
/// construction (no fixup needed).
///
/// Accumulation order is fixed: ascending-index sum over het carriers,
/// plus `2.0 ×` the ascending-index sum over hom-alt carriers. Oracles
/// built with the same order compare exactly.
pub fn dot_dosage(packed: &[u8], x: &[f64]) -> f64 {
    let n = x.len();
    assert_eq!(packed.len(), n.div_ceil(4), "packed column length mismatch");
    let mut het_sum = 0.0f64;
    let mut hom_sum = 0.0f64;
    for_each_word(packed, n, |base, w| {
        let (lo, hi) = split(w);
        for_each_slot(lo & !hi, base, |i| het_sum += x[i]);
        for_each_slot(hi & !lo, base, |i| hom_sum += x[i]);
    });
    het_sum + 2.0 * hom_sum
}

/// Centered-residual contributions `out[i] = r_i (g_i − ḡ)` straight
/// from the packed column — the packed-direct twin of the byte kernel
/// behind the Gaussian/binomial `contributions_into` (whose per-patient
/// contribution is affine in dosage, so a 4-entry table indexed by the
/// 2-bit code replaces the unpack).
///
/// When the column has no missing calls this is bitwise identical to the
/// byte path: the dosage sum is the same u64 popcount total, the mean the
/// same division, and `table[g] = f64::from(g) − ḡ` the same subtraction
/// the byte kernel performs inline. Missing calls (which the byte kernel
/// rejects) are handled here: the mean is taken over called genotypes
/// and a sparse fixup pass over the missing mask zeroes those patients'
/// contributions (a missing call carries no information), so fully typed
/// columns pay nothing for the branch.
pub fn residual_contributions_packed(residuals: &[f64], packed: &[u8], out: &mut [f64]) {
    let n = residuals.len();
    assert_eq!(out.len(), n, "output vector length mismatch");
    assert_eq!(packed.len(), n.div_ceil(4), "packed column length mismatch");
    let counts = count_codes(packed, n);
    if counts.non_missing() == 0 {
        // Fully missing column: no genotype information at all.
        out.fill(0.0);
        return;
    }
    let g_mean = counts.dosage_sum() as f64 / counts.non_missing() as f64;
    // table[code] = f64::from(code) − ḡ, bit-for-bit what the byte kernel
    // computes inline; the missing slot is a placeholder the fixup pass
    // overwrites.
    let table = [0.0 - g_mean, 1.0 - g_mean, 2.0 - g_mean, f64::NAN];
    let mut quads = out.chunks_exact_mut(4);
    let mut r_quads = residuals.chunks_exact(4);
    let mut bytes = packed.iter();
    for quad in quads.by_ref() {
        let r = r_quads.next().expect("residual quad");
        let b = *bytes.next().expect("stride covers all full quads");
        quad[0] = r[0] * table[(b & 0b11) as usize];
        quad[1] = r[1] * table[((b >> 2) & 0b11) as usize];
        quad[2] = r[2] * table[((b >> 4) & 0b11) as usize];
        quad[3] = r[3] * table[(b >> 6) as usize];
    }
    let rest = quads.into_remainder();
    if !rest.is_empty() {
        let r = r_quads.remainder();
        let b = *bytes.next().expect("stride covers the remainder");
        for (i, (o, ri)) in rest.iter_mut().zip(r).enumerate() {
            *o = ri * table[((b >> (2 * i)) & 0b11) as usize];
        }
    }
    if counts.missing > 0 {
        for_each_word(packed, n, |base, w| {
            let (lo, hi) = split(w);
            for_each_slot(lo & hi, base, |i| out[i] = 0.0);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Pack a byte dosage vector the same way `GenotypeBlock::push_row`
    /// does (kept local: `sparkscore-data` depends on this crate, not the
    /// other way around).
    fn pack(dosages: &[u8]) -> Vec<u8> {
        let mut data = vec![0u8; dosages.len().div_ceil(4)];
        for (i, &d) in dosages.iter().enumerate() {
            assert!(d <= 3);
            data[i / 4] |= d << (2 * (i % 4));
        }
        data
    }

    fn byte_counts(g: &[u8]) -> PackedCounts {
        let mut c = PackedCounts::default();
        for &d in g {
            match d {
                0 => c.hom_ref += 1,
                1 => c.het += 1,
                2 => c.hom_alt += 1,
                _ => c.missing += 1,
            }
        }
        c
    }

    /// Same accumulation order as `dot_dosage`: ascending het sum plus
    /// 2 × ascending hom-alt sum.
    fn byte_dot(g: &[u8], x: &[f64]) -> f64 {
        let het: f64 = g
            .iter()
            .zip(x)
            .filter(|(&d, _)| d == 1)
            .map(|(_, &xi)| xi)
            .sum();
        let hom: f64 = g
            .iter()
            .zip(x)
            .filter(|(&d, _)| d == 2)
            .map(|(_, &xi)| xi)
            .sum();
        het + 2.0 * hom
    }

    /// Byte reference for the packed contributions kernel with the same
    /// mean definition (called genotypes only) and write rule.
    fn byte_contributions(residuals: &[f64], g: &[u8]) -> Vec<f64> {
        let called: Vec<u64> = g
            .iter()
            .filter(|&&d| d < 3)
            .map(|&d| u64::from(d))
            .collect();
        if called.is_empty() {
            return vec![0.0; g.len()];
        }
        let mean = called.iter().sum::<u64>() as f64 / called.len() as f64;
        residuals
            .iter()
            .zip(g)
            .map(|(r, &d)| {
                if d < 3 {
                    r * (f64::from(d) - mean)
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn counts_cover_awkward_tail_lengths() {
        // n ∈ {0, 1, 3, 4, 5, 64, 65}: empty, sub-byte, byte-exact,
        // byte+1, word-exact, word+1.
        for n in [0usize, 1, 3, 4, 5, 64, 65] {
            let g: Vec<u8> = (0..n).map(|i| (i % 4) as u8).collect();
            let packed = pack(&g);
            assert_eq!(count_codes(&packed, n), byte_counts(&g), "n={n}");
        }
    }

    #[test]
    fn padding_slots_cannot_leak_into_counts() {
        // A dirty last byte: pack 5 patients, then set the 3 padding
        // slots of byte 1 to garbage. The tail mask must hide them.
        let g = [1u8, 2, 3, 0, 2];
        let mut packed = pack(&g);
        packed[1] |= 0b1111_1100;
        assert_eq!(count_codes(&packed, 5), byte_counts(&g));
        assert_eq!(dosage_sum(&packed, 5), 1 + 2 + 2);
    }

    #[test]
    fn all_missing_column_counts_and_contributes_zero() {
        let n = 37;
        let g = vec![3u8; n];
        let packed = pack(&g);
        let c = count_codes(&packed, n);
        assert_eq!(c.missing, n);
        assert_eq!(c.non_missing(), 0);
        assert_eq!(c.dosage_sum(), 0);
        let residuals: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut out = vec![f64::NAN; n];
        residual_contributions_packed(&residuals, &packed, &mut out);
        assert_eq!(out, vec![0.0; n]);
    }

    #[test]
    fn dot_dosage_empty_and_tiny() {
        assert_eq!(dot_dosage(&[], &[]), 0.0);
        assert_eq!(dot_dosage(&pack(&[2]), &[1.5]), 3.0);
        assert_eq!(dot_dosage(&pack(&[3]), &[1.5]), 0.0);
    }

    proptest! {
        /// Popcount counts equal the byte-loop oracle across random
        /// missingness and every tail length.
        #[test]
        fn prop_count_codes_equals_byte_oracle(
            g in proptest::collection::vec(0u8..4, 0..200)
        ) {
            let packed = pack(&g);
            prop_assert_eq!(count_codes(&packed, g.len()), byte_counts(&g));
        }

        /// The sparse dot-product matches a byte oracle with the same
        /// accumulation order exactly, and the dense naive sum closely.
        #[test]
        fn prop_dot_dosage_exact(
            pairs in proptest::collection::vec((0u8..4, -10.0f64..10.0), 0..150)
        ) {
            let g: Vec<u8> = pairs.iter().map(|&(d, _)| d).collect();
            let x: Vec<f64> = pairs.iter().map(|&(_, v)| v).collect();
            let packed = pack(&g);
            let direct = dot_dosage(&packed, &x);
            prop_assert_eq!(direct, byte_dot(&g, &x));
            let naive: f64 = g.iter().zip(&x)
                .filter(|(&d, _)| d < 3)
                .map(|(&d, &xi)| f64::from(d) * xi)
                .sum();
            prop_assert!((direct - naive).abs() <= 1e-9 * (1.0 + naive.abs()));
        }

        /// Packed-direct contributions equal the byte reference exactly
        /// under random missingness, and dosage_sum matches the integer
        /// oracle.
        #[test]
        fn prop_contributions_and_sum_equal_oracle(
            pairs in proptest::collection::vec((0u8..4, -5.0f64..5.0), 0..150)
        ) {
            let g: Vec<u8> = pairs.iter().map(|&(d, _)| d).collect();
            let r: Vec<f64> = pairs.iter().map(|&(_, v)| v).collect();
            let packed = pack(&g);
            prop_assert_eq!(dosage_sum(&packed, g.len()), byte_counts(&g).dosage_sum());
            let mut out = vec![f64::NAN; g.len()];
            residual_contributions_packed(&r, &packed, &mut out);
            prop_assert_eq!(out, byte_contributions(&r, &g));
        }
    }
}
