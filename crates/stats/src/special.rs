//! Special functions, implemented from scratch.
//!
//! The inference layer needs the Gaussian error function (normal CDF), the
//! log-gamma function, and the regularized incomplete gamma function
//! (chi-square CDF). Implementations follow the classical numerics
//! literature (Lanczos approximation; series and continued-fraction
//! expansions of the incomplete gamma function per Numerical Recipes §6.2)
//! and are accurate to well beyond the 1e-10 the tests assert.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 over the positive reals. Panics for `x <= 0` — the
/// callers only evaluate at positive shape parameters.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut term = 1.0 / a;
    let mut sum = term;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's algorithm for the continued fraction of Q(a, x).
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function, via the incomplete gamma identity
/// `erf(x) = P(1/2, x²)` for `x ≥ 0`.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x == 0.0 {
        0.0
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Complementary error function `1 − erf(x)`, accurate in the far tail.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x == 0.0 {
        1.0
    } else {
        gamma_q(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "{a} vs {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-12); // Γ(5)=4!
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(n + 1/2) = (2n)!·√π / (4ⁿ·n!) at n = 10, computed exactly.
        let fact = |n: u64| (2..=n).map(|k| (k as f64).ln()).sum::<f64>();
        let expected = fact(20) + 0.5 * std::f64::consts::PI.ln() - 10.0 * 4.0f64.ln() - fact(10);
        close(ln_gamma(10.5), expected, 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x+1) = ln x + ln Γ(x)
        for &x in &[0.3, 1.7, 4.2, 25.0, 120.5] {
            close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-11);
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // Chi-square_1 CDF at its median ≈ 0.4549.
        close(gamma_p(0.5, 0.454_936_423_119_572_8 / 2.0), 0.5, 1e-9);
        close(gamma_p(0.5, 0.0), 0.0, 1e-15);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 42.0] {
            for &x in &[0.01, 0.5, 1.0, 5.0, 50.0] {
                close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-8);
    }

    #[test]
    fn erfc_far_tail_is_positive_and_tiny() {
        let v = erfc(8.0);
        assert!(v > 0.0 && v < 1e-25, "erfc(8) = {v}");
    }

    proptest! {
        #[test]
        fn prop_gamma_p_monotone_in_x(a in 0.1f64..20.0, x in 0.0f64..30.0, dx in 0.001f64..5.0) {
            prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12);
        }

        #[test]
        fn prop_gamma_p_bounded(a in 0.1f64..50.0, x in 0.0f64..100.0) {
            let p = gamma_p(a, x);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "P({a},{x}) = {p}");
        }

        #[test]
        fn prop_erf_odd_and_bounded(x in -6.0f64..6.0) {
            let v = erf(x);
            prop_assert!((-1.0..=1.0).contains(&v));
            prop_assert!((erf(-x) + v).abs() < 1e-12);
        }
    }
}
