//! Statistical machinery for genomic inference with efficient score
//! statistics — the mathematical core of the SparkScore paper.
//!
//! * [`score`] — the efficient score models: Cox proportional hazards for
//!   censored survival (the paper's running example, with the O(n)-per-SNP
//!   risk-set-prefix evaluation), Gaussian for quantitative traits (eQTL),
//!   and binomial for case/control phenotypes.
//! * [`skat`] — SNP-set combination: SKAT `Σ ω_j² U_j²` and the weighted
//!   burden alternative.
//! * [`resample`] — sequential reference implementations of the paper's
//!   Algorithm 1 (observed statistics), Algorithm 2 (permutation
//!   resampling), and Algorithm 3 (Lin's Monte Carlo multipliers).
//! * [`pvalue`] — add-one empirical p-values and Westfall–Young max-T
//!   family-wise adjustment.
//! * [`asymptotic`] — the χ²₁ score test and Liu moment-matching SKAT
//!   p-values (the large-sample approximations resampling replaces when
//!   regularity fails).
//! * [`bitkern`] — popcount/word kernels that compute QC counts and
//!   affine score contributions directly on 2-bit packed genotype
//!   columns, never materializing bytes.
//! * [`dist`] / [`special`] — distributions, samplers, and the special
//!   functions behind them, implemented from scratch.
//!
//! # Example: a tiny survival analysis
//!
//! ```
//! use sparkscore_stats::score::{CoxScore, ScoreModel, Survival};
//! use sparkscore_stats::skat::SnpSet;
//! use sparkscore_stats::resample::monte_carlo;
//!
//! let phenotypes = vec![
//!     Survival::event_at(3.0),
//!     Survival::censored_at(9.0),
//!     Survival::event_at(1.5),
//!     Survival::event_at(7.0),
//! ];
//! let genotype_rows = vec![vec![0u8, 1, 2, 1], vec![2u8, 0, 1, 0]];
//! let weights = vec![1.0, 1.0];
//! let sets = vec![SnpSet::new(0, vec![0, 1])];
//! let model = CoxScore::new(&phenotypes);
//! let result = monte_carlo(&model, &genotype_rows, &weights, &sets, 99, 42);
//! let p = result.pvalues()[0];
//! assert!(p > 0.0 && p <= 1.0);
//! ```

pub mod asymptotic;
pub mod bitkern;
pub mod covariates;
pub mod dist;
pub mod exact;
pub mod ld;
pub mod linalg;
pub mod power;
pub mod pvalue;
pub mod qc;
pub mod resample;
pub mod score;
pub mod scratch;
pub mod skat;
pub mod special;

pub use covariates::AdjustedGaussianScore;
pub use linalg::{perturb_rows_blocked, perturb_scores_blocked};
pub use pvalue::StoppingRule;
pub use resample::{
    monte_carlo, monte_carlo_adaptive, monte_carlo_blocked, monte_carlo_per_iteration,
    observed_scores, observed_skat, permutation, AdaptiveResult, ResamplingResult, MC_TILE,
};
pub use score::{BinomialScore, CoxScore, GaussianScore, ScoreModel, Survival, MISSING_DOSAGE};
pub use skat::{burden_statistic, skat_all, skat_statistic, SnpSet};
