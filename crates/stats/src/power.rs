//! Simulation-based power and type-I-error estimation for survival GWAS
//! designs.
//!
//! The paper's authors maintain dedicated methodology for exactly this
//! (references [25]/[26]: "Power and sample size calculations for SNP
//! association studies with censored time-to-event outcomes"). This module
//! provides the simulation estimator: draw cohorts from the §III
//! generative model with a planted per-allele hazard ratio, run the
//! marginal score test, and report the rejection rate. With hazard ratio
//! 1.0 the same routine estimates the test's type-I error — the quantity
//! whose inflation under asymptotics motivates resampling in the first
//! place.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::asymptotic::score_test_pvalue;
use crate::dist::{sample_bernoulli, sample_exponential, sample_genotype};
use crate::score::{score_and_variance, CoxScore, ScoreModel, Survival};

/// A single-SNP survival study design.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalDesign {
    /// Cohort size.
    pub patients: usize,
    /// Minor-allele frequency of the tested SNP.
    pub maf: f64,
    /// Mean survival time for non-carriers (months; paper uses 12).
    pub mean_survival: f64,
    /// Event (death observed) probability (paper uses 0.85).
    pub event_rate: f64,
    /// Per-allele hazard ratio; 1.0 is the null.
    pub hazard_ratio: f64,
}

impl SurvivalDesign {
    pub fn null(patients: usize, maf: f64) -> Self {
        SurvivalDesign {
            patients,
            maf,
            mean_survival: 12.0,
            event_rate: 0.85,
            hazard_ratio: 1.0,
        }
    }

    pub fn with_hazard_ratio(mut self, hr: f64) -> Self {
        assert!(hr > 0.0, "hazard ratio must be positive");
        self.hazard_ratio = hr;
        self
    }

    fn validate(&self) {
        assert!(self.patients > 1, "need at least two patients");
        assert!(
            self.maf > 0.0 && self.maf < 1.0,
            "MAF must be strictly inside (0, 1)"
        );
        assert!(self.mean_survival > 0.0);
        assert!((0.0..=1.0).contains(&self.event_rate));
        assert!(self.hazard_ratio > 0.0);
    }
}

/// Result of a power simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Fraction of simulated studies rejecting at the given level.
    pub power: f64,
    /// Number of simulated studies.
    pub simulations: usize,
    /// Monte Carlo standard error of `power`.
    pub standard_error: f64,
}

/// Estimate the rejection rate of the asymptotic marginal score test at
/// level `alpha` under `design`, over `simulations` simulated cohorts.
pub fn estimate_power(
    design: &SurvivalDesign,
    alpha: f64,
    simulations: usize,
    seed: u64,
) -> PowerEstimate {
    design.validate();
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "bad alpha");
    assert!(simulations > 0, "need at least one simulation");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rejections = 0usize;
    for _ in 0..simulations {
        let (phenotypes, genotypes) = simulate_cohort(design, &mut rng);
        let model = CoxScore::new(&phenotypes);
        let (u, v) = score_and_variance(&model.contributions(&genotypes));
        if score_test_pvalue(u, v) < alpha {
            rejections += 1;
        }
    }
    let power = rejections as f64 / simulations as f64;
    PowerEstimate {
        power,
        simulations,
        standard_error: (power * (1.0 - power) / simulations as f64).sqrt(),
    }
}

fn simulate_cohort(design: &SurvivalDesign, rng: &mut StdRng) -> (Vec<Survival>, Vec<u8>) {
    let mut phenotypes = Vec::with_capacity(design.patients);
    let mut genotypes = Vec::with_capacity(design.patients);
    for _ in 0..design.patients {
        let g = sample_genotype(rng, design.maf);
        // Each allele copy multiplies the hazard: exponential rate scales.
        let rate = design.hazard_ratio.powi(i32::from(g)) / design.mean_survival;
        phenotypes.push(Survival {
            time: sample_exponential(rng, rate),
            event: sample_bernoulli(rng, design.event_rate),
        });
        genotypes.push(g);
    }
    (phenotypes, genotypes)
}

/// Smallest cohort size whose estimated power reaches `target`, searched
/// over doubling steps then bisection. Returns `None` if `max_patients`
/// is insufficient.
pub fn required_sample_size(
    base: &SurvivalDesign,
    target_power: f64,
    alpha: f64,
    simulations: usize,
    max_patients: usize,
    seed: u64,
) -> Option<usize> {
    assert!((0.0..1.0).contains(&target_power) && target_power > 0.0);
    let power_at = |n: usize| {
        let design = SurvivalDesign {
            patients: n,
            ..base.clone()
        };
        estimate_power(&design, alpha, simulations, seed).power
    };
    // Exponential search for an upper bracket.
    let mut lo = 2usize;
    let mut hi = base.patients.max(4);
    while power_at(hi) < target_power {
        lo = hi;
        hi *= 2;
        if hi > max_patients {
            return None;
        }
    }
    // Bisection to ~10% resolution (simulation noise makes finer pointless).
    while hi > lo + lo / 10 + 1 {
        let mid = lo + (hi - lo) / 2;
        if power_at(mid) >= target_power {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_design_is_calibrated() {
        // Under H0 the rejection rate at alpha = 0.05 should be ≈ 0.05.
        let design = SurvivalDesign::null(200, 0.3);
        let est = estimate_power(&design, 0.05, 400, 1);
        assert!(
            (est.power - 0.05).abs() < 0.035,
            "type-I error {} should be near 0.05",
            est.power
        );
        assert!(est.standard_error > 0.0);
    }

    #[test]
    fn strong_effects_have_high_power() {
        let design = SurvivalDesign::null(300, 0.3).with_hazard_ratio(2.0);
        let est = estimate_power(&design, 0.05, 120, 2);
        assert!(
            est.power > 0.9,
            "HR 2.0 at n = 300 must be powered: {}",
            est.power
        );
    }

    #[test]
    fn power_increases_with_sample_size() {
        let small = estimate_power(
            &SurvivalDesign::null(40, 0.3).with_hazard_ratio(1.5),
            0.05,
            250,
            3,
        );
        let large = estimate_power(
            &SurvivalDesign::null(400, 0.3).with_hazard_ratio(1.5),
            0.05,
            250,
            3,
        );
        assert!(
            large.power > small.power + 0.2,
            "power must grow with n: {} vs {}",
            small.power,
            large.power
        );
    }

    #[test]
    fn power_increases_with_effect_size() {
        let weak = estimate_power(
            &SurvivalDesign::null(150, 0.3).with_hazard_ratio(1.2),
            0.05,
            250,
            4,
        );
        let strong = estimate_power(
            &SurvivalDesign::null(150, 0.3).with_hazard_ratio(2.5),
            0.05,
            250,
            4,
        );
        assert!(strong.power > weak.power + 0.3);
    }

    #[test]
    fn required_sample_size_brackets_the_effect() {
        let base = SurvivalDesign::null(50, 0.3).with_hazard_ratio(1.8);
        let n =
            required_sample_size(&base, 0.8, 0.05, 120, 20_000, 5).expect("effect is detectable");
        assert!((10..2000).contains(&n), "implausible sample size {n}");
        // The returned size really achieves the target (same seed).
        let design = SurvivalDesign {
            patients: n,
            ..base
        };
        assert!(estimate_power(&design, 0.05, 120, 5).power >= 0.8);
    }

    #[test]
    fn impossible_target_returns_none() {
        let base = SurvivalDesign::null(10, 0.3).with_hazard_ratio(1.01);
        assert_eq!(required_sample_size(&base, 0.9, 0.05, 60, 300, 6), None);
    }

    #[test]
    #[should_panic(expected = "MAF must be strictly inside")]
    fn degenerate_maf_rejected() {
        let design = SurvivalDesign::null(50, 0.0);
        let _ = estimate_power(&design, 0.05, 10, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let design = SurvivalDesign::null(80, 0.25).with_hazard_ratio(1.5);
        let a = estimate_power(&design, 0.05, 100, 42);
        let b = estimate_power(&design, 0.05, 100, 42);
        assert_eq!(a, b);
    }
}
