//! Linkage disequilibrium (LD): correlation between SNP dosage vectors.
//!
//! The paper's §III notes that "in reality, certain pairs of SNPs would be
//! highly correlated across patients, but here they are generated
//! independently". This module supplies the measurement real analyses use
//! — the squared Pearson correlation `r²` between dosage vectors — plus
//! greedy LD pruning (keep one representative per correlated clique), the
//! standard preprocessing step before set testing, and a correlated-pair
//! generator so tests and examples *can* exercise LD structure the
//! synthetic generator omits.

use rand::Rng;

use crate::dist::sample_bernoulli;

/// Squared Pearson correlation between two dosage vectors.
///
/// Returns 0.0 when either SNP is monomorphic (zero variance): no linear
/// association is measurable, and pruning should never key on it.
pub fn r_squared(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "dosage vectors must align");
    assert!(!a.is_empty(), "need at least one sample");
    let n = a.len() as f64;
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        let (x, y) = (f64::from(x), f64::from(y));
        sa += x;
        sb += y;
        saa += x * x;
        sbb += y * y;
        sab += x * y;
    }
    let var_a = saa - sa * sa / n;
    let var_b = sbb - sb * sb / n;
    if var_a <= 0.0 || var_b <= 0.0 {
        return 0.0;
    }
    let cov = sab - sa * sb / n;
    (cov * cov / (var_a * var_b)).min(1.0)
}

/// Greedy LD pruning: walk SNPs in index order, keep a SNP only if its
/// `r²` with every already-kept SNP within `window` positions is below
/// `threshold`. Returns the kept indices (sorted). This is the classic
/// `--indep-pairwise`-style procedure.
pub fn prune_by_ld(rows: &[Vec<u8>], threshold: f64, window: usize) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be in [0, 1]"
    );
    assert!(window > 0, "window must be positive");
    let mut kept: Vec<usize> = Vec::new();
    for j in 0..rows.len() {
        let in_window = kept
            .iter()
            .rev()
            .take_while(|&&k| j - k <= window)
            .all(|&k| r_squared(&rows[k], &rows[j]) < threshold);
        if in_window {
            kept.push(j);
        }
    }
    kept
}

/// Draw a dosage vector correlated with `base`: each allele of each
/// patient is copied from `base` with probability `copy_prob`, otherwise
/// redrawn as Bernoulli(`maf`). `copy_prob = 1` duplicates the SNP,
/// `copy_prob = 0` gives an independent one.
pub fn correlated_genotypes<R: Rng + ?Sized>(
    rng: &mut R,
    base: &[u8],
    maf: f64,
    copy_prob: f64,
) -> Vec<u8> {
    assert!(
        (0.0..=1.0).contains(&copy_prob),
        "copy_prob must be in [0, 1]"
    );
    base.iter()
        .map(|&g| {
            // Decompose the dosage into two allele draws.
            let alleles = [g >= 1, g >= 2];
            alleles
                .iter()
                .map(|&a| {
                    let keep = sample_bernoulli(rng, copy_prob);
                    let allele = if keep { a } else { sample_bernoulli(rng, maf) };
                    u8::from(allele)
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::sample_genotype;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_snp(rng: &mut StdRng, n: usize, maf: f64) -> Vec<u8> {
        (0..n).map(|_| sample_genotype(rng, maf)).collect()
    }

    #[test]
    fn identical_snps_have_r2_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_snp(&mut rng, 500, 0.3);
        assert!((r_squared(&g, &g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_snps_have_low_r2() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_snp(&mut rng, 5000, 0.3);
        let b = random_snp(&mut rng, 5000, 0.3);
        assert!(r_squared(&a, &b) < 0.01);
    }

    #[test]
    fn monomorphic_snp_gives_zero() {
        let a = vec![1u8; 100];
        let mut rng = StdRng::seed_from_u64(3);
        let b = random_snp(&mut rng, 100, 0.3);
        assert_eq!(r_squared(&a, &b), 0.0);
        assert_eq!(r_squared(&b, &a), 0.0);
    }

    #[test]
    fn r2_is_symmetric_and_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_snp(&mut rng, 300, 0.2);
        let b = correlated_genotypes(&mut rng, &a, 0.2, 0.7);
        let r_ab = r_squared(&a, &b);
        let r_ba = r_squared(&b, &a);
        assert!((r_ab - r_ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&r_ab));
    }

    #[test]
    fn correlated_generator_orders_by_copy_prob() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = random_snp(&mut rng, 3000, 0.3);
        let tight = correlated_genotypes(&mut rng, &base, 0.3, 0.95);
        let loose = correlated_genotypes(&mut rng, &base, 0.3, 0.3);
        let r_tight = r_squared(&base, &tight);
        let r_loose = r_squared(&base, &loose);
        assert!(
            r_tight > 0.7 && r_tight > r_loose + 0.2,
            "tight {r_tight} vs loose {r_loose}"
        );
    }

    #[test]
    fn pruning_drops_correlated_duplicates() {
        let mut rng = StdRng::seed_from_u64(6);
        let base = random_snp(&mut rng, 800, 0.3);
        // SNPs 0, 1, 2 nearly identical; 3, 4 independent.
        let rows = vec![
            base.clone(),
            correlated_genotypes(&mut rng, &base, 0.3, 0.98),
            correlated_genotypes(&mut rng, &base, 0.3, 0.98),
            random_snp(&mut rng, 800, 0.3),
            random_snp(&mut rng, 800, 0.3),
        ];
        let kept = prune_by_ld(&rows, 0.5, 10);
        assert_eq!(
            kept,
            vec![0, 3, 4],
            "one representative of the clique survives"
        );
    }

    #[test]
    fn pruning_respects_window() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = random_snp(&mut rng, 800, 0.3);
        let twin = correlated_genotypes(&mut rng, &base, 0.3, 0.99);
        let mut rows = vec![base];
        for _ in 0..5 {
            rows.push(random_snp(&mut rng, 800, 0.3));
        }
        rows.push(twin); // index 6, far from index 0
                         // Window 3: the twin at distance 6 is never compared with SNP 0.
        let kept = prune_by_ld(&rows, 0.5, 3);
        assert!(kept.contains(&0) && kept.contains(&6));
        // Window 10: the twin is pruned.
        let kept = prune_by_ld(&rows, 0.5, 10);
        assert!(kept.contains(&0) && !kept.contains(&6));
    }

    #[test]
    fn pruning_keeps_everything_at_threshold_one() {
        let mut rng = StdRng::seed_from_u64(8);
        let base = random_snp(&mut rng, 200, 0.3);
        let rows = vec![base.clone(), base.clone(), base];
        // r² == 1.0 is not < 1.0, so exact duplicates still go; use
        // independent rows to check the keep-all behaviour instead.
        let mut rng = StdRng::seed_from_u64(9);
        let rows2: Vec<Vec<u8>> = (0..4).map(|_| random_snp(&mut rng, 200, 0.3)).collect();
        assert_eq!(prune_by_ld(&rows2, 1.0, 10).len(), 4);
        assert_eq!(prune_by_ld(&rows, 1.0, 10).len(), 1);
    }
}
