//! Probability distributions: CDFs for inference, samplers for synthesis.
//!
//! The paper's synthetic data generator (§III) draws survival times from an
//! exponential, event indicators from a Bernoulli, and genotypes from a
//! Binomial(2, ρ); Lin's Monte Carlo method draws N(0,1) multipliers. All
//! samplers here are built from `rand`'s uniform source, so any seeded RNG
//! gives reproducible data.

use rand::Rng;

use crate::special::{erf, erfc, gamma_p, gamma_q};

// ---------- CDFs / survival functions ----------

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal survival function `1 − Φ(x)`, accurate in the tail.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Chi-square CDF with `k` degrees of freedom.
pub fn chi2_cdf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(k / 2.0, x / 2.0)
}

/// Chi-square survival function (upper tail), the p-value of a score test.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

// ---------- samplers ----------

/// One draw from N(0, 1) via Box–Muller (both uniforms fresh per call; the
/// spare variate is discarded for statelessness).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard u1 away from 0 so ln(u1) is finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One draw from Exponential(rate) by inversion; mean is `1/rate`.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// One Bernoulli(p) draw.
pub fn sample_bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    rng.gen::<f64>() < p
}

/// One Binomial(n, p) draw by summing Bernoullis (exact; n is small here —
/// genotypes use n = 2).
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> u32 {
    (0..n).map(|_| u32::from(sample_bernoulli(rng, p))).sum()
}

/// A genotype draw: Binomial(2, rho) minor-allele dosage in {0, 1, 2}.
pub fn sample_genotype<R: Rng + ?Sized>(rng: &mut R, rho: f64) -> u8 {
    sample_binomial(rng, 2, rho) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn normal_cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-15);
        close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-10);
        close(normal_cdf(-1.959_963_984_540_054), 0.025, 1e-10);
        close(normal_sf(1.644_853_626_951_472_7), 0.05, 1e-10);
    }

    #[test]
    fn normal_cdf_sf_complementary() {
        for &x in &[-4.0, -1.0, 0.0, 0.5, 3.0, 6.0] {
            close(normal_cdf(x) + normal_sf(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn chi2_known_quantiles() {
        // 95th percentile of chi2_1 is 3.841458820694124.
        close(chi2_sf(3.841_458_820_694_124, 1.0), 0.05, 1e-10);
        // 95th percentile of chi2_10 is 18.307038053275146.
        close(chi2_sf(18.307_038_053_275_146, 10.0), 0.05, 1e-10);
        close(chi2_cdf(0.0, 3.0), 0.0, 1e-15);
        close(chi2_sf(-1.0, 3.0), 1.0, 1e-15);
    }

    #[test]
    fn normal_sample_moments() {
        let mut r = rng(42);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        close(mean, 0.0, 0.01);
        close(var, 1.0, 0.02);
        // Symmetry: P(X < 0) ≈ 1/2.
        let below = draws.iter().filter(|&&x| x < 0.0).count() as f64 / n as f64;
        close(below, 0.5, 0.01);
    }

    #[test]
    fn exponential_sample_mean_matches_paper_survival_param() {
        // Paper: survival ~ Exponential(1/12), mean 12 months.
        let mut r = rng(7);
        let n = 100_000;
        let mean = (0..n)
            .map(|_| sample_exponential(&mut r, 1.0 / 12.0))
            .sum::<f64>()
            / n as f64;
        close(mean, 12.0, 0.2);
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut r = rng(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| sample_bernoulli(&mut r, 0.85)).count();
        close(hits as f64 / n as f64, 0.85, 0.01);
    }

    #[test]
    fn genotype_distribution_is_hardy_weinberg() {
        let mut r = rng(11);
        let rho = 0.3;
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sample_genotype(&mut r, rho) as usize] += 1;
        }
        let f = |c: usize| c as f64 / n as f64;
        close(f(counts[0]), 0.49, 0.01); // (1-ρ)²
        close(f(counts[1]), 0.42, 0.01); // 2ρ(1-ρ)
        close(f(counts[2]), 0.09, 0.01); // ρ²
    }

    #[test]
    fn samplers_are_deterministic_with_seed() {
        let a: Vec<f64> = {
            let mut r = rng(99);
            (0..10).map(|_| sample_standard_normal(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(99);
            (0..10).map(|_| sample_standard_normal(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_bad_rate() {
        let mut r = rng(0);
        let _ = sample_exponential(&mut r, 0.0);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn bernoulli_rejects_bad_p() {
        let mut r = rng(0);
        let _ = sample_bernoulli(&mut r, 1.5);
    }
}
