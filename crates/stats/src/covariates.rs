//! Covariate-adjusted efficient scores.
//!
//! A key advantage the paper cites for the efficient score framework and
//! for Lin's Monte Carlo method is that they "enable the incorporation of
//! baseline covariates into the analysis". For a quantitative trait with
//! design matrix `X̃ = [1, X]`, the efficient score for SNP `j` profiles
//! the nuisance regression out of *both* sides:
//!
//! `U_ij = r_i · g̃_ij`, where `r = y − X̃β̂` (trait residual) and
//! `g̃_j = g_j − X̃(X̃ᵀX̃)⁻¹X̃ᵀ g_j` (genotype residual).
//!
//! Projecting the genotype as well as the trait is what removes
//! confounding: a SNP associated with the outcome only through a measured
//! covariate (population structure proxies, age, batch, …) scores near
//! zero. The precomputation (trait residuals, Cholesky factor of the Gram
//! matrix) happens once per analysis; each SNP costs O(n·p).

use crate::linalg::{Cholesky, LinalgError, Matrix};
use crate::score::ScoreModel;

/// Gaussian efficient score with baseline covariates profiled out.
#[derive(Debug, Clone)]
pub struct AdjustedGaussianScore {
    design: Matrix,
    chol: Cholesky,
    /// Trait residuals `y − X̃β̂`.
    residuals: Vec<f64>,
}

impl AdjustedGaussianScore {
    /// Fit the nuisance model `y ~ 1 + covariates`. Each covariate is one
    /// column of length `n`. Fails if the covariates are collinear.
    pub fn new(trait_values: &[f64], covariates: &[Vec<f64>]) -> Result<Self, LinalgError> {
        assert!(!trait_values.is_empty(), "need at least one patient");
        let n = trait_values.len();
        let design = Matrix::design(n, covariates);
        let chol = Cholesky::factor(&design.gram())?;
        let beta = chol.solve(&design.tr_mul_vec(trait_values));
        let fitted = design.mul_vec(&beta);
        let residuals = trait_values
            .iter()
            .zip(&fitted)
            .map(|(y, f)| y - f)
            .collect();
        Ok(AdjustedGaussianScore {
            design,
            chol,
            residuals,
        })
    }

    /// Residualize a genotype vector against the design.
    fn genotype_residual(&self, g: &[u8]) -> Vec<f64> {
        let gf: Vec<f64> = g.iter().map(|&x| f64::from(x)).collect();
        let beta = self.chol.solve(&self.design.tr_mul_vec(&gf));
        let fitted = self.design.mul_vec(&beta);
        gf.iter().zip(&fitted).map(|(a, b)| a - b).collect()
    }

    pub fn trait_residuals(&self) -> &[f64] {
        &self.residuals
    }
}

impl ScoreModel for AdjustedGaussianScore {
    fn num_patients(&self) -> usize {
        self.residuals.len()
    }

    fn contributions_into(&self, g: &[u8], out: &mut [f64]) {
        assert_eq!(
            g.len(),
            self.residuals.len(),
            "genotype vector length mismatch"
        );
        assert_eq!(
            out.len(),
            self.residuals.len(),
            "output vector length mismatch"
        );
        crate::score::debug_assert_dosages(g);
        // The projection solve allocates internally (O(n·p) temporaries);
        // only the three unadjusted models promise an allocation-free path.
        let g_res = self.genotype_residual(g);
        for ((o, r), gr) in out.iter_mut().zip(&self.residuals).zip(&g_res) {
            *o = r * gr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::sample_standard_normal;
    use crate::score::{GaussianScore, ScoreModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn no_covariates_matches_plain_gaussian_score() {
        let y = vec![1.0, 4.0, 2.0, 8.0, 5.0];
        let g = vec![0u8, 1, 2, 1, 0];
        let adjusted = AdjustedGaussianScore::new(&y, &[]).unwrap();
        let plain = GaussianScore::new(&y);
        let a = adjusted.contributions(&g);
        let b = plain.contributions(&g);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn score_orthogonal_to_covariates() {
        // Any genotype equal to a covariate scores (numerically) zero.
        let mut rng = StdRng::seed_from_u64(1);
        let n = 60;
        let covariate: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
        let y: Vec<f64> = covariate
            .iter()
            .map(|c| c + sample_standard_normal(&mut rng))
            .collect();
        let g: Vec<u8> = covariate.iter().map(|&c| c.round() as u8).collect();
        // Use the rounded covariate itself as the adjustment column, so g
        // is exactly in the design span.
        let g_as_f: Vec<f64> = g.iter().map(|&x| f64::from(x)).collect();
        let model = AdjustedGaussianScore::new(&y, &[g_as_f]).unwrap();
        let u = model.score(&g);
        assert!(u.abs() < 1e-7, "in-span genotype must score zero, got {u}");
    }

    #[test]
    fn adjustment_removes_confounding() {
        // Classic confounder: y depends on c only; g correlates with c.
        // Unadjusted score is large; adjusted score collapses.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 400;
        let confounder: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let y: Vec<f64> = confounder
            .iter()
            .map(|c| 3.0 * c + 0.5 * sample_standard_normal(&mut rng))
            .collect();
        let g: Vec<u8> = confounder
            .iter()
            .map(|&c| {
                let p = 1.0 / (1.0 + (-2.0 * c).exp());
                u8::from(rng.gen::<f64>() < p) + u8::from(rng.gen::<f64>() < p)
            })
            .collect();

        let unadjusted = GaussianScore::new(&y);
        let (u_raw, v_raw) = crate::score::score_and_variance(&unadjusted.contributions(&g));
        let z_raw = u_raw * u_raw / v_raw;

        let adjusted = AdjustedGaussianScore::new(&y, &[confounder]).unwrap();
        let (u_adj, v_adj) = crate::score::score_and_variance(&adjusted.contributions(&g));
        let z_adj = u_adj * u_adj / v_adj;

        assert!(
            z_raw > 50.0,
            "confounded unadjusted statistic should be huge, got {z_raw}"
        );
        assert!(
            z_adj < 6.0,
            "adjustment must collapse the spurious association, got {z_adj}"
        );
    }

    #[test]
    fn true_signal_survives_adjustment() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 300;
        let covariate: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let g: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..3)).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 * covariate[i] + 1.5 * f64::from(g[i]) + sample_standard_normal(&mut rng))
            .collect();
        let model = AdjustedGaussianScore::new(&y, &[covariate]).unwrap();
        let (u, v) = crate::score::score_and_variance(&model.contributions(&g));
        let z = u * u / v;
        assert!(z > 30.0, "a real effect must remain detectable, got {z}");
    }

    #[test]
    fn collinear_covariates_rejected() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let c = vec![1.0, 2.0, 3.0, 4.0];
        let c2 = vec![2.0, 4.0, 6.0, 8.0];
        assert!(AdjustedGaussianScore::new(&y, &[c, c2]).is_err());
    }

    #[test]
    fn trait_residuals_sum_to_zero() {
        // The intercept column forces Σr = 0.
        let y = vec![3.0, -1.0, 7.5, 2.0, 0.5];
        let cov = vec![vec![1.0, 0.0, 2.0, 1.0, 3.0]];
        let model = AdjustedGaussianScore::new(&y, &cov).unwrap();
        let s: f64 = model.trait_residuals().iter().sum();
        assert!(s.abs() < 1e-9);
    }
}
