//! Minimal dense linear algebra, from scratch — just enough to support
//! covariate adjustment: column-major matrices, Cholesky factorization of
//! symmetric positive-definite systems, and least squares via the normal
//! equations. Cohort design matrices here are tall and thin (n patients ×
//! a handful of covariates), where normal equations are accurate and fast.

/// A dense column-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Column-major storage: element (r, c) at `data[c * rows + r]`.
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from columns (each of equal length).
    pub fn from_columns(columns: &[Vec<f64>]) -> Self {
        assert!(!columns.is_empty(), "need at least one column");
        let rows = columns[0].len();
        assert!(rows > 0, "columns must be non-empty");
        let mut m = Matrix::zeros(rows, columns.len());
        for (c, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), rows, "ragged columns");
            m.data[c * rows..(c + 1) * rows].copy_from_slice(col);
        }
        m
    }

    /// A design matrix: a leading all-ones intercept column followed by
    /// the given covariate columns.
    pub fn design(n: usize, covariates: &[Vec<f64>]) -> Self {
        let mut cols = Vec::with_capacity(covariates.len() + 1);
        cols.push(vec![1.0; n]);
        for c in covariates {
            assert_eq!(c.len(), n, "covariate length mismatch");
            cols.push(c.clone());
        }
        Matrix::from_columns(&cols)
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[c * self.rows + r]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[c * self.rows + r] = v;
    }

    #[inline]
    pub fn column(&self, c: usize) -> &[f64] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// `self · v`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (c, &vc) in v.iter().enumerate() {
            let col = self.column(c);
            for (o, &x) in out.iter_mut().zip(col) {
                *o += x * vc;
            }
        }
        out
    }

    /// `selfᵀ · v`.
    pub fn tr_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        (0..self.cols)
            .map(|c| self.column(c).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Gram matrix `selfᵀ · self` (symmetric, cols × cols).
    pub fn gram(&self) -> Matrix {
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for i in 0..p {
            for j in i..p {
                let dot: f64 = self
                    .column(i)
                    .iter()
                    .zip(self.column(j))
                    .map(|(a, b)| a * b)
                    .sum();
                g.set(i, j, dot);
                g.set(j, i, dot);
            }
        }
        g
    }
}

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix (`A = L·Lᵀ`), enabling O(p²) solves.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

/// Failure modes of the factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not (numerically) positive definite — for a design
    /// Gram matrix this means collinear covariates.
    NotPositiveDefinite { pivot: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(
                    f,
                    "matrix not positive definite at pivot {pivot} (collinear columns?)"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        assert_eq!(a.rows, a.cols, "Cholesky needs a square matrix");
        let p = a.rows;
        let mut l = Matrix::zeros(p, p);
        for j in 0..p {
            let mut diag = a.get(j, j);
            for k in 0..j {
                let ljk = l.get(j, k);
                diag -= ljk * ljk;
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let diag = diag.sqrt();
            l.set(j, j, diag);
            for i in (j + 1)..p {
                let mut v = a.get(i, j);
                for k in 0..j {
                    v -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, v / diag);
            }
        }
        Ok(Cholesky { l })
    }

    /// Solve `A x = b` via forward/backward substitution.
    #[allow(clippy::needless_range_loop)] // textbook triangular-solve form
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let p = self.l.rows;
        assert_eq!(b.len(), p, "dimension mismatch");
        // Forward: L y = b.
        let mut y = vec![0.0; p];
        for i in 0..p {
            let mut v = b[i];
            for k in 0..i {
                v -= self.l.get(i, k) * y[k];
            }
            y[i] = v / self.l.get(i, i);
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; p];
        for i in (0..p).rev() {
            let mut v = y[i];
            for k in (i + 1)..p {
                v -= self.l.get(k, i) * x[k];
            }
            x[i] = v / self.l.get(i, i);
        }
        x
    }
}

/// Ordinary least squares: coefficients β minimizing ‖y − Xβ‖².
pub fn least_squares(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let chol = Cholesky::factor(&x.gram())?;
    Ok(chol.solve(&x.tr_mul_vec(y)))
}

/// Residuals of `y` after projecting out the column space of `x`
/// (`y − X (XᵀX)⁻¹ Xᵀ y`).
pub fn residualize(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let beta = least_squares(x, y)?;
    let fitted = x.mul_vec(&beta);
    Ok(y.iter().zip(&fitted).map(|(a, b)| a - b).collect())
}

/// How many patients each pass of the blocked multiplier kernel streams
/// before revisiting the accumulators (`I_TILE × K × 8` bytes of `Z` stay
/// cache-resident: 256 × 32 doubles = 64 KiB at the default tile).
const PERTURB_I_TILE: usize = 256;

/// Blocked Monte Carlo multiplier kernel — the GEMM-shaped core of
/// Algorithm 3. Computes `out[j·k + kk] = Σ_i U[j·n + i] · Z[i·k + kk]`:
/// each of `k` replicates' perturbed scores `Ũ_j = Σ_i Z_i U_ij` for every
/// SNP `j`, in one pass over the contribution matrix instead of `k`.
///
/// * `contribs` — row-major `num_snps × num_patients` contribution matrix
///   (the cached `U`).
/// * `z_tile` — patient-major `num_patients × k` multiplier tile
///   (`z_tile[i·k + kk]` = replicate `kk`'s weight for patient `i`).
/// * `out` — replicate-major `num_snps × k` output.
///
/// Bitwise contract: for each `(j, kk)` the accumulation is a single chain
/// of `acc += u·z` in patient order — exactly the fold the per-iteration
/// path's `iter().map(|(u, z)| u * z).sum()` performs — so results are
/// bit-identical to running the replicates one at a time. Patient-tiling
/// only reorders *which* chain is advanced next, never the order within a
/// chain; the vectorizable parallelism comes from the `k` independent
/// chains in the inner loop.
pub fn perturb_scores_blocked(
    contribs: &[f64],
    num_snps: usize,
    num_patients: usize,
    z_tile: &[f64],
    k: usize,
    out: &mut [f64],
) {
    assert_eq!(contribs.len(), num_snps * num_patients, "U dimensions");
    let rows: Vec<&[f64]> = contribs.chunks_exact(num_patients).collect();
    perturb_rows_blocked(&rows, num_patients, z_tile, k, out);
}

/// [`perturb_scores_blocked`] over a gather of independent `U` rows instead
/// of one contiguous matrix — the shape each partition of the distributed
/// resampling GEMM holds (`(snp, contribution-row)` records, so the rows a
/// task sees are contiguous per SNP but scattered between SNPs). Same
/// bitwise contract: each `(j, kk)` accumulator is one `acc += u·z` chain
/// in patient order, so a grid of these cells reproduces the single-task
/// kernel bit for bit.
pub fn perturb_rows_blocked(
    rows: &[&[f64]],
    num_patients: usize,
    z_tile: &[f64],
    k: usize,
    out: &mut [f64],
) {
    assert_eq!(z_tile.len(), num_patients * k, "Z tile dimensions");
    assert_eq!(out.len(), rows.len() * k, "output dimensions");
    for row in rows {
        assert_eq!(row.len(), num_patients, "U row length");
    }
    out.fill(0.0);
    let mut i0 = 0;
    while i0 < num_patients {
        let i1 = (i0 + PERTURB_I_TILE).min(num_patients);
        for (u_row, acc) in rows.iter().zip(out.chunks_exact_mut(k)) {
            for i in i0..i1 {
                let ui = u_row[i];
                let z_row = &z_tile[i * k..][..k];
                for (a, &zk) in acc.iter_mut().zip(z_row) {
                    *a += ui * zk;
                }
            }
        }
        i0 = i1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn matrix_basics() {
        let m = Matrix::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![4.0, 6.0]);
        assert_eq!(m.tr_mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn gram_is_symmetric_and_correct() {
        let m = Matrix::from_columns(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 1.0]]);
        let g = m.gram();
        assert_eq!(g.get(0, 0), 5.0);
        assert_eq!(g.get(1, 1), 10.0);
        assert_eq!(g.get(0, 1), 2.0);
        assert_eq!(g.get(1, 0), 2.0);
    }

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4, 2], [2, 3]], b = [8, 7]  →  x = [1.25, 1.5].
        let a = Matrix::from_columns(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let chol = Cholesky::factor(&a).unwrap();
        let x = chol.solve(&[8.0, 7.0]);
        close(x[0], 1.25, 1e-12);
        close(x[1], 1.5, 1e-12);
    }

    #[test]
    fn cholesky_rejects_singular() {
        // Perfectly collinear columns → singular Gram matrix.
        let x = Matrix::from_columns(&[vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]]);
        assert!(matches!(
            Cholesky::factor(&x.gram()),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn least_squares_recovers_exact_coefficients() {
        // y = 2 + 3·x exactly.
        let xs = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let design = Matrix::design(5, &[xs]);
        let beta = least_squares(&design, &y).unwrap();
        close(beta[0], 2.0, 1e-10);
        close(beta[1], 3.0, 1e-10);
    }

    #[test]
    fn residualize_removes_covariate_signal() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![2.0, 4.0, 6.0, 8.0]; // y = 2x: fully explained.
        let design = Matrix::design(4, &[xs]);
        let r = residualize(&design, &y).unwrap();
        for v in r {
            close(v, 0.0, 1e-10);
        }
    }

    #[test]
    fn design_prepends_intercept() {
        let d = Matrix::design(3, &[vec![5.0, 6.0, 7.0]]);
        assert_eq!(d.column(0), &[1.0, 1.0, 1.0]);
        assert_eq!(d.column(1), &[5.0, 6.0, 7.0]);
    }

    /// Per-replicate reference for the blocked kernel: the exact fold the
    /// per-iteration resampling path performs.
    fn perturb_naive(u: &[f64], m: usize, n: usize, z: &[f64], k: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * k];
        for j in 0..m {
            for kk in 0..k {
                out[j * k + kk] = (0..n).map(|i| u[j * n + i] * z[i * k + kk]).sum();
            }
        }
        out
    }

    #[test]
    fn perturb_blocked_is_bitwise_identical_to_naive() {
        // Sizes straddle the patient tile (256) to exercise the tile seam;
        // equality is exact, not approximate.
        for &(m, n, k) in &[
            (3usize, 7usize, 1usize),
            (5, 256, 4),
            (4, 300, 3),
            (2, 513, 8),
        ] {
            let u: Vec<f64> = (0..m * n).map(|v| (v as f64 * 0.37).sin()).collect();
            let z: Vec<f64> = (0..n * k).map(|v| (v as f64 * 0.71).cos()).collect();
            let mut out = vec![f64::NAN; m * k];
            perturb_scores_blocked(&u, m, n, &z, k, &mut out);
            assert_eq!(out, perturb_naive(&u, m, n, &z, k), "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn perturb_blocked_handles_empty_snp_set() {
        let mut out = vec![];
        perturb_scores_blocked(&[], 0, 10, &[0.5; 20], 2, &mut out);
        assert!(out.is_empty());
    }

    proptest! {
        /// Residuals are orthogonal to every design column.
        #[test]
        fn prop_residual_orthogonality(
            seed_y in proptest::collection::vec(-10.0f64..10.0, 8..30),
            seed_x in proptest::collection::vec(-5.0f64..5.0, 8..30),
        ) {
            let n = seed_y.len().min(seed_x.len());
            let y = &seed_y[..n];
            let x = seed_x[..n].to_vec();
            let design = Matrix::design(n, &[x]);
            if let Ok(r) = residualize(&design, y) {
                for c in 0..design.cols() {
                    let dot: f64 = design.column(c).iter().zip(&r).map(|(a, b)| a * b).sum();
                    prop_assert!(dot.abs() < 1e-6, "column {c} dot {dot}");
                }
            }
        }

        /// Cholesky solve inverts mul for random SPD matrices (AᵀA + I).
        #[test]
        fn prop_cholesky_round_trip(
            vals in proptest::collection::vec(-3.0f64..3.0, 9..=9),
            rhs in proptest::collection::vec(-5.0f64..5.0, 3..=3),
        ) {
            let base = Matrix::from_columns(&[
                vals[0..3].to_vec(), vals[3..6].to_vec(), vals[6..9].to_vec(),
            ]);
            let mut spd = base.gram();
            for i in 0..3 {
                spd.set(i, i, spd.get(i, i) + 1.0); // ensure PD
            }
            let chol = Cholesky::factor(&spd).unwrap();
            let x = chol.solve(&rhs);
            let back = spd.mul_vec(&x);
            for (a, b) in back.iter().zip(&rhs) {
                prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
            }
        }
    }
}
