//! Asymptotic (large-sample) inference.
//!
//! The paper contrasts resampling with asymptotic approximations: the
//! single-SNP score test `U²/V ~ χ²₁`, and the SKAT statistic's null
//! distribution, a positively-weighted mixture of χ²₁ variables. With the
//! independent-SNP design of the synthetic data the mixture weights are
//! simply `λ_j = ω_j² V_j` (no eigendecomposition needed); we approximate
//! its tail with the Liu–Tang–Zhang moment-matching method used by the
//! SKAT reference implementation, including the noncentral chi-square
//! refinement.

use crate::dist::chi2_sf;
use crate::special::gamma_p;

/// Two-sided score-test p-value for one SNP: `U²/V` against χ²₁.
/// Returns 1.0 for degenerate SNPs (`V = 0`, e.g. monomorphic genotypes).
pub fn score_test_pvalue(score: f64, variance: f64) -> f64 {
    assert!(variance >= 0.0, "variance must be non-negative");
    if variance == 0.0 {
        return 1.0;
    }
    chi2_sf(score * score / variance, 1.0)
}

/// Survival function of the noncentral chi-square distribution with `k`
/// degrees of freedom and noncentrality `delta`, via the Poisson-mixture
/// series `P(X > x) = Σ_j pois(j; δ/2) · Q_{k+2j}(x)`.
pub fn chi2_noncentral_sf(x: f64, k: f64, delta: f64) -> f64 {
    assert!(k > 0.0, "degrees of freedom must be positive");
    assert!(delta >= 0.0, "noncentrality must be non-negative");
    if x <= 0.0 {
        return 1.0;
    }
    if delta == 0.0 {
        return chi2_sf(x, k);
    }
    let half_delta = delta / 2.0;
    let mut weight = (-half_delta).exp(); // Poisson(0)
    let mut cdf = 0.0f64;
    let mut total_weight = 0.0f64;
    for j in 0..1000 {
        cdf += weight * gamma_p((k + 2.0 * j as f64) / 2.0, x / 2.0);
        total_weight += weight;
        if 1.0 - total_weight < 1e-14 {
            break;
        }
        weight *= half_delta / (j as f64 + 1.0);
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// Liu–Tang–Zhang moment-matching p-value for `Q = Σ_j λ_j χ²₁`.
///
/// `lambdas` are the mixture weights (here `ω_j² V_j` per member SNP);
/// `q` is the observed SKAT statistic. Matches the first four cumulants of
/// `Q` to a (possibly noncentral) chi-square, following Liu et al. (2009)
/// as modified in the SKAT package.
pub fn skat_liu_pvalue(q: f64, lambdas: &[f64]) -> f64 {
    assert!(!lambdas.is_empty(), "need at least one mixture weight");
    assert!(
        lambdas.iter().all(|&l| l >= 0.0),
        "mixture weights must be non-negative"
    );
    let c1: f64 = lambdas.iter().sum();
    let c2: f64 = lambdas.iter().map(|l| l * l).sum();
    let c3: f64 = lambdas.iter().map(|l| l * l * l).sum();
    let c4: f64 = lambdas.iter().map(|l| l * l * l * l).sum();
    if c2 == 0.0 {
        // All weights zero: Q is degenerate at 0.
        return if q <= 0.0 { 1.0 } else { 0.0 };
    }
    let s1 = c3 / c2.powf(1.5);
    let s2 = c4 / (c2 * c2);
    let (df, delta, a) = if s1 * s1 > s2 {
        let a = 1.0 / (s1 - (s1 * s1 - s2).sqrt());
        let delta = s1 * a.powi(3) - a * a;
        let df = a * a - 2.0 * delta;
        (df, delta, a)
    } else {
        let df = 1.0 / s2;
        (df, 0.0, df.sqrt())
    };
    let mu_q = c1;
    let sigma_q = (2.0 * c2).sqrt();
    let mu_x = df + delta;
    let sigma_x = std::f64::consts::SQRT_2 * a;
    let q_std = (q - mu_q) / sigma_q * sigma_x + mu_x;
    chi2_noncentral_sf(q_std, df.max(1e-8), delta.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::sample_standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn score_test_known_thresholds() {
        // U²/V = 3.8415 → p = 0.05.
        let p = score_test_pvalue(3.841_458_820_694_124f64.sqrt(), 1.0);
        close(p, 0.05, 1e-9);
        assert_eq!(score_test_pvalue(5.0, 0.0), 1.0);
        // Sign does not matter.
        close(
            score_test_pvalue(-2.0, 1.5),
            score_test_pvalue(2.0, 1.5),
            1e-15,
        );
    }

    #[test]
    fn noncentral_reduces_to_central() {
        for &x in &[0.5, 2.0, 7.0] {
            close(chi2_noncentral_sf(x, 3.0, 0.0), chi2_sf(x, 3.0), 1e-12);
        }
    }

    #[test]
    fn noncentral_known_value() {
        // P(χ²_2(δ=1) > 5): hand-evaluated Poisson-mixture series,
        // Σ_j pois(j; 1/2)·F_{2+2j}(5) = 0.810710 → SF = 0.189290.
        close(chi2_noncentral_sf(5.0, 2.0, 1.0), 0.189_290_0, 1e-5);
    }

    #[test]
    fn noncentral_shifts_mass_right() {
        let central = chi2_noncentral_sf(5.0, 2.0, 0.0);
        let shifted = chi2_noncentral_sf(5.0, 2.0, 3.0);
        assert!(shifted > central);
    }

    #[test]
    fn liu_single_lambda_is_scaled_chi2() {
        // Q = λ χ²₁: p(q) must equal chi2_sf(q/λ, 1).
        for &(lambda, q) in &[(1.0, 3.0), (2.5, 10.0), (0.3, 0.9)] {
            let p = skat_liu_pvalue(q, &[lambda]);
            close(p, chi2_sf(q / lambda, 1.0), 1e-6);
        }
    }

    #[test]
    fn liu_equal_lambdas_is_chi2_k() {
        // Q = Σ_{j=1}^{k} χ²₁ = χ²_k.
        for k in [2usize, 5, 10] {
            let lambdas = vec![1.0; k];
            for &q in &[1.0, 5.0, 12.0] {
                let p = skat_liu_pvalue(q, &lambdas);
                close(p, chi2_sf(q, k as f64), 1e-4);
            }
        }
    }

    #[test]
    fn liu_matches_monte_carlo_tail() {
        // Unequal weights: compare against a large simulation of the
        // mixture distribution.
        let lambdas = vec![3.0, 1.0, 0.5, 0.25];
        let mut rng = StdRng::seed_from_u64(42);
        let n = 400_000;
        let q_obs = 12.0;
        let exceed = (0..n)
            .filter(|_| {
                let q: f64 = lambdas
                    .iter()
                    .map(|l| {
                        let z = sample_standard_normal(&mut rng);
                        l * z * z
                    })
                    .sum();
                q >= q_obs
            })
            .count();
        let mc_p = exceed as f64 / n as f64;
        let liu_p = skat_liu_pvalue(q_obs, &lambdas);
        close(liu_p, mc_p, 0.01);
    }

    #[test]
    fn liu_pvalue_monotone_in_q() {
        let lambdas = vec![2.0, 1.0, 0.5];
        let mut last = 1.0f64;
        for i in 0..20 {
            let p = skat_liu_pvalue(i as f64, &lambdas);
            assert!(p <= last + 1e-12, "p must fall as q grows");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn degenerate_lambdas() {
        assert_eq!(skat_liu_pvalue(0.0, &[0.0, 0.0]), 1.0);
        assert_eq!(skat_liu_pvalue(1.0, &[0.0]), 0.0);
    }
}
