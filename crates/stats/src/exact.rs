//! Exact permutation inference for tiny cohorts.
//!
//! The paper's motivation for resampling is approximating "the exact
//! sampling distribution" when asymptotics fail. For very small `n` the
//! exact distribution is *computable*: enumerate all `n!` phenotype
//! assignments. This module does so (for `n ≤ MAX_EXACT_N`), providing
//! ground truth the Monte Carlo and sampled-permutation schemes are tested
//! to converge to — the calibration story of the whole method, in
//! miniature.

use crate::pvalue::empirical_pvalue;
use crate::score::ScoreModel;
use crate::skat::{skat_all, SnpSet};

/// Largest cohort for which full enumeration is allowed (8! = 40 320).
pub const MAX_EXACT_N: usize = 8;

/// Iterate over all permutations of `0..n` in lexicographic order,
/// invoking `visit` on each (Heap's algorithm would permute in place; the
/// lexicographic successor keeps the order deterministic and testable).
fn for_each_permutation(n: usize, mut visit: impl FnMut(&[usize])) {
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        visit(&perm);
        // Lexicographic successor.
        let Some(i) = (0..n.saturating_sub(1))
            .rev()
            .find(|&i| perm[i] < perm[i + 1])
        else {
            return;
        };
        let j = (i + 1..n)
            .rev()
            .find(|&j| perm[j] > perm[i])
            .expect("successor exists");
        perm.swap(i, j);
        perm[i + 1..].reverse();
    }
}

/// Exact permutation p-values for SKAT statistics: the proportion of all
/// `n!` phenotype assignments whose statistic is at least the observed one
/// (add-one estimator for comparability with the sampled versions).
///
/// `rebuild(perm)` returns the model under that phenotype assignment.
/// Panics if `n > MAX_EXACT_N` — enumeration beyond 8 patients is a bug,
/// not a workload.
pub fn exact_permutation_pvalues<M, F>(
    model: &M,
    rebuild: F,
    genotype_rows: &[Vec<u8>],
    weights: &[f64],
    sets: &[SnpSet],
) -> Vec<f64>
where
    M: ScoreModel,
    F: Fn(&[usize]) -> M,
{
    let n = model.num_patients();
    assert!(
        n <= MAX_EXACT_N,
        "exact enumeration limited to n <= {MAX_EXACT_N} (asked for {n})"
    );
    let observed_scores: Vec<f64> = genotype_rows.iter().map(|g| model.score(g)).collect();
    let observed = skat_all(&observed_scores, weights, sets);

    let mut counts = vec![0usize; sets.len()];
    let mut total = 0usize;
    for_each_permutation(n, |perm| {
        total += 1;
        let m = rebuild(perm);
        let scores: Vec<f64> = genotype_rows.iter().map(|g| m.score(g)).collect();
        let replicate = skat_all(&scores, weights, sets);
        for (c, (&rep, &obs)) in counts.iter_mut().zip(replicate.iter().zip(&observed)) {
            if rep >= obs {
                *c += 1;
            }
        }
    });
    counts
        .into_iter()
        // The identity permutation is one of the n! replicates, so counts
        // are ≥ 1 already; subtract it to keep the add-one estimator's
        // convention of "replicates distinct from the observation".
        .map(|c| empirical_pvalue(c - 1, total - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resample::{monte_carlo, permutation};
    use crate::score::{GaussianScore, Survival};

    #[test]
    fn permutation_enumeration_counts_n_factorial() {
        for n in 1..=6usize {
            let mut count = 0usize;
            for_each_permutation(n, |_| count += 1);
            let factorial: usize = (1..=n).product();
            assert_eq!(count, factorial, "n = {n}");
        }
    }

    #[test]
    fn permutations_are_distinct_and_lexicographic() {
        let mut seen = Vec::new();
        for_each_permutation(4, |p| seen.push(p.to_vec()));
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 24, "all distinct");
        assert_eq!(seen, sorted, "generated in lexicographic order");
        assert_eq!(seen[0], vec![0, 1, 2, 3]);
        assert_eq!(seen[23], vec![3, 2, 1, 0]);
    }

    fn tiny_problem() -> (GaussianScore, Vec<Vec<u8>>, Vec<f64>, Vec<SnpSet>) {
        let y = vec![0.9, 2.3, 1.1, 3.7, 0.2, 2.8];
        let rows = vec![vec![0u8, 1, 0, 2, 0, 1], vec![2u8, 0, 1, 0, 2, 1]];
        let weights = vec![1.0, 0.7];
        let sets = vec![SnpSet::new(0, vec![0, 1])];
        (GaussianScore::new(&y), rows, weights, sets)
    }

    #[test]
    fn sampled_permutation_converges_to_exact() {
        let (model, rows, weights, sets) = tiny_problem();
        let exact =
            exact_permutation_pvalues(&model, |p| model.permuted(p), &rows, &weights, &sets);
        let sampled = permutation(
            &model,
            |p| model.permuted(p),
            &rows,
            &weights,
            &sets,
            4000,
            3,
        )
        .pvalues();
        assert!(
            (exact[0] - sampled[0]).abs() < 0.03,
            "sampled {} vs exact {}",
            sampled[0],
            exact[0]
        );
    }

    #[test]
    fn monte_carlo_approximates_exact_distribution() {
        // MC and permutation answer the same question; on a tiny Gaussian
        // problem they agree coarsely (the MC null is Gaussian rather than
        // discrete, so perfect agreement is not expected at n = 6).
        let (model, rows, weights, sets) = tiny_problem();
        let exact =
            exact_permutation_pvalues(&model, |p| model.permuted(p), &rows, &weights, &sets);
        let mc = monte_carlo(&model, &rows, &weights, &sets, 4000, 5).pvalues();
        assert!(
            (exact[0] - mc[0]).abs() < 0.15,
            "mc {} vs exact {}",
            mc[0],
            exact[0]
        );
    }

    #[test]
    fn exact_pvalue_of_degenerate_phenotype_is_one() {
        // Constant phenotype: every permutation gives the same statistic.
        let y = vec![2.0; 5];
        let model = GaussianScore::new(&y);
        let rows = vec![vec![0u8, 1, 2, 1, 0]];
        let sets = vec![SnpSet::new(0, vec![0])];
        let p =
            exact_permutation_pvalues(&model, |perm| model.permuted(perm), &rows, &[1.0], &sets);
        assert_eq!(p[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "exact enumeration limited")]
    fn large_n_is_rejected() {
        let ph: Vec<Survival> = (0..12)
            .map(|i| Survival::event_at(i as f64 + 1.0))
            .collect();
        let model = crate::score::CoxScore::new(&ph);
        let rows = vec![vec![0u8; 12]];
        let sets = vec![SnpSet::new(0, vec![0])];
        let _ = exact_permutation_pvalues(&model, |p| model.permuted(p), &rows, &[1.0], &sets);
    }
}
