//! Thread-local scratch buffers for the allocation-free kernel paths.
//!
//! The score kernels ([`crate::score::ScoreModel::contributions_into`])
//! need per-call working memory — the Cox prefix-sum array, the unpack
//! destination for 2-bit-packed genotype columns. Executor-pool worker
//! threads persist across tasks, so a `thread_local!` buffer is allocated
//! on a worker's first kernel call and reused by every subsequent task
//! scheduled onto that thread. The reuse counter lets tasks report how
//! often they ran without touching the allocator (the engine surfaces it
//! as `TaskMetrics::scratch_reuses`).
//!
//! The helpers are not reentrant per element type: a kernel may hold at
//! most one `f64` and one `u8` scratch slice at a time (nesting
//! [`with_f64`] inside [`with_f64`] panics on the `RefCell` borrow).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes currently held by scratch buffers across all live threads,
/// maintained by O(1) deltas at the growth sites (and a matching
/// subtraction when a worker thread dies). Feeds the engine's memory
/// ledger as the `scratch` category via a registered byte source.
static ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Bytes currently resident in thread-local scratch, process-wide.
pub fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// A `Vec` whose byte footprint is mirrored into [`ALLOCATED`]: growth
/// adds the delta, thread teardown gives the bytes back.
struct TrackedBuf<T>(Vec<T>);

impl<T> TrackedBuf<T> {
    fn grow_to(&mut self, len: usize, zero: T)
    where
        T: Clone,
    {
        let delta = (len - self.0.len()) * std::mem::size_of::<T>();
        ALLOCATED.fetch_add(delta as u64, Ordering::Relaxed);
        self.0.resize(len, zero);
    }
}

impl<T> Drop for TrackedBuf<T> {
    fn drop(&mut self) {
        let bytes = self.0.len() * std::mem::size_of::<T>();
        ALLOCATED.fetch_sub(bytes as u64, Ordering::Relaxed);
    }
}

thread_local! {
    static F64_BUF: RefCell<TrackedBuf<f64>> = const { RefCell::new(TrackedBuf(Vec::new())) };
    static U8_BUF: RefCell<TrackedBuf<u8>> = const { RefCell::new(TrackedBuf(Vec::new())) };
    static REUSES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn note_reuse() {
    REUSES.with(|c| c.set(c.get() + 1));
}

/// Run `f` over a zero-filled thread-local `f64` slice of length `len`.
pub fn with_f64<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    F64_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.0.len() >= len {
            note_reuse();
        } else {
            buf.grow_to(len, 0.0);
        }
        let slice = &mut buf.0[..len];
        slice.fill(0.0);
        f(slice)
    })
}

/// Run `f` over a zero-filled thread-local `u8` slice of length `len`
/// (the genotype unpack destination).
pub fn with_u8<R>(len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
    U8_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.0.len() >= len {
            note_reuse();
        } else {
            buf.grow_to(len, 0);
        }
        let slice = &mut buf.0[..len];
        slice.fill(0);
        f(slice)
    })
}

/// Scratch reuses on this thread since the last call, resetting the
/// counter. Tasks call this at completion to attribute reuse to
/// themselves; counters are thread-local, so concurrent tasks on other
/// workers never mix.
pub fn take_reuses() -> u64 {
    REUSES.with(|c| c.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_use_allocates_then_reuses() {
        // Run on a dedicated thread so other tests' scratch use on this
        // thread cannot pollute the counter.
        std::thread::spawn(|| {
            let _ = take_reuses();
            with_f64(16, |s| assert_eq!(s.len(), 16));
            assert_eq!(take_reuses(), 0, "first use allocates");
            with_f64(8, |s| assert_eq!(s.len(), 8));
            with_f64(16, |s| assert_eq!(s.len(), 16));
            assert_eq!(take_reuses(), 2, "smaller or equal requests reuse");
            with_f64(32, |s| assert_eq!(s.len(), 32));
            assert_eq!(take_reuses(), 0, "growth reallocates");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn buffers_are_zeroed_between_uses() {
        std::thread::spawn(|| {
            with_u8(4, |s| s.fill(7));
            with_u8(4, |s| assert_eq!(s, [0, 0, 0, 0]));
            with_f64(4, |s| s.fill(3.5));
            with_f64(4, |s| assert_eq!(s, [0.0; 4]));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn allocated_bytes_tracks_growth_and_thread_death() {
        // The counter is process-global and other tests use scratch
        // concurrently, so assert with wide margins around a deliberately
        // large allocation instead of exact equality.
        const BIG: usize = 1 << 17; // 1 MiB of f64 — dwarfs every other test
        let before = allocated_bytes();
        let held = std::thread::spawn(|| {
            with_f64(BIG, |_| {});
            with_f64(BIG / 2, |_| {}); // reuse: no new bytes
            allocated_bytes()
        })
        .join()
        .unwrap();
        assert!(
            held >= before.saturating_sub(1 << 16) + (BIG * 8) as u64,
            "growth must be accounted: {before} -> {held}"
        );
        assert!(
            allocated_bytes() <= held - (BIG * 4) as u64,
            "thread teardown must return its scratch bytes"
        );
    }

    #[test]
    fn u8_and_f64_scratch_can_nest() {
        with_u8(8, |g| {
            with_f64(8, |p| {
                assert_eq!(g.len(), p.len());
            });
        });
    }
}
