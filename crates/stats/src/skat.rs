//! SNP-set statistics: SKAT and weighted burden.
//!
//! The paper aggregates marginal scores into gene-level statistics with the
//! Sequence Kernel Association Test: `S_k = Σ_{j∈I_k} ω_j² U_j²` (Wu et
//! al. 2011). The weighted burden statistic `(Σ_{j∈I_k} ω_j U_j)²` is the
//! classical alternative the paper's references compare against — powerful
//! when effects share a direction, weaker when they don't.

/// A SNP-set (gene/pathway): an id and the indices of its member SNPs
/// within the analysis' SNP array. Sets must be non-empty (they partition
/// the SNPs in the paper's formulation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnpSet {
    pub id: u64,
    pub members: Vec<usize>,
}

impl SnpSet {
    pub fn new(id: u64, members: Vec<usize>) -> Self {
        assert!(!members.is_empty(), "SNP-set {id} must be non-empty");
        SnpSet { id, members }
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// SKAT statistic for one set: `Σ_{j∈I_k} w_j² U_j²`.
pub fn skat_statistic(scores: &[f64], weights: &[f64], set: &SnpSet) -> f64 {
    assert_eq!(scores.len(), weights.len(), "scores and weights must align");
    set.members
        .iter()
        .map(|&j| {
            let wu = weights[j] * weights[j] * scores[j] * scores[j];
            debug_assert!(wu.is_finite());
            wu
        })
        .sum()
}

/// Weighted burden statistic for one set: `(Σ_{j∈I_k} w_j U_j)²`.
pub fn burden_statistic(scores: &[f64], weights: &[f64], set: &SnpSet) -> f64 {
    assert_eq!(scores.len(), weights.len());
    let s: f64 = set.members.iter().map(|&j| weights[j] * scores[j]).sum();
    s * s
}

/// SKAT statistics for every set.
pub fn skat_all(scores: &[f64], weights: &[f64], sets: &[SnpSet]) -> Vec<f64> {
    sets.iter()
        .map(|s| skat_statistic(scores, weights, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn skat_hand_computed() {
        let scores = [2.0, -1.0, 3.0];
        let weights = [1.0, 2.0, 0.5];
        let set = SnpSet::new(0, vec![0, 1, 2]);
        // 1*4 + 4*1 + 0.25*9 = 10.25
        assert_eq!(skat_statistic(&scores, &weights, &set), 10.25);
    }

    #[test]
    fn burden_hand_computed() {
        let scores = [2.0, -1.0];
        let weights = [1.0, 2.0];
        let set = SnpSet::new(0, vec![0, 1]);
        // (2 - 2)² = 0: opposite effects cancel in burden but not SKAT.
        assert_eq!(burden_statistic(&scores, &weights, &set), 0.0);
        assert!(skat_statistic(&scores, &weights, &set) > 0.0);
    }

    #[test]
    fn subset_members_only() {
        let scores = [10.0, 1.0, 10.0];
        let weights = [1.0, 1.0, 1.0];
        let set = SnpSet::new(0, vec![1]);
        assert_eq!(skat_statistic(&scores, &weights, &set), 1.0);
    }

    #[test]
    fn skat_all_maps_sets() {
        let scores = [1.0, 2.0];
        let weights = [1.0, 1.0];
        let sets = vec![SnpSet::new(0, vec![0]), SnpSet::new(1, vec![0, 1])];
        assert_eq!(skat_all(&scores, &weights, &sets), vec![1.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_set_rejected() {
        let _ = SnpSet::new(3, vec![]);
    }

    proptest! {
        /// SKAT is non-negative and zero iff every weighted member score is.
        #[test]
        fn prop_skat_nonnegative(
            scores in proptest::collection::vec(-50.0f64..50.0, 1..30),
            weight in 0.0f64..5.0
        ) {
            let weights = vec![weight; scores.len()];
            let set = SnpSet::new(0, (0..scores.len()).collect());
            let s = skat_statistic(&scores, &weights, &set);
            prop_assert!(s >= 0.0);
        }

        /// Scaling all weights by c scales SKAT by c² exactly.
        #[test]
        fn prop_skat_weight_scaling(
            scores in proptest::collection::vec(-10.0f64..10.0, 1..20),
            c in 0.1f64..4.0
        ) {
            let w1 = vec![1.0; scores.len()];
            let wc = vec![c; scores.len()];
            let set = SnpSet::new(0, (0..scores.len()).collect());
            let a = skat_statistic(&scores, &w1, &set) * c * c;
            let b = skat_statistic(&scores, &wc, &set);
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }

        /// SKAT over a disjoint union of sets is the sum over the parts.
        #[test]
        fn prop_skat_additive_over_partition(
            scores in proptest::collection::vec(-10.0f64..10.0, 2..30),
            split in 1usize..29
        ) {
            let n = scores.len();
            let split = split.min(n - 1);
            let weights = vec![1.0; n];
            let whole = SnpSet::new(0, (0..n).collect());
            let left = SnpSet::new(1, (0..split).collect());
            let right = SnpSet::new(2, (split..n).collect());
            let total = skat_statistic(&scores, &weights, &whole);
            let parts = skat_statistic(&scores, &weights, &left)
                + skat_statistic(&scores, &weights, &right);
            prop_assert!((total - parts).abs() < 1e-9 * (1.0 + total.abs()));
        }

        /// Burden ≤ m × SKAT for unit weights (Cauchy–Schwarz).
        #[test]
        fn prop_burden_cauchy_schwarz(
            scores in proptest::collection::vec(-10.0f64..10.0, 1..25)
        ) {
            let weights = vec![1.0; scores.len()];
            let set = SnpSet::new(0, (0..scores.len()).collect());
            let b = burden_statistic(&scores, &weights, &set);
            let s = skat_statistic(&scores, &weights, &set);
            prop_assert!(b <= scores.len() as f64 * s + 1e-9);
        }
    }
}
