//! Analyses over an [`ExecutionTrace`]: critical path, straggler/skew
//! diagnostics, and cache ROI accounting.
//!
//! All three are pure functions of the trace, use only integer or
//! fixed-formatting arithmetic, and iterate structures in submission
//! order, so their output is deterministic for a fixed input log.

use sparkscore_rdd::{StageKind, TaskMetrics};

use crate::trace::{ExecutionTrace, TraceStage};

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

/// One stage on a job's critical path.
#[derive(Debug, Clone)]
pub struct PathStage {
    pub stage: u64,
    pub kind: Option<StageKind>,
    pub num_tasks: usize,
    /// The stage's virtual makespan — its contribution to the path.
    pub makespan_ns: u64,
    /// Virtual runtime of the stage's slowest task.
    pub critical_task_ns: u64,
    /// Partition index of that slowest task.
    pub critical_partition: usize,
    /// `makespan − critical task`: time the stage spent beyond its single
    /// longest task — extra waves when tasks outnumber slots, plus
    /// scheduling overhead. A stage with high slack is bounded by
    /// parallelism; one with zero slack is bounded by its straggler.
    pub slack_ns: u64,
}

/// The critical path of one job.
///
/// The engine executes a job's stages sequentially in dependency order
/// (every shuffle-map stage a result stage needs runs before it), so the
/// job's critical path is its stage chain, each link weighted by the
/// stage's makespan; within a stage the critical element is the slowest
/// task.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    pub job: u64,
    pub stages: Vec<PathStage>,
    /// Sum of stage makespans — the dependency-chain length.
    pub path_ns: u64,
    /// The job's observed virtual advance (path + inter-stage overhead).
    pub virtual_advance_ns: u64,
}

impl CriticalPath {
    /// The path's slowest stage, if the job ran any.
    pub fn bottleneck(&self) -> Option<&PathStage> {
        self.stages.iter().max_by_key(|s| (s.makespan_ns, s.stage))
    }
}

fn path_stage(s: &TraceStage) -> PathStage {
    let (critical_task_ns, critical_partition) = s
        .critical_task()
        .map(|t| (t.virtual_runtime_ns(), t.partition))
        .unwrap_or((0, 0));
    PathStage {
        stage: s.stage,
        kind: s.kind,
        num_tasks: s.num_tasks,
        makespan_ns: s.makespan_ns,
        critical_task_ns,
        critical_partition,
        slack_ns: s.makespan_ns.saturating_sub(critical_task_ns),
    }
}

/// Compute the critical path of every job in the trace, in job order.
pub fn critical_paths(trace: &ExecutionTrace) -> Vec<CriticalPath> {
    trace
        .jobs
        .iter()
        .map(|job| {
            let stages: Vec<PathStage> = trace
                .job_stages(job.job)
                .into_iter()
                .map(path_stage)
                .collect();
            let path_ns = stages.iter().map(|s| s.makespan_ns).sum();
            CriticalPath {
                job: job.job,
                stages,
                path_ns,
                virtual_advance_ns: job.virtual_advance_ns,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Skew / straggler diagnostics
// ---------------------------------------------------------------------------

/// Task-time and partition-size balance of one stage.
#[derive(Debug, Clone)]
pub struct StageSkew {
    pub stage: u64,
    pub kind: Option<StageKind>,
    pub num_tasks: usize,
    /// Median per-task virtual runtime.
    pub p50_ns: u64,
    /// 99th-percentile (nearest-rank) per-task virtual runtime.
    pub p99_ns: u64,
    pub max_ns: u64,
    /// `p99 / p50` task-time ratio; 1.0 for a perfectly balanced stage.
    pub time_skew: f64,
    /// Mean per-task bytes processed (input + shuffle read).
    pub mean_bytes: u64,
    pub max_bytes: u64,
    /// `max / mean` partition-size ratio; 1.0 when perfectly balanced.
    pub size_imbalance: f64,
}

fn nearest_rank(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * pct).div_ceil(100).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        if num == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num as f64 / den as f64
    }
}

/// Per-stage skew diagnostics, in stage-submission order. Stages that
/// completed no tasks are skipped.
pub fn stage_skew(trace: &ExecutionTrace) -> Vec<StageSkew> {
    trace
        .stages
        .iter()
        .filter(|s| !s.tasks.is_empty())
        .map(|s| {
            let mut times: Vec<u64> = s
                .tasks
                .iter()
                .map(TaskMetrics::virtual_runtime_ns)
                .collect();
            times.sort_unstable();
            let bytes: Vec<u64> = s
                .tasks
                .iter()
                .map(|t| t.input_bytes + t.shuffle_read_bytes)
                .collect();
            let max_bytes = bytes.iter().copied().max().unwrap_or(0);
            let mean_bytes = bytes.iter().sum::<u64>() / bytes.len() as u64;
            let p50_ns = nearest_rank(&times, 50);
            let p99_ns = nearest_rank(&times, 99);
            StageSkew {
                stage: s.stage,
                kind: s.kind,
                num_tasks: s.tasks.len(),
                p50_ns,
                p99_ns,
                max_ns: *times.last().expect("non-empty"),
                time_skew: ratio(p99_ns, p50_ns),
                mean_bytes,
                max_bytes,
                size_imbalance: ratio(max_bytes, mean_bytes),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Cache ROI
// ---------------------------------------------------------------------------

/// What caching bought (or failed to buy) in a run — the analyzable form
/// of the paper's Algorithm 1 vs Algorithm 3 comparison.
///
/// Hit/miss/recompute totals are exact sums of the per-task
/// [`TaskMetrics`] counters. The *saved* figures are estimates: each
/// cache hit is valued at the observed average cost of a miss (virtual
/// compute time, and input bytes re-read, of miss-carrying tasks divided
/// by their miss count). With no misses in the log there is no observed
/// recomputation cost to extrapolate from and the estimates are zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheRoi {
    pub hits: u64,
    pub misses: u64,
    /// Misses on previously-resident blocks (lineage recovery).
    pub recomputed: u64,
    pub evictions_pressure: u64,
    pub evictions_other: u64,
    /// Virtual compute time of tasks that carried ≥ 1 miss.
    pub miss_compute_ns: u64,
    /// Input bytes read by tasks that carried ≥ 1 miss.
    pub miss_input_bytes: u64,
    /// Estimated virtual time a single miss costs.
    pub est_ns_per_miss: u64,
    /// Estimated virtual time saved by the observed hits.
    pub est_saved_ns: u64,
    /// Estimated input bytes the observed hits avoided re-reading.
    pub est_saved_bytes: u64,
}

impl CacheRoi {
    /// Fraction of lookups that hit, if any happened.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Aggregate cache ROI over every task in the trace.
pub fn cache_roi(trace: &ExecutionTrace) -> CacheRoi {
    let mut roi = CacheRoi {
        evictions_pressure: trace.evictions_pressure,
        evictions_other: trace.evictions_other,
        ..CacheRoi::default()
    };
    for stage in &trace.stages {
        for task in &stage.tasks {
            roi.hits += task.cache_hits;
            roi.misses += task.cache_misses;
            roi.recomputed += task.recomputed_partitions;
            if task.cache_misses > 0 {
                roi.miss_compute_ns += task.virtual_compute_ns;
                roi.miss_input_bytes += task.input_bytes;
            }
        }
    }
    if let Some(per_miss) = roi.miss_compute_ns.checked_div(roi.misses) {
        roi.est_ns_per_miss = per_miss;
        roi.est_saved_ns = roi.hits * per_miss;
        roi.est_saved_bytes = roi.hits * (roi.miss_input_bytes / roi.misses);
    }
    roi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::sample_stream;

    fn trace() -> ExecutionTrace {
        ExecutionTrace::from_events(&sample_stream())
    }

    #[test]
    fn critical_path_follows_stage_chain() {
        let paths = critical_paths(&trace());
        assert_eq!(paths.len(), 2);
        let p0 = &paths[0];
        assert_eq!(
            p0.stages.iter().map(|s| s.stage).collect::<Vec<_>>(),
            vec![0, 1],
            "job 0's path is shuffle-map then result"
        );
        assert_eq!(p0.stages[0].kind, Some(StageKind::ShuffleMap));
        assert_eq!(p0.stages[1].kind, Some(StageKind::Result));
        assert_eq!(p0.path_ns, 13_500);
        assert_eq!(p0.virtual_advance_ns, 13_500);
        // Stage 0: makespan 10_000, slowest task 9_000 → slack 1_000.
        assert_eq!(p0.stages[0].critical_task_ns, 9_000);
        assert_eq!(p0.stages[0].critical_partition, 1);
        assert_eq!(p0.stages[0].slack_ns, 1_000);
        assert_eq!(p0.bottleneck().unwrap().stage, 0);
    }

    #[test]
    fn skew_reports_percentiles_and_imbalance() {
        let skews = stage_skew(&trace());
        // Stage 3 (internal) completed no tasks and is skipped.
        assert_eq!(skews.len(), 3);
        let s0 = &skews[0];
        assert_eq!(s0.stage, 0);
        assert_eq!((s0.p50_ns, s0.p99_ns, s0.max_ns), (4_000, 9_000, 9_000));
        assert!((s0.time_skew - 2.25).abs() < 1e-12);
        // Input bytes 100 and 200 → mean 150, max 200.
        assert_eq!((s0.mean_bytes, s0.max_bytes), (150, 200));
        assert!((s0.size_imbalance - 200.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 50), 50);
        assert_eq!(nearest_rank(&v, 99), 99);
        assert_eq!(nearest_rank(&[7], 99), 7);
        assert_eq!(nearest_rank(&[], 50), 0);
    }

    #[test]
    fn nearest_rank_degenerate_samples() {
        // One element: every percentile is that element, so p99/p50 skew
        // must come out exactly 1.0 for single-task stages.
        assert_eq!(nearest_rank(&[42], 1), 42);
        assert_eq!(nearest_rank(&[42], 50), 42);
        assert_eq!(nearest_rank(&[42], 100), 42);
        // All-equal samples: any rank picks the shared value.
        let flat = [9u64; 16];
        assert_eq!(nearest_rank(&flat, 50), 9);
        assert_eq!(nearest_rank(&flat, 99), 9);
        assert_eq!(ratio(nearest_rank(&flat, 99), nearest_rank(&flat, 50)), 1.0);
        // Two elements: p50 is the lower, p99 the upper (nearest-rank,
        // not interpolated).
        assert_eq!(nearest_rank(&[10, 90], 50), 10);
        assert_eq!(nearest_rank(&[10, 90], 99), 90);
        // Rank never reads past the end even at pct 100.
        let v: Vec<u64> = (1..=3).collect();
        assert_eq!(nearest_rank(&v, 100), 3);
    }

    #[test]
    fn cache_roi_totals_are_exact_sums() {
        let roi = cache_roi(&trace());
        // Stage 0: 4 misses; stage 1: 6 hits; stage 2: 1 hit + 1 miss.
        assert_eq!((roi.hits, roi.misses), (7, 5));
        assert_eq!(roi.evictions_pressure, 1);
        assert_eq!(roi.hit_rate(), Some(7.0 / 12.0));
        // Miss-carrying tasks: 4_000 + 9_000 + 1_000 compute ns.
        assert_eq!(roi.miss_compute_ns, 14_000);
        assert_eq!(roi.est_ns_per_miss, 2_800);
        assert_eq!(roi.est_saved_ns, 7 * 2_800);
    }

    #[test]
    fn cache_roi_without_misses_estimates_nothing() {
        let mut t = trace();
        for s in &mut t.stages {
            for task in &mut s.tasks {
                task.cache_misses = 0;
            }
        }
        let roi = cache_roi(&t);
        assert_eq!(roi.misses, 0);
        assert_eq!(roi.est_saved_ns, 0);
        assert_eq!(roi.hit_rate(), Some(1.0));
    }
}
