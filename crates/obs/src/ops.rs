//! Live ops endpoint: a dependency-free, line-based TCP server for
//! watching a running engine without stopping it.
//!
//! The protocol is deliberately primitive — the client connects, sends one
//! command line, and the server answers with a text document and closes the
//! connection. That makes it `nc`-scriptable with no HTTP stack, no
//! framing, and no client library:
//!
//! ```text
//! $ echo metrics | nc 127.0.0.1 <port>     # Prometheus text exposition
//! $ echo jobs    | nc 127.0.0.1 <port>     # live job table + path-so-far
//! $ echo "trace 3" | nc 127.0.0.1 <port>   # flight-recorder JSONL dump
//! $ echo profile | nc 127.0.0.1 <port>     # pool wall-clock attribution
//! $ echo memory  | nc 127.0.0.1 <port>     # memory ledger per category
//! ```
//!
//! `trace` output is a well-formed partial event log: it feeds straight
//! into [`ExecutionTrace::parse`] and therefore into the `trace` CLI
//! (`trace report --json -` style pipelines via a temp file).
//!
//! All data sources are optional — the server reports `err: no ... attached`
//! for commands whose source was not wired in, so a bare `metrics`-only
//! deployment works the same as a fully instrumented one.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sparkscore_rdd::events::fmt_ns;
use sparkscore_rdd::{FlightRecorder, JobService, MemoryLedger, PoolProfiler, Registry};

use crate::analyze::critical_paths;
use crate::trace::ExecutionTrace;

const HELP: &str = "commands:\n  metrics        Prometheus text exposition of live gauges/counters\n  jobs           live job table: phase, retained events, critical path so far\n  trace          flight-recorder dump of every retained job (JSONL)\n  trace <job>    flight-recorder dump of one job (JSONL)\n  profile        pool profiler wall-clock attribution\n  memory         live memory ledger: used/peak bytes per category\n  queue          job service status: bounds, depth, flow counters, live jobs\n  tenants        per-tenant quotas, backlog, and flow counters\n  help           this text\n";

/// The optional data sources a server exposes. Shared by every connection.
struct Sources {
    registry: Option<Arc<Registry>>,
    recorder: Option<Arc<FlightRecorder>>,
    profiler: Option<Arc<PoolProfiler>>,
    memory: Option<Arc<MemoryLedger>>,
    service: Option<Arc<JobService>>,
}

/// Configures and starts an [`OpsServer`].
pub struct OpsServerBuilder {
    addr: String,
    sources: Sources,
}

impl OpsServerBuilder {
    /// Address to bind; defaults to `127.0.0.1:0` (loopback, ephemeral
    /// port — read the actual port back from [`OpsServer::local_addr`]).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Serve this registry's metrics under `metrics`.
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.sources.registry = Some(registry);
        self
    }

    /// Serve this recorder's jobs under `jobs` and `trace`.
    pub fn recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.sources.recorder = Some(recorder);
        self
    }

    /// Serve this profiler's attribution under `profile`.
    pub fn profiler(mut self, profiler: Arc<PoolProfiler>) -> Self {
        self.sources.profiler = Some(profiler);
        self
    }

    /// Serve this ledger's per-category residency under `memory`
    /// (e.g. `Engine::memory_ledger`).
    pub fn memory(mut self, ledger: Arc<MemoryLedger>) -> Self {
        self.sources.memory = Some(ledger);
        self
    }

    /// Serve this job service's status under `queue` and `tenants`.
    pub fn service(mut self, service: Arc<JobService>) -> Self {
        self.sources.service = Some(service);
        self
    }

    /// Bind and start the accept thread.
    pub fn start(self) -> io::Result<OpsServer> {
        let listener = TcpListener::bind(&self.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sources = Arc::new(self.sources);
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("sparkscore-ops".into())
                .spawn(move || accept_loop(&listener, &stop, &sources))?
        };
        Ok(OpsServer {
            addr,
            stop,
            handle: Mutex::new(Some(handle)),
        })
    }
}

/// A running ops endpoint. Stops (and joins its accept thread) on
/// [`OpsServer::stop`] or drop.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl OpsServer {
    pub fn builder() -> OpsServerBuilder {
        OpsServerBuilder {
            addr: "127.0.0.1:0".to_string(),
            sources: Sources {
                registry: None,
                recorder: None,
                profiler: None,
                memory: None,
                service: None,
            },
        }
    }

    /// The bound address (port is ephemeral under the default bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the (possibly idle) accept call with a throwaway
        // connection; if the listener is already gone this just fails.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, sources: &Sources) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(conn) = conn else { continue };
        // One slow or wedged client must not pin the endpoint forever.
        let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = handle_connection(conn, sources);
    }
}

fn handle_connection(conn: TcpStream, sources: &Sources) -> io::Result<()> {
    let mut line = String::new();
    BufReader::new(&conn).read_line(&mut line)?;
    let response = respond(line.trim(), sources);
    let mut conn = conn;
    conn.write_all(response.as_bytes())?;
    conn.flush()
}

fn respond(line: &str, sources: &Sources) -> String {
    let words: Vec<&str> = line.split_whitespace().collect();
    match words[..] {
        ["metrics"] => sources.registry.as_ref().map_or_else(
            || "err: no registry attached\n".to_string(),
            |r| r.render_prometheus(),
        ),
        ["jobs"] => sources.recorder.as_ref().map_or_else(
            || "err: no recorder attached\n".to_string(),
            |r| jobs_table(r),
        ),
        ["trace"] => sources.recorder.as_ref().map_or_else(
            || "err: no recorder attached\n".to_string(),
            |r| r.dump_all(),
        ),
        ["trace", job] => match (sources.recorder.as_ref(), job.parse::<u64>()) {
            (None, _) => "err: no recorder attached\n".to_string(),
            (Some(_), Err(_)) => format!("err: bad job id {job:?}\n"),
            (Some(r), Ok(job)) => r
                .dump_job(job)
                .unwrap_or_else(|| format!("err: job {job} not retained\n")),
        },
        ["profile"] => sources
            .profiler
            .as_ref()
            .map_or_else(|| "err: no profiler attached\n".to_string(), |p| p.report()),
        ["memory"] => sources.memory.as_ref().map_or_else(
            || "err: no memory ledger attached\n".to_string(),
            |l| memory_table(l),
        ),
        ["queue"] => sources.service.as_ref().map_or_else(
            || "err: no job service attached\n".to_string(),
            |s| queue_table(s),
        ),
        ["tenants"] => sources.service.as_ref().map_or_else(
            || "err: no job service attached\n".to_string(),
            |s| tenants_table(s),
        ),
        ["help"] | [] => HELP.to_string(),
        _ => format!("err: unknown command {line:?}; try help\n"),
    }
}

/// The `memory` table: one line per ledger category — the same category
/// names the Prometheus `sparkscore_mem_*` gauges use — plus a total.
fn memory_table(ledger: &MemoryLedger) -> String {
    ledger.refresh();
    let mut out = String::new();
    out.push_str("category        used_bytes     peak_bytes\n");
    for r in ledger.snapshot() {
        out.push_str(&format!(
            "{:<14}  {:>12}  {:>12}\n",
            r.category.name(),
            r.used,
            r.peak
        ));
    }
    out.push_str(&format!("{:<14}  {:>12}\n", "total", ledger.total_used()));
    out
}

/// The `queue` table: service-wide bounds and flow counters, then one
/// line per retained service job (queued, running, recent terminal).
fn queue_table(service: &JobService) -> String {
    let status = service.queue_status();
    let mut out = format!(
        "queue {}/{} queued, {} running{}{}\n\
         flow: submitted {} rejected {} dispatched {} completed {} failed {} cancelled {}\n",
        status.queued,
        status.capacity,
        status.running,
        if status.paused { "  [paused]" } else { "" },
        if status.shutting_down {
            "  [shutting down]"
        } else {
            ""
        },
        status.stats.submitted,
        status.stats.rejected,
        status.stats.dispatched,
        status.stats.completed,
        status.stats.failed,
        status.stats.cancelled,
    );
    for job in service.jobs() {
        out.push_str(&format!(
            "job {:>4}  {:<10}  tenant {}\n",
            job.id,
            job.state.name(),
            job.tenant,
        ));
    }
    out
}

/// The `tenants` table: one line per tenant — quotas, live backlog, and
/// flow counters.
fn tenants_table(service: &JobService) -> String {
    let tenants = service.tenants();
    if tenants.is_empty() {
        return "no tenants registered\n".to_string();
    }
    let mut out = String::from(
        "tenant            w  queued/max  running/max  submitted  rejected  completed  failed  cancelled\n",
    );
    for t in tenants {
        out.push_str(&format!(
            "{:<16} {:>2}  {:>5}/{:<5} {:>6}/{:<5} {:>9} {:>9} {:>10} {:>7} {:>10}\n",
            t.name,
            t.weight,
            t.queued,
            t.max_queued,
            t.running,
            t.max_running,
            t.stats.submitted,
            t.stats.rejected,
            t.stats.completed,
            t.stats.failed,
            t.stats.cancelled,
        ));
    }
    out
}

/// The `jobs` table: one line per retained job. For a job still in flight
/// the critical path is the path *so far* — exactly what its partial
/// flight-recorder slice supports.
fn jobs_table(recorder: &FlightRecorder) -> String {
    let statuses = recorder.jobs();
    if statuses.is_empty() {
        return "no jobs recorded\n".to_string();
    }
    let mut out = String::new();
    for status in statuses {
        let events = recorder.job_events(status.job).unwrap_or_default();
        let trace = ExecutionTrace::from_events(&events);
        let path = critical_paths(&trace)
            .into_iter()
            .find(|p| p.job == status.job)
            .map_or_else(
                || "no completed stages yet".to_string(),
                |p| {
                    format!(
                        "critical path {} over {} stage(s)",
                        fmt_ns(p.path_ns),
                        p.stages.len()
                    )
                },
            );
        out.push_str(&format!(
            "job {:>4}  {:<8}  {:<12}  events {:>4}/{:<4}  {}{}\n",
            status.job,
            if status.finished {
                "finished"
            } else {
                "running"
            },
            status.tenant.as_deref().unwrap_or("-"),
            status.retained,
            status.seen,
            path,
            if status.finished { "" } else { "  [so far]" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::sample_stream;
    use sparkscore_rdd::EventListener;
    use std::io::Read;

    fn send(addr: SocketAddr, cmd: &str) -> String {
        let mut conn = TcpStream::connect(addr).expect("connect to ops endpoint");
        writeln!(conn, "{cmd}").expect("send command");
        let mut out = String::new();
        conn.read_to_string(&mut out).expect("read response");
        out
    }

    fn recorder_with_sample() -> Arc<FlightRecorder> {
        let recorder = Arc::new(FlightRecorder::new());
        recorder.on_events(&sample_stream());
        recorder
    }

    #[test]
    fn metrics_jobs_and_help_respond() {
        let registry = Arc::new(Registry::new());
        registry.counter("ops_test_total", "test counter").add(3);
        let server = OpsServer::builder()
            .registry(Arc::clone(&registry))
            .recorder(recorder_with_sample())
            .start()
            .expect("start ops server");
        let addr = server.local_addr();

        let metrics = send(addr, "metrics");
        assert!(
            metrics.contains("# TYPE ops_test_total counter"),
            "{metrics}"
        );
        assert!(metrics.contains("ops_test_total 3"), "{metrics}");

        let jobs = send(addr, "jobs");
        assert!(jobs.contains("job    0  finished"), "{jobs}");
        assert!(jobs.contains("job    1  finished"), "{jobs}");
        assert!(jobs.contains("critical path"), "{jobs}");

        let help = send(addr, "help");
        assert!(help.contains("commands:"), "{help}");
        server.stop();
    }

    #[test]
    fn trace_dump_is_parseable_by_the_analyzer() {
        let server = OpsServer::builder()
            .recorder(recorder_with_sample())
            .start()
            .expect("start ops server");
        let addr = server.local_addr();

        let one = send(addr, "trace 0");
        let trace = ExecutionTrace::parse(&one).expect("dump must parse");
        assert_eq!(trace.jobs.len(), 1);
        assert_eq!(trace.jobs[0].job, 0);

        let all = send(addr, "trace");
        let trace = ExecutionTrace::parse(&all).expect("full dump must parse");
        assert_eq!(trace.jobs.len(), 2);
        server.stop();
    }

    #[test]
    fn memory_table_lists_every_ledger_category() {
        use sparkscore_rdd::{MemCategory, MemoryLedger};
        let ledger = Arc::new(MemoryLedger::new());
        ledger.add(MemCategory::BlockCache, 4_096);
        ledger.add(MemCategory::ShuffleStore, 1_024);
        ledger.sub(MemCategory::ShuffleStore, 1_024);
        let server = OpsServer::builder()
            .memory(Arc::clone(&ledger))
            .start()
            .expect("start ops server");
        let table = send(server.local_addr(), "memory");
        // Same category names as the `sparkscore_mem_*` gauges, in the
        // ledger's canonical order.
        let names: Vec<&str> = table
            .lines()
            .skip(1)
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(
            names,
            vec![
                "block_cache",
                "shuffle_store",
                "dfs_blocks",
                "scratch",
                "total"
            ],
            "{table}"
        );
        let row = |name: &str| -> Vec<String> {
            table
                .lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("no {name} row in {table}"))
                .split_whitespace()
                .map(str::to_string)
                .collect()
        };
        assert_eq!(row("block_cache")[1..], ["4096", "4096"]);
        assert_eq!(row("shuffle_store")[1..], ["0", "1024"]);
        assert_eq!(row("total")[1..], ["4096"]);
        let help = send(server.local_addr(), "help");
        assert!(help.contains("memory"), "{help}");
        server.stop();
    }

    #[test]
    fn in_flight_jobs_show_path_so_far() {
        let recorder = Arc::new(FlightRecorder::new());
        let mut events = sample_stream();
        events.truncate(12); // keep everything up to stage 1's completion,
                             // drop job 0's JobEnd: job 0 is in flight
        recorder.on_events(&events);
        let server = OpsServer::builder()
            .recorder(recorder)
            .start()
            .expect("start ops server");
        let jobs = send(server.local_addr(), "jobs");
        assert!(jobs.contains("running"), "{jobs}");
        assert!(jobs.contains("[so far]"), "{jobs}");
        server.stop();
    }

    #[test]
    fn queue_and_tenants_report_service_state() {
        use sparkscore_cluster::ClusterSpec;
        use sparkscore_rdd::{Engine, JobService, ShutdownMode, TenantConfig};
        let engine = Engine::builder(ClusterSpec::test_small(2))
            .host_threads(2)
            .build();
        let service = JobService::builder(engine)
            .workers(1)
            .start_paused()
            .tenant(
                "acme",
                TenantConfig {
                    max_queued: 4,
                    max_running: 1,
                    weight: 2,
                },
            )
            .tenant("zeta", TenantConfig::default())
            .build();
        let job = service.submit("acme", |_| Ok(())).unwrap();
        let server = OpsServer::builder()
            .service(Arc::clone(&service))
            .start()
            .expect("start ops server");
        let addr = server.local_addr();

        let queue = send(addr, "queue");
        assert!(queue.contains("queue 1/256 queued"), "{queue}");
        assert!(queue.contains("[paused]"), "{queue}");
        assert!(queue.contains("submitted 1"), "{queue}");
        assert!(queue.contains(&format!("job {job:>4}  queued")), "{queue}");
        assert!(queue.contains("tenant acme"), "{queue}");

        let tenants = send(addr, "tenants");
        assert!(tenants.contains("acme"), "{tenants}");
        assert!(tenants.contains("zeta"), "{tenants}");
        let acme_row = tenants.lines().find(|l| l.starts_with("acme")).unwrap();
        assert!(acme_row.contains("1/4"), "queued/max: {acme_row}");

        let help = send(addr, "help");
        assert!(help.contains("queue"), "{help}");
        assert!(help.contains("tenants"), "{help}");

        service.resume();
        service.drain();
        let queue = send(addr, "queue");
        assert!(queue.contains("completed 1"), "{queue}");
        server.stop();
        service.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn missing_sources_and_bad_commands_err() {
        let server = OpsServer::builder().start().expect("start ops server");
        let addr = server.local_addr();
        assert_eq!(send(addr, "metrics"), "err: no registry attached\n");
        assert_eq!(send(addr, "jobs"), "err: no recorder attached\n");
        assert_eq!(send(addr, "profile"), "err: no profiler attached\n");
        assert_eq!(send(addr, "memory"), "err: no memory ledger attached\n");
        assert_eq!(send(addr, "queue"), "err: no job service attached\n");
        assert_eq!(send(addr, "tenants"), "err: no job service attached\n");
        assert!(send(addr, "frobnicate").starts_with("err: unknown command"));
        assert!(send(addr, "trace nope").starts_with("err: no recorder"));
        // stop() is idempotent and Drop tolerates an already-stopped server.
        server.stop();
        server.stop();
    }
}
