//! Trace analysis over engine event logs — the repo's analogue of the
//! Spark History Server.
//!
//! PR 1's event bus records *what happened* (a JSONL stream of
//! `EngineEvent`s); this crate answers *where the time went*. It parses a
//! log (or a captured in-memory stream) into an [`ExecutionTrace`]
//! — jobs → stages → tasks with full `TaskMetrics` — and computes:
//!
//! * **Critical path** ([`critical_paths`]) — each job's stage dependency
//!   chain weighted by stage makespan, with the slowest task and the slack
//!   (wave/queueing time) per stage.
//! * **Skew diagnostics** ([`stage_skew`]) — p99/p50 task-time ratio and
//!   partition-size imbalance per stage, the straggler view.
//! * **Cache ROI** ([`cache_roi`]) — exact hit/miss/recompute totals from
//!   the per-task counters plus an estimate of the virtual time and input
//!   bytes the hits saved: the paper's Algorithm 1 vs Algorithm 3
//!   comparison, derivable from any run.
//! * **Memory timeline** ([`MemoryTimeline`]) — per-op peak residency,
//!   eviction churn, and budget-headroom-over-time replayed from the
//!   memory plane's exact byte-delta events (`trace memory`).
//! * **DOT export** ([`to_dot`]) — the job/stage DAG annotated with time
//!   and shuffle volume, bottleneck stages highlighted.
//! * **Run diffing** ([`diff_report`]) — two logs compared stage-by-stage
//!   and by cache ROI (e.g. permutation vs multiplier resampling).
//!
//! The `trace` binary exposes all of it on the command line:
//!
//! ```text
//! cargo run -p sparkscore-obs --bin trace -- report        target/events/experiment_a.jsonl
//! cargo run -p sparkscore-obs --bin trace -- critical-path target/events/experiment_a.jsonl
//! cargo run -p sparkscore-obs --bin trace -- dot           target/events/experiment_a.jsonl
//! cargo run -p sparkscore-obs --bin trace -- diff          perm.jsonl multiplier.jsonl
//! ```
//!
//! Every analysis is a pure function of the trace with deterministic
//! iteration order, so output is byte-identical across invocations on the
//! same log. `report --json` (or [`report_json`]) renders the same digest
//! as machine-readable JSON with the same determinism guarantee.
//!
//! All analyses also accept **partial traces** — flight-recorder dumps of
//! an engine that is still running (jobs without `JobEnd`, stages without
//! `StageCompleted`). [`ExecutionTrace::is_partial`] flags them, reports
//! mark in-flight jobs, and [`ops::OpsServer`] serves such dumps (plus
//! live metrics and pool profiles) over a line-based TCP endpoint.

pub mod analyze;
pub mod dot;
pub mod memory;
pub mod ops;
pub mod report;
pub mod trace;

pub use analyze::{cache_roi, critical_paths, stage_skew, CacheRoi, CriticalPath, StageSkew};
pub use dot::to_dot;
pub use memory::{live_digest, MemoryTimeline, OpResidency};
pub use ops::{OpsServer, OpsServerBuilder};
pub use report::{cache_roi_line, critical_path_report, diff_report, report, report_json};
pub use trace::{ExecutionTrace, MemWatermark, SpanTotal, TraceJob, TraceSpan, TraceStage};
