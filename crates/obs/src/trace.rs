//! The trace model: an event stream reassembled into jobs → stages → tasks.
//!
//! [`ExecutionTrace`] is the analyzer's in-memory form of one engine run,
//! built either from a parsed JSONL event log ([`ExecutionTrace::parse`])
//! or directly from a captured event stream
//! ([`ExecutionTrace::from_events`], e.g. a
//! `sparkscore_rdd::MemoryEventListener` snapshot). Analyses over the
//! trace live in [`crate::analyze`]; rendering in [`crate::report`] and
//! [`crate::dot`].

use sparkscore_rdd::events::parse_event_log;
use sparkscore_rdd::{EngineEvent, FaultDetail, StageKind, TaskMetrics};

/// One sub-task interval (kernel call, shuffle fetch/write, cache
/// recompute) reported by a traced task.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    pub span: u64,
    /// Parent span id (the enclosing task's span).
    pub parent: u64,
    pub label: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl TraceSpan {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Wall-clock attribution of one span label across the whole trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTotal {
    pub label: String,
    pub count: usize,
    pub total_ns: u64,
}

/// One stage of the run with everything its events reported.
#[derive(Debug, Clone, Default)]
pub struct TraceStage {
    pub stage: u64,
    /// Owning job, `None` for engine-internal stages.
    pub job: Option<u64>,
    pub kind: Option<StageKind>,
    /// Task count announced at submission.
    pub num_tasks: usize,
    /// Virtual makespan of the stage's task batch.
    pub makespan_ns: u64,
    /// Tasks whose input came from a local replica.
    pub local_reads: usize,
    /// Completed tasks, in the order the engine reported them.
    pub tasks: Vec<TaskMetrics>,
    /// The stage's span id (0 on pre-span logs / untraced engines).
    pub span: u64,
    /// Parent (job) span id.
    pub parent_span: u64,
    /// Whether a `StageCompleted` was seen — `false` marks a stage still
    /// running when a partial (flight-recorder) trace was captured.
    pub completed: bool,
}

impl TraceStage {
    /// Sum of per-task virtual runtimes — the stage's total work, as
    /// opposed to its (parallel) makespan.
    pub fn total_task_ns(&self) -> u64 {
        self.tasks.iter().map(TaskMetrics::virtual_runtime_ns).sum()
    }

    /// The slowest task by virtual runtime, if any completed.
    pub fn critical_task(&self) -> Option<&TaskMetrics> {
        self.tasks.iter().max_by_key(|t| {
            // Deterministic tie-break on partition index.
            (t.virtual_runtime_ns(), std::cmp::Reverse(t.partition))
        })
    }

    pub fn shuffle_read_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.shuffle_read_bytes).sum()
    }

    pub fn shuffle_write_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.shuffle_write_bytes).sum()
    }

    pub fn input_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.input_bytes).sum()
    }

    pub fn cache_hits(&self) -> u64 {
        self.tasks.iter().map(|t| t.cache_hits).sum()
    }

    pub fn cache_misses(&self) -> u64 {
        self.tasks.iter().map(|t| t.cache_misses).sum()
    }

    /// SNP × patient cells pushed through the score kernels.
    pub fn kernel_rows(&self) -> u64 {
        self.tasks.iter().map(|t| t.kernel_rows).sum()
    }

    /// Kernel rows served by packed-direct bit kernels (no byte unpack) —
    /// a subset of [`TraceStage::kernel_rows`].
    pub fn packed_kernel_rows(&self) -> u64 {
        self.tasks.iter().map(|t| t.packed_kernel_rows).sum()
    }

    /// Kernel calls served from reused thread-local scratch.
    pub fn scratch_reuses(&self) -> u64 {
        self.tasks.iter().map(|t| t.scratch_reuses).sum()
    }

    /// Resampling row-replicate units computed by the distributed GEMM.
    pub fn replicates_run(&self) -> u64 {
        self.tasks.iter().map(|t| t.replicates_run).sum()
    }

    /// Row-replicate units adaptive early stopping skipped in-task.
    pub fn replicates_saved(&self) -> u64 {
        self.tasks.iter().map(|t| t.replicates_saved).sum()
    }

    /// Measured host wall time summed over this stage's tasks.
    pub fn total_wall_ns(&self) -> u64 {
        self.tasks.iter().map(|t| t.wall_ns).sum()
    }
}

/// One job: its virtual interval and the stages it submitted, in order.
///
/// The engine runs a job's stages sequentially on the driver (each
/// shuffle-map stage in dependency order, then the result stage), so this
/// stage list *is* the job's dependency chain.
#[derive(Debug, Clone, Default)]
pub struct TraceJob {
    pub job: u64,
    /// Virtual clock at submission.
    pub virtual_start_ns: u64,
    /// Virtual clock at completion (`None` for a truncated log).
    pub virtual_end_ns: Option<u64>,
    /// Virtual time the job added to the clock.
    pub virtual_advance_ns: u64,
    /// Stage ids in submission (= dependency) order.
    pub stages: Vec<u64>,
    /// The job's root span id (0 on pre-span logs / untraced engines).
    pub span: u64,
    /// Monotonic engine clock at start / end (end `None` while running).
    pub mono_start_ns: u64,
    pub mono_end_ns: Option<u64>,
}

/// One per-stage memory sample (a `MemoryWatermark` event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemWatermark {
    pub stage: u64,
    pub block_cache_bytes: u64,
    pub shuffle_store_bytes: u64,
    pub dfs_blocks_bytes: u64,
    pub scratch_bytes: u64,
    pub cache_budget_bytes: u64,
    pub mono_ns: u64,
}

impl MemWatermark {
    /// Total bytes resident across all ledger categories at this sample.
    pub fn total_bytes(&self) -> u64 {
        self.block_cache_bytes
            + self.shuffle_store_bytes
            + self.dfs_blocks_bytes
            + self.scratch_bytes
    }

    /// Cache budget minus cache residency (how much room was left).
    pub fn cache_headroom_bytes(&self) -> u64 {
        self.cache_budget_bytes
            .saturating_sub(self.block_cache_bytes)
    }
}

/// A full engine run reassembled from its event stream.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Jobs in submission order.
    pub jobs: Vec<TraceJob>,
    /// Stages in submission order (including engine-internal ones).
    pub stages: Vec<TraceStage>,
    /// Cache evictions under LRU pressure.
    pub evictions_pressure: u64,
    /// Cache evictions from faults/unpersist.
    pub evictions_other: u64,
    /// Blocks admitted to / rejected by the cache, with exact bytes.
    pub cache_admissions: u64,
    pub cache_admitted_bytes: u64,
    pub cache_rejections: u64,
    pub cache_rejected_bytes: u64,
    /// Bytes that left the cache (pressure, faults, and unpersist).
    pub cache_evicted_bytes: u64,
    /// Bytes written into the shuffle store by map tasks.
    pub shuffle_stored_bytes: u64,
    /// Per-stage memory samples, in event order.
    pub memory_watermarks: Vec<MemWatermark>,
    /// Lost shuffle map outputs recomputed inline from lineage.
    pub shuffle_map_reruns: u64,
    /// Faults the injector actually applied.
    pub faults: Vec<FaultDetail>,
    /// Sub-task spans in event order.
    pub spans: Vec<TraceSpan>,
}

impl ExecutionTrace {
    /// Reassemble a trace from a typed event stream.
    pub fn from_events(events: &[EngineEvent]) -> Self {
        let mut trace = ExecutionTrace::default();
        for event in events {
            trace.apply(event);
        }
        trace
    }

    /// Parse a JSONL event log (as written by
    /// `sparkscore_rdd::EventLogListener`) into a trace.
    pub fn parse(text: &str) -> Result<Self, serde_json::Error> {
        Ok(Self::from_events(&parse_event_log(text)?))
    }

    fn job_mut(&mut self, job: u64) -> &mut TraceJob {
        if let Some(i) = self.jobs.iter().position(|j| j.job == job) {
            return &mut self.jobs[i];
        }
        self.jobs.push(TraceJob {
            job,
            ..TraceJob::default()
        });
        self.jobs.last_mut().expect("just pushed")
    }

    fn stage_mut(&mut self, stage: u64) -> &mut TraceStage {
        if let Some(i) = self.stages.iter().position(|s| s.stage == stage) {
            return &mut self.stages[i];
        }
        self.stages.push(TraceStage {
            stage,
            ..TraceStage::default()
        });
        self.stages.last_mut().expect("just pushed")
    }

    fn apply(&mut self, event: &EngineEvent) {
        match event {
            EngineEvent::JobStart {
                job,
                virtual_now_ns,
                span,
                mono_ns,
            } => {
                let j = self.job_mut(*job);
                j.virtual_start_ns = *virtual_now_ns;
                j.span = span.span;
                j.mono_start_ns = *mono_ns;
            }
            EngineEvent::JobEnd {
                job,
                virtual_now_ns,
                virtual_advance_ns,
                span,
                mono_ns,
            } => {
                let j = self.job_mut(*job);
                j.virtual_end_ns = Some(*virtual_now_ns);
                j.virtual_advance_ns = *virtual_advance_ns;
                if j.span == 0 {
                    j.span = span.span;
                }
                j.mono_end_ns = Some(*mono_ns);
            }
            EngineEvent::StageSubmitted {
                job,
                stage,
                kind,
                num_tasks,
                span,
                ..
            } => {
                {
                    let s = self.stage_mut(*stage);
                    s.job = *job;
                    s.kind = Some(*kind);
                    s.num_tasks = *num_tasks;
                    s.span = span.span;
                    s.parent_span = span.parent;
                }
                if let Some(job) = job {
                    let j = self.job_mut(*job);
                    if !j.stages.contains(stage) {
                        j.stages.push(*stage);
                    }
                }
            }
            EngineEvent::StageCompleted {
                stage,
                makespan_ns,
                local_reads,
                ..
            } => {
                let s = self.stage_mut(*stage);
                s.makespan_ns = *makespan_ns;
                s.local_reads = *local_reads;
                s.completed = true;
            }
            EngineEvent::TaskStart { .. } => {}
            EngineEvent::TaskEnd { stage, metrics } => {
                self.stage_mut(*stage).tasks.push(*metrics);
            }
            EngineEvent::Span {
                span,
                label,
                start_ns,
                end_ns,
            } => self.spans.push(TraceSpan {
                span: span.span,
                parent: span.parent,
                label: label.clone(),
                start_ns: *start_ns,
                end_ns: *end_ns,
            }),
            EngineEvent::CacheEvicted {
                pressure, bytes, ..
            } => {
                if *pressure {
                    self.evictions_pressure += 1;
                } else {
                    self.evictions_other += 1;
                }
                self.cache_evicted_bytes += bytes;
            }
            EngineEvent::CacheAdmitted { bytes, .. } => {
                self.cache_admissions += 1;
                self.cache_admitted_bytes += bytes;
            }
            EngineEvent::CacheRejected { bytes, .. } => {
                self.cache_rejections += 1;
                self.cache_rejected_bytes += bytes;
            }
            EngineEvent::ShuffleBytesStored { bytes, .. } => {
                self.shuffle_stored_bytes += bytes;
            }
            EngineEvent::MemoryWatermark {
                stage,
                block_cache_bytes,
                shuffle_store_bytes,
                dfs_blocks_bytes,
                scratch_bytes,
                cache_budget_bytes,
                mono_ns,
            } => self.memory_watermarks.push(MemWatermark {
                stage: *stage,
                block_cache_bytes: *block_cache_bytes,
                shuffle_store_bytes: *shuffle_store_bytes,
                dfs_blocks_bytes: *dfs_blocks_bytes,
                scratch_bytes: *scratch_bytes,
                cache_budget_bytes: *cache_budget_bytes,
                mono_ns: *mono_ns,
            }),
            EngineEvent::ShuffleMapRerun { .. } => self.shuffle_map_reruns += 1,
            EngineEvent::FaultInjected { fault } => self.faults.push(*fault),
        }
    }

    pub fn stage(&self, stage: u64) -> Option<&TraceStage> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// A job's stages in submission (= dependency) order.
    pub fn job_stages(&self, job: u64) -> Vec<&TraceStage> {
        self.jobs
            .iter()
            .find(|j| j.job == job)
            .map(|j| j.stages.iter().filter_map(|&s| self.stage(s)).collect())
            .unwrap_or_default()
    }

    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }

    /// Total virtual time across all completed jobs.
    pub fn total_virtual_ns(&self) -> u64 {
        self.jobs.iter().map(|j| j.virtual_advance_ns).sum()
    }

    pub fn total_shuffle_read_bytes(&self) -> u64 {
        self.stages.iter().map(TraceStage::shuffle_read_bytes).sum()
    }

    pub fn total_shuffle_write_bytes(&self) -> u64 {
        self.stages
            .iter()
            .map(TraceStage::shuffle_write_bytes)
            .sum()
    }

    pub fn total_input_bytes(&self) -> u64 {
        self.stages.iter().map(TraceStage::input_bytes).sum()
    }

    pub fn total_kernel_rows(&self) -> u64 {
        self.stages.iter().map(TraceStage::kernel_rows).sum()
    }

    /// Kernel rows served by packed-direct bit kernels across all stages —
    /// a subset of [`ExecutionTrace::total_kernel_rows`].
    pub fn total_packed_kernel_rows(&self) -> u64 {
        self.stages.iter().map(TraceStage::packed_kernel_rows).sum()
    }

    pub fn total_scratch_reuses(&self) -> u64 {
        self.stages.iter().map(TraceStage::scratch_reuses).sum()
    }

    /// Resampling row-replicate units computed across all stages.
    pub fn total_replicates_run(&self) -> u64 {
        self.stages.iter().map(TraceStage::replicates_run).sum()
    }

    /// Row-replicate units adaptive early stopping skipped in-task.
    pub fn total_replicates_saved(&self) -> u64 {
        self.stages.iter().map(TraceStage::replicates_saved).sum()
    }

    /// Host wall time of tasks that reported kernel work vs all tasks —
    /// the kernel-vs-engine attribution `trace report` prints.
    pub fn kernel_wall_split_ns(&self) -> (u64, u64) {
        let mut kernel = 0;
        let mut total = 0;
        for s in &self.stages {
            for t in &s.tasks {
                total += t.wall_ns;
                if t.kernel_rows > 0 {
                    kernel += t.wall_ns;
                }
            }
        }
        (kernel, total)
    }

    /// Aggregate sub-task spans by label: count and total wall time,
    /// largest total first (label tie-break) — deterministic.
    pub fn span_totals(&self) -> Vec<SpanTotal> {
        let mut by_label: std::collections::BTreeMap<&str, (usize, u64)> = Default::default();
        for s in &self.spans {
            let e = by_label.entry(&s.label).or_default();
            e.0 += 1;
            e.1 += s.duration_ns();
        }
        let mut totals: Vec<SpanTotal> = by_label
            .into_iter()
            .map(|(label, (count, total_ns))| SpanTotal {
                label: label.to_string(),
                count,
                total_ns,
            })
            .collect();
        totals.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then_with(|| a.label.cmp(&b.label))
        });
        totals
    }

    /// Jobs with no `JobEnd` yet — still running when the trace was
    /// captured (e.g. a flight-recorder dump).
    pub fn open_jobs(&self) -> Vec<u64> {
        self.jobs
            .iter()
            .filter(|j| j.virtual_end_ns.is_none())
            .map(|j| j.job)
            .collect()
    }

    /// Whether this trace was captured mid-run: a job is open or a
    /// submitted stage has not completed.
    pub fn is_partial(&self) -> bool {
        !self.open_jobs().is_empty() || self.stages.iter().any(|s| !s.completed)
    }
}

/// A two-job stream used by this crate's tests: job 0 has a shuffle-map
/// stage feeding a result stage; job 1 is a single result stage. One
/// internal stage rides along, plus an eviction, a re-run, and a fault.
#[cfg(test)]
pub(crate) fn sample_stream() -> Vec<EngineEvent> {
    tests::sample_stream_impl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkscore_rdd::events::SpanContext;

    pub(super) fn sample_stream_impl() -> Vec<EngineEvent> {
        fn task(partition: usize, runtime: u64, hits: u64, misses: u64) -> TaskMetrics {
            TaskMetrics {
                partition,
                wall_ns: runtime / 2,
                virtual_compute_ns: runtime,
                virtual_start_ns: 0,
                virtual_finish_ns: runtime,
                input_bytes: 100 * (partition as u64 + 1),
                shuffle_write_bytes: 10,
                cache_hits: hits,
                cache_misses: misses,
                ..TaskMetrics::default()
            }
        }
        vec![
            EngineEvent::JobStart {
                job: 0,
                virtual_now_ns: 0,
                span: SpanContext::root(1),
                mono_ns: 100,
            },
            EngineEvent::StageSubmitted {
                job: Some(0),
                stage: 0,
                kind: StageKind::ShuffleMap,
                num_tasks: 2,
                span: SpanContext { span: 2, parent: 1 },
                mono_ns: 150,
            },
            EngineEvent::TaskEnd {
                stage: 0,
                metrics: TaskMetrics {
                    kernel_rows: 1_200,
                    packed_kernel_rows: 1_200,
                    scratch_reuses: 3,
                    replicates_run: 64,
                    replicates_saved: 16,
                    ..task(0, 4_000, 0, 2)
                },
            },
            EngineEvent::TaskEnd {
                stage: 0,
                metrics: TaskMetrics {
                    kernel_rows: 800,
                    scratch_reuses: 1,
                    replicates_run: 36,
                    replicates_saved: 4,
                    ..task(1, 9_000, 0, 2)
                },
            },
            EngineEvent::Span {
                span: SpanContext {
                    span: 10,
                    parent: 2,
                },
                label: "kernel:contributions".to_string(),
                start_ns: 200,
                end_ns: 1_400,
            },
            EngineEvent::Span {
                span: SpanContext {
                    span: 11,
                    parent: 2,
                },
                label: "shuffle:write".to_string(),
                start_ns: 1_400,
                end_ns: 1_700,
            },
            EngineEvent::StageCompleted {
                job: Some(0),
                stage: 0,
                kind: StageKind::ShuffleMap,
                makespan_ns: 10_000,
                local_reads: 2,
                span: SpanContext { span: 2, parent: 1 },
                mono_ns: 2_000,
            },
            EngineEvent::StageSubmitted {
                job: Some(0),
                stage: 1,
                kind: StageKind::Result,
                num_tasks: 2,
                span: SpanContext { span: 3, parent: 1 },
                mono_ns: 2_050,
            },
            EngineEvent::TaskEnd {
                stage: 1,
                metrics: task(0, 3_000, 3, 0),
            },
            EngineEvent::TaskEnd {
                stage: 1,
                metrics: task(1, 2_000, 3, 0),
            },
            EngineEvent::Span {
                span: SpanContext {
                    span: 12,
                    parent: 3,
                },
                label: "shuffle:fetch".to_string(),
                start_ns: 2_100,
                end_ns: 2_500,
            },
            EngineEvent::StageCompleted {
                job: Some(0),
                stage: 1,
                kind: StageKind::Result,
                makespan_ns: 3_500,
                local_reads: 0,
                span: SpanContext { span: 3, parent: 1 },
                mono_ns: 3_000,
            },
            EngineEvent::JobEnd {
                job: 0,
                virtual_now_ns: 13_500,
                virtual_advance_ns: 13_500,
                span: SpanContext::root(1),
                mono_ns: 3_100,
            },
            EngineEvent::CacheEvicted {
                op: 4,
                partition: 0,
                pressure: true,
                bytes: 512,
            },
            EngineEvent::ShuffleMapRerun {
                shuffle: 0,
                map_part: 1,
            },
            EngineEvent::FaultInjected {
                fault: FaultDetail::KillNode { node: 1 },
            },
            EngineEvent::JobStart {
                job: 1,
                virtual_now_ns: 13_500,
                span: SpanContext::root(4),
                mono_ns: 3_200,
            },
            EngineEvent::StageSubmitted {
                job: Some(1),
                stage: 2,
                kind: StageKind::Result,
                num_tasks: 1,
                span: SpanContext { span: 5, parent: 4 },
                mono_ns: 3_250,
            },
            EngineEvent::TaskEnd {
                stage: 2,
                metrics: task(0, 1_000, 1, 1),
            },
            EngineEvent::StageCompleted {
                job: Some(1),
                stage: 2,
                kind: StageKind::Result,
                makespan_ns: 1_000,
                local_reads: 1,
                span: SpanContext { span: 5, parent: 4 },
                mono_ns: 4_000,
            },
            EngineEvent::JobEnd {
                job: 1,
                virtual_now_ns: 14_500,
                virtual_advance_ns: 1_000,
                span: SpanContext::root(4),
                mono_ns: 4_100,
            },
            EngineEvent::StageSubmitted {
                job: None,
                stage: 3,
                kind: StageKind::Result,
                num_tasks: 1,
                span: SpanContext::NONE,
                mono_ns: 0,
            },
            EngineEvent::StageCompleted {
                job: None,
                stage: 3,
                kind: StageKind::Result,
                makespan_ns: 7,
                local_reads: 0,
                span: SpanContext::NONE,
                mono_ns: 0,
            },
            // Memory-plane tail: admissions, a rejection, shuffle store
            // bytes, and two per-stage watermark samples.
            EngineEvent::CacheAdmitted {
                op: 4,
                partition: 0,
                bytes: 2_048,
            },
            EngineEvent::CacheRejected {
                op: 9,
                partition: 1,
                bytes: 1 << 30,
            },
            EngineEvent::ShuffleBytesStored {
                shuffle: 0,
                map_part: 1,
                bytes: 20,
            },
            EngineEvent::MemoryWatermark {
                stage: 0,
                block_cache_bytes: 2_048,
                shuffle_store_bytes: 20,
                dfs_blocks_bytes: 4_096,
                scratch_bytes: 0,
                cache_budget_bytes: 1 << 20,
                mono_ns: 1_900,
            },
            EngineEvent::MemoryWatermark {
                stage: 1,
                block_cache_bytes: 1_536,
                shuffle_store_bytes: 20,
                dfs_blocks_bytes: 4_096,
                scratch_bytes: 256,
                cache_budget_bytes: 1 << 20,
                mono_ns: 2_900,
            },
        ]
    }

    #[test]
    fn trace_reassembles_jobs_stages_tasks() {
        let trace = ExecutionTrace::from_events(&sample_stream());
        assert_eq!(trace.jobs.len(), 2);
        assert_eq!(trace.stages.len(), 4);
        assert_eq!(trace.total_tasks(), 5);
        assert_eq!(trace.jobs[0].stages, vec![0, 1]);
        assert_eq!(trace.jobs[0].virtual_advance_ns, 13_500);
        assert_eq!(trace.jobs[1].virtual_end_ns, Some(14_500));
        assert_eq!(trace.total_virtual_ns(), 14_500);
        assert_eq!(trace.evictions_pressure, 1);
        assert_eq!(trace.shuffle_map_reruns, 1);
        assert_eq!(trace.faults.len(), 1);

        // Memory-plane aggregates.
        assert_eq!(trace.cache_admissions, 1);
        assert_eq!(trace.cache_admitted_bytes, 2_048);
        assert_eq!(trace.cache_rejections, 1);
        assert_eq!(trace.cache_rejected_bytes, 1 << 30);
        assert_eq!(trace.cache_evicted_bytes, 512);
        assert_eq!(trace.shuffle_stored_bytes, 20);
        assert_eq!(trace.memory_watermarks.len(), 2);
        assert_eq!(trace.memory_watermarks[0].total_bytes(), 6_164);
        assert_eq!(
            trace.memory_watermarks[1].cache_headroom_bytes(),
            (1 << 20) - 1_536
        );

        let s0 = trace.stage(0).unwrap();
        assert_eq!(s0.kind, Some(StageKind::ShuffleMap));
        assert_eq!(s0.critical_task().unwrap().partition, 1);
        assert_eq!(s0.total_task_ns(), 13_000);
        assert_eq!(s0.cache_misses(), 4);
        assert_eq!(s0.kernel_rows(), 2_000);
        assert_eq!(s0.packed_kernel_rows(), 1_200);
        assert_eq!(s0.scratch_reuses(), 4);
        assert_eq!(trace.total_kernel_rows(), 2_000);
        assert_eq!(trace.total_packed_kernel_rows(), 1_200);
        assert_eq!(s0.replicates_run(), 100);
        assert_eq!(s0.replicates_saved(), 20);
        assert_eq!(trace.total_replicates_run(), 100);
        assert_eq!(trace.total_replicates_saved(), 20);
        // Only stage 0's tasks reported kernel work: 2000 + 4500 wall ns.
        assert_eq!(trace.kernel_wall_split_ns().0, 6_500);
        // The internal stage belongs to no job.
        assert_eq!(trace.stage(3).unwrap().job, None);
        assert_eq!(trace.job_stages(0).len(), 2);

        // Span linkage: job root → stage → sub-task spans.
        assert_eq!(trace.jobs[0].span, 1);
        assert_eq!(trace.jobs[0].mono_end_ns, Some(3_100));
        assert_eq!((s0.span, s0.parent_span), (2, 1));
        assert!(s0.completed);
        assert_eq!(trace.spans.len(), 3);
        assert!(!trace.is_partial(), "completed run is not partial");
    }

    #[test]
    fn span_totals_aggregate_by_label() {
        let totals = ExecutionTrace::from_events(&sample_stream()).span_totals();
        assert_eq!(totals.len(), 3);
        // kernel:contributions (1_200 ns) > shuffle:fetch (400) > write (300).
        assert_eq!(totals[0].label, "kernel:contributions");
        assert_eq!(totals[0].total_ns, 1_200);
        assert_eq!(totals[0].count, 1);
        assert_eq!(totals[1].label, "shuffle:fetch");
        assert_eq!(totals[2].label, "shuffle:write");
    }

    #[test]
    fn partial_trace_reports_open_jobs() {
        let mut events = sample_stream();
        events.truncate(11); // cut before stage 1's StageCompleted
        let trace = ExecutionTrace::from_events(&events);
        assert!(trace.is_partial());
        assert_eq!(trace.open_jobs(), vec![0]);
        let s1 = trace.stage(1).unwrap();
        assert!(!s1.completed);
        assert_eq!(s1.tasks.len(), 2, "finished tasks are still analyzable");
    }

    #[test]
    fn trace_round_trips_through_jsonl() {
        let events = sample_stream();
        let text: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let trace = ExecutionTrace::parse(&text).unwrap();
        assert_eq!(trace.total_tasks(), 5);
        assert_eq!(trace.jobs.len(), 2);
        assert!(ExecutionTrace::parse("not json\n").is_err());
    }

    #[test]
    fn truncated_log_leaves_job_open() {
        let mut events = sample_stream();
        events.truncate(12); // cut before job 0's JobEnd
        let trace = ExecutionTrace::from_events(&events);
        assert_eq!(trace.jobs[0].virtual_end_ns, None);
        assert_eq!(trace.jobs[0].virtual_advance_ns, 0);
        assert_eq!(trace.jobs[0].mono_end_ns, None);
    }
}
