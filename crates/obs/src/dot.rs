//! Graphviz DOT export of a trace: jobs as clusters, stages as nodes
//! annotated with time and shuffle volume, dependency edges along each
//! job's stage chain, and the per-job bottleneck stage highlighted.
//!
//! Render with e.g. `dot -Tsvg trace.dot -o trace.svg`.

use sparkscore_rdd::events::{fmt_bytes, fmt_ns};
use sparkscore_rdd::StageKind;

use crate::analyze::critical_paths;
use crate::trace::{ExecutionTrace, TraceStage};

fn stage_label(s: &TraceStage) -> String {
    let kind = s.kind.map_or("?", |k| match k {
        StageKind::Result => "Result",
        StageKind::ShuffleMap => "ShuffleMap",
    });
    let mut label = format!(
        "stage {}\\n{} · {} tasks\\n{}",
        s.stage,
        kind,
        s.num_tasks,
        fmt_ns(s.makespan_ns)
    );
    let (r, w) = (s.shuffle_read_bytes(), s.shuffle_write_bytes());
    if r > 0 || w > 0 {
        label.push_str(&format!(
            "\\nshuffle R {} / W {}",
            fmt_bytes(r),
            fmt_bytes(w)
        ));
    }
    let hits = s.cache_hits();
    let misses = s.cache_misses();
    if hits > 0 || misses > 0 {
        label.push_str(&format!("\\ncache {hits}H/{misses}M"));
    }
    label
}

/// Render the trace as a deterministic DOT digraph.
pub fn to_dot(trace: &ExecutionTrace) -> String {
    let mut out = String::new();
    out.push_str("digraph trace {\n");
    out.push_str("  rankdir=LR;\n");
    out.push_str("  node [shape=box, fontname=\"monospace\"];\n");

    // Per-job bottleneck stages get highlighted.
    let bottlenecks: Vec<u64> = critical_paths(trace)
        .iter()
        .filter_map(|p| p.bottleneck().map(|s| s.stage))
        .collect();

    for job in &trace.jobs {
        out.push_str(&format!("  subgraph cluster_job_{} {{\n", job.job));
        out.push_str(&format!(
            "    label=\"job {} ({})\";\n",
            job.job,
            fmt_ns(job.virtual_advance_ns)
        ));
        for &sid in &job.stages {
            if let Some(s) = trace.stage(sid) {
                let style = if bottlenecks.contains(&sid) {
                    ", style=bold, color=red"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "    s{} [label=\"{}\"{}];\n",
                    sid,
                    stage_label(s),
                    style
                ));
            }
        }
        for pair in job.stages.windows(2) {
            out.push_str(&format!("    s{} -> s{};\n", pair[0], pair[1]));
        }
        out.push_str("  }\n");
    }

    // Engine-internal stages (no owning job) in their own cluster.
    let internal: Vec<&TraceStage> = trace.stages.iter().filter(|s| s.job.is_none()).collect();
    if !internal.is_empty() {
        out.push_str("  subgraph cluster_internal {\n");
        out.push_str("    label=\"engine-internal\";\n    style=dashed;\n");
        for s in internal {
            out.push_str(&format!(
                "    s{} [label=\"{}\"];\n",
                s.stage,
                stage_label(s)
            ));
        }
        out.push_str("  }\n");
    }

    // Jobs run sequentially on the driver: dashed ordering edges between
    // the last stage of one job and the first stage of the next.
    for pair in trace.jobs.windows(2) {
        if let (Some(&from), Some(&to)) = (pair[0].stages.last(), pair[1].stages.first()) {
            out.push_str(&format!("  s{from} -> s{to} [style=dashed];\n"));
        }
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::sample_stream;

    #[test]
    fn dot_is_deterministic_and_structured() {
        let trace = ExecutionTrace::from_events(&sample_stream());
        let a = to_dot(&trace);
        let b = to_dot(&ExecutionTrace::from_events(&sample_stream()));
        assert_eq!(a, b, "same events must render byte-identical DOT");
        assert!(a.starts_with("digraph trace {"));
        assert!(a.contains("subgraph cluster_job_0"));
        assert!(a.contains("s0 -> s1;"), "{a}");
        assert!(a.contains("cluster_internal"));
        // Job 0's bottleneck (stage 0) is highlighted.
        assert!(a.contains("s0 [label=\"stage 0\\nShuffleMap"), "{a}");
        assert!(a.contains("style=bold, color=red"), "{a}");
        // Inter-job ordering edge.
        assert!(a.contains("s1 -> s2 [style=dashed];"), "{a}");
    }
}
