//! `trace` — analyze an engine event log from the command line.
//!
//! ```text
//! trace report        <log.jsonl>   full digest: totals, critical paths, skew, cache ROI
//! trace report --json <log.jsonl>   the same digest as deterministic JSON
//! trace critical-path <log.jsonl>   per-job critical path only
//! trace memory        <log.jsonl>   memory timeline: per-op residency, churn, headroom
//! trace memory --json <log.jsonl>   the same timeline as deterministic JSON
//! trace dot           <log.jsonl>   Graphviz DOT of the job/stage DAG
//! trace diff          <a.jsonl> <b.jsonl>   compare two runs
//! ```
//!
//! Output goes to stdout; parse/IO errors to stderr with a non-zero exit.

use sparkscore_obs::{
    critical_path_report, diff_report, report, report_json, to_dot, ExecutionTrace, MemoryTimeline,
};

const USAGE: &str = "usage: trace <report|critical-path|memory|dot> [--json] <log.jsonl>\n       trace diff <a.jsonl> <b.jsonl>";

fn load(path: &str) -> ExecutionTrace {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace: cannot read {path}: {err}");
            std::process::exit(1);
        }
    };
    match ExecutionTrace::parse(&text) {
        Ok(trace) => trace,
        Err(err) => {
            eprintln!("trace: cannot parse {path}: {err}");
            std::process::exit(1);
        }
    }
}

fn load_memory(path: &str) -> MemoryTimeline {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace: cannot read {path}: {err}");
            std::process::exit(1);
        }
    };
    match MemoryTimeline::parse(&text) {
        Ok(timeline) => timeline,
        Err(err) => {
            eprintln!("trace: cannot parse {path}: {err}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["report", path] => report(&load(path)),
        ["report", "--json", path] | ["report", path, "--json"] => {
            let mut json = report_json(&load(path)).to_string();
            json.push('\n');
            json
        }
        ["critical-path", path] => critical_path_report(&load(path)),
        ["memory", path] => load_memory(path).report(),
        ["memory", "--json", path] | ["memory", path, "--json"] => {
            let mut json = load_memory(path).to_json().to_string();
            json.push('\n');
            json
        }
        ["dot", path] => to_dot(&load(path)),
        ["diff", a, b] => diff_report(a, &load(a), b, &load(b)),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    // Write directly so `trace report log | head` exits quietly instead
    // of panicking when the pipe closes early.
    use std::io::Write;
    let _ = std::io::stdout().write_all(out.as_bytes());
}
