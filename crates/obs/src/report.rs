//! Text rendering: the `trace report` digest, the standalone
//! critical-path view, and the two-log `trace diff`.
//!
//! All output is built from deterministic iteration orders and fixed
//! float formatting, so a fixed input log renders byte-identical text.

use sparkscore_rdd::events::{fmt_bytes, fmt_ns};
use sparkscore_rdd::StageKind;

use crate::analyze::{cache_roi, critical_paths, stage_skew, CacheRoi, CriticalPath};
use crate::trace::ExecutionTrace;

fn kind_str(kind: Option<StageKind>) -> &'static str {
    match kind {
        Some(StageKind::Result) => "Result",
        Some(StageKind::ShuffleMap) => "ShuffleMap",
        None => "?",
    }
}

fn render_path(out: &mut String, path: &CriticalPath, in_flight: bool) {
    out.push_str(&format!(
        "job {}: critical path {} over {} stage(s) (observed advance {}){}\n",
        path.job,
        fmt_ns(path.path_ns),
        path.stages.len(),
        fmt_ns(path.virtual_advance_ns),
        if in_flight { "  [in flight]" } else { "" },
    ));
    let chain: Vec<String> = path
        .stages
        .iter()
        .map(|s| format!("{}[{}]", s.stage, kind_str(s.kind)))
        .collect();
    out.push_str(&format!("  chain: {}\n", chain.join(" -> ")));
    for s in &path.stages {
        out.push_str(&format!(
            "  stage {:>4} {:<10} {:>3} tasks  makespan {:>9}  slowest task {:>9} (p{})  slack {:>9}\n",
            s.stage,
            kind_str(s.kind),
            s.num_tasks,
            fmt_ns(s.makespan_ns),
            fmt_ns(s.critical_task_ns),
            s.critical_partition,
            fmt_ns(s.slack_ns),
        ));
    }
    if let Some(b) = path.bottleneck() {
        out.push_str(&format!(
            "  bottleneck: stage {} ({} of the path)\n",
            b.stage,
            percent(b.makespan_ns, path.path_ns),
        ));
    }
}

fn percent(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", part as f64 / whole as f64 * 100.0)
    }
}

/// The one-line cache accounting the digest and the diff both print.
/// Hit/miss totals are exact sums of the log's per-task counters.
pub fn cache_roi_line(roi: &CacheRoi) -> String {
    let rate = roi
        .hit_rate()
        .map_or_else(|| "-".to_string(), |r| format!("{:.1}%", r * 100.0));
    format!(
        "cache ROI: hits={} misses={} hit-rate={} recomputed={} evicted={}+{} \
         est-saved={} ({}/miss) est-bytes-saved={}",
        roi.hits,
        roi.misses,
        rate,
        roi.recomputed,
        roi.evictions_pressure,
        roi.evictions_other,
        fmt_ns(roi.est_saved_ns),
        fmt_ns(roi.est_ns_per_miss),
        fmt_bytes(roi.est_saved_bytes),
    )
}

/// Standalone critical-path view (`trace critical-path`). Jobs that were
/// still running when the trace was captured (a flight-recorder dump of a
/// live engine) are marked in flight: their path is the critical path
/// *so far*.
pub fn critical_path_report(trace: &ExecutionTrace) -> String {
    let open = trace.open_jobs();
    let mut out = String::new();
    for path in critical_paths(trace) {
        render_path(&mut out, &path, open.contains(&path.job));
    }
    if out.is_empty() {
        out.push_str("no jobs in log\n");
    }
    out
}

/// The full digest (`trace report`): run totals, per-job critical paths,
/// the most skewed stages, and the cache-ROI line.
pub fn report(trace: &ExecutionTrace) -> String {
    let mut out = String::new();
    out.push_str("== run totals ==\n");
    out.push_str(&format!(
        "jobs={} stages={} tasks={} virtual={} input={} shuffle R/W={}/{} map-reruns={} faults={}\n",
        trace.jobs.len(),
        trace.stages.len(),
        trace.total_tasks(),
        fmt_ns(trace.total_virtual_ns()),
        fmt_bytes(trace.total_input_bytes()),
        fmt_bytes(trace.total_shuffle_read_bytes()),
        fmt_bytes(trace.total_shuffle_write_bytes()),
        trace.shuffle_map_reruns,
        trace.faults.len(),
    ));
    if trace.is_partial() {
        let open = trace.open_jobs();
        let jobs: Vec<String> = open.iter().map(|j| j.to_string()).collect();
        out.push_str(&format!(
            "partial trace: {} job(s) still in flight [{}]\n",
            open.len(),
            jobs.join(", "),
        ));
    }

    out.push_str("\n== critical paths ==\n");
    out.push_str(&critical_path_report(trace));

    out.push_str("\n== task skew (worst stages by p99/p50) ==\n");
    let mut skews = stage_skew(trace);
    skews.sort_by(|a, b| {
        b.time_skew
            .total_cmp(&a.time_skew)
            .then(a.stage.cmp(&b.stage))
    });
    for s in skews.iter().take(8) {
        out.push_str(&format!(
            "stage {:>4} {:<10} {:>3} tasks  p50 {:>9}  p99 {:>9}  max {:>9}  skew {:>5.2}x  bytes max/mean {:.2}x\n",
            s.stage,
            kind_str(s.kind),
            s.num_tasks,
            fmt_ns(s.p50_ns),
            fmt_ns(s.p99_ns),
            fmt_ns(s.max_ns),
            s.time_skew,
            s.size_imbalance,
        ));
    }
    if skews.is_empty() {
        out.push_str("no completed tasks in log\n");
    }

    out.push_str("\n== cache ==\n");
    out.push_str(&cache_roi_line(&cache_roi(trace)));
    out.push('\n');

    out.push_str("\n== kernels ==\n");
    let (kernel_wall, total_wall) = trace.kernel_wall_split_ns();
    let kernel_rows = trace.total_kernel_rows();
    let packed_rows = trace.total_packed_kernel_rows();
    out.push_str(&format!(
        "kernel rows={} (packed={} unpacked={}) scratch reuses={} kernel-task wall={} ({} of {} total wall)\n",
        kernel_rows,
        packed_rows,
        kernel_rows.saturating_sub(packed_rows),
        trace.total_scratch_reuses(),
        fmt_ns(kernel_wall),
        percent(kernel_wall, total_wall),
        fmt_ns(total_wall),
    ));
    let rep_run = trace.total_replicates_run();
    let rep_saved = trace.total_replicates_saved();
    if rep_run > 0 || rep_saved > 0 {
        out.push_str(&format!(
            "resampling row-replicates run={rep_run} saved={rep_saved} ({} of potential skipped)\n",
            percent(rep_saved, rep_run + rep_saved),
        ));
    }

    out.push_str("\n== spans ==\n");
    let spans = trace.span_totals();
    if spans.is_empty() {
        out.push_str("no sub-task spans in log\n");
    } else {
        for s in &spans {
            out.push_str(&format!(
                "{:<24} count={:<6} total={:>9}\n",
                s.label,
                s.count,
                fmt_ns(s.total_ns),
            ));
        }
    }
    out
}

/// Machine-readable mirror of [`report`] (`trace report --json`).
///
/// Sections and ordering track the text digest; object keys are emitted in
/// fixed insertion order and all collections derive from the same
/// deterministic analyses, so a fixed input log serialises byte-identically.
pub fn report_json(trace: &ExecutionTrace) -> serde_json::Value {
    use serde_json::{json, Value};

    let open = trace.open_jobs();
    let totals = json!({
        "jobs": trace.jobs.len() as u64,
        "stages": trace.stages.len() as u64,
        "tasks": trace.total_tasks() as u64,
        "virtual_ns": trace.total_virtual_ns(),
        "input_bytes": trace.total_input_bytes(),
        "shuffle_read_bytes": trace.total_shuffle_read_bytes(),
        "shuffle_write_bytes": trace.total_shuffle_write_bytes(),
        "shuffle_map_reruns": trace.shuffle_map_reruns,
        "faults": trace.faults.len() as u64,
    });

    let paths: Vec<Value> = critical_paths(trace)
        .iter()
        .map(|p| {
            let stages: Vec<Value> = p
                .stages
                .iter()
                .map(|s| {
                    json!({
                        "stage": s.stage,
                        "kind": kind_str(s.kind),
                        "num_tasks": s.num_tasks as u64,
                        "makespan_ns": s.makespan_ns,
                        "critical_task_ns": s.critical_task_ns,
                        "critical_partition": s.critical_partition as u64,
                        "slack_ns": s.slack_ns,
                    })
                })
                .collect();
            let bottleneck = p.bottleneck().map_or(Value::Null, |b| Value::from(b.stage));
            json!({
                "job": p.job,
                "path_ns": p.path_ns,
                "virtual_advance_ns": p.virtual_advance_ns,
                "in_flight": open.contains(&p.job),
                "bottleneck_stage": bottleneck,
                "stages": stages,
            })
        })
        .collect();

    let mut skews = stage_skew(trace);
    skews.sort_by(|a, b| {
        b.time_skew
            .total_cmp(&a.time_skew)
            .then(a.stage.cmp(&b.stage))
    });
    let skew: Vec<Value> = skews
        .iter()
        .map(|s| {
            json!({
                "stage": s.stage,
                "kind": kind_str(s.kind),
                "num_tasks": s.num_tasks as u64,
                "p50_ns": s.p50_ns,
                "p99_ns": s.p99_ns,
                "max_ns": s.max_ns,
                "time_skew": s.time_skew,
                "size_imbalance": s.size_imbalance,
            })
        })
        .collect();

    let roi = cache_roi(trace);
    let hit_rate = roi.hit_rate().map_or(Value::Null, Value::from);
    let cache = json!({
        "hits": roi.hits,
        "misses": roi.misses,
        "hit_rate": hit_rate,
        "recomputed": roi.recomputed,
        "evictions_pressure": roi.evictions_pressure,
        "evictions_other": roi.evictions_other,
        "est_saved_ns": roi.est_saved_ns,
        "est_ns_per_miss": roi.est_ns_per_miss,
        "est_saved_bytes": roi.est_saved_bytes,
    });

    let (kernel_wall, total_wall) = trace.kernel_wall_split_ns();
    let kernels = json!({
        "kernel_rows": trace.total_kernel_rows(),
        "packed_kernel_rows": trace.total_packed_kernel_rows(),
        "scratch_reuses": trace.total_scratch_reuses(),
        "replicates_run": trace.total_replicates_run(),
        "replicates_saved": trace.total_replicates_saved(),
        "kernel_task_wall_ns": kernel_wall,
        "total_task_wall_ns": total_wall,
    });

    let spans: Vec<Value> = trace
        .span_totals()
        .iter()
        .map(|s| {
            json!({
                "label": s.label.as_str(),
                "count": s.count as u64,
                "total_ns": s.total_ns,
            })
        })
        .collect();

    let open_jobs: Vec<Value> = open.iter().map(|&j| Value::from(j)).collect();
    json!({
        "totals": totals,
        "partial": trace.is_partial(),
        "open_jobs": open_jobs,
        "critical_paths": paths,
        "skew": skew,
        "cache": cache,
        "kernels": kernels,
        "spans": spans,
    })
}

fn signed_ns(a: u64, b: u64) -> String {
    if a >= b {
        format!("+{}", fmt_ns(a - b))
    } else {
        format!("-{}", fmt_ns(b - a))
    }
}

/// Stage-by-stage and aggregate comparison of two runs (`trace diff`) —
/// e.g. an Algorithm-2 permutation log vs an Algorithm-3 multiplier log
/// of the same dataset. Attributes the virtual-time gap to cache reuse by
/// comparing each side's cache ROI.
pub fn diff_report(name_a: &str, a: &ExecutionTrace, name_b: &str, b: &ExecutionTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("diff: A={name_a}  B={name_b}\n\n"));
    out.push_str("== totals (A vs B) ==\n");
    let rows: [(&str, String, String); 5] = [
        ("jobs", a.jobs.len().to_string(), b.jobs.len().to_string()),
        (
            "stages",
            a.stages.len().to_string(),
            b.stages.len().to_string(),
        ),
        (
            "tasks",
            a.total_tasks().to_string(),
            b.total_tasks().to_string(),
        ),
        (
            "virtual time",
            fmt_ns(a.total_virtual_ns()),
            fmt_ns(b.total_virtual_ns()),
        ),
        (
            "shuffle write",
            fmt_bytes(a.total_shuffle_write_bytes()),
            fmt_bytes(b.total_shuffle_write_bytes()),
        ),
    ];
    for (label, va, vb) in rows {
        out.push_str(&format!("{label:>14}: {va:>12} | {vb:>12}\n"));
    }
    out.push_str(&format!(
        "{:>14}: {} (A - B)\n",
        "gap",
        signed_ns(a.total_virtual_ns(), b.total_virtual_ns())
    ));

    let (roi_a, roi_b) = (cache_roi(a), cache_roi(b));
    out.push_str("\n== cache ROI ==\n");
    out.push_str(&format!("A: {}\n", cache_roi_line(&roi_a)));
    out.push_str(&format!("B: {}\n", cache_roi_line(&roi_b)));
    let (winner, delta) = if roi_a.est_saved_ns >= roi_b.est_saved_ns {
        (name_a, roi_a.est_saved_ns - roi_b.est_saved_ns)
    } else {
        (name_b, roi_b.est_saved_ns - roi_a.est_saved_ns)
    };
    out.push_str(&format!(
        "{winner} saves an estimated {} more virtual time through cache reuse \
         ({} vs {} hits)\n",
        fmt_ns(delta),
        roi_a.hits,
        roi_b.hits,
    ));

    out.push_str("\n== stage-by-stage (aligned by submission index) ==\n");
    out.push_str("   idx |            A              |            B\n");
    let n = a.stages.len().max(b.stages.len());
    for i in 0..n {
        let cell = |t: &ExecutionTrace| {
            t.stages.get(i).map_or_else(
                || "-".to_string(),
                |s| {
                    format!(
                        "s{} {} {}t {}",
                        s.stage,
                        kind_str(s.kind),
                        s.num_tasks,
                        fmt_ns(s.makespan_ns)
                    )
                },
            )
        };
        out.push_str(&format!("{i:>6} | {:<25} | {:<25}\n", cell(a), cell(b)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::sample_stream;

    fn trace() -> ExecutionTrace {
        ExecutionTrace::from_events(&sample_stream())
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let a = report(&trace());
        let b = report(&trace());
        assert_eq!(a, b, "same events must render byte-identical reports");
        assert!(a.contains("== critical paths =="));
        assert!(a.contains("chain: 0[ShuffleMap] -> 1[Result]"), "{a}");
        assert!(a.contains("cache ROI: hits=7 misses=5"), "{a}");
        assert!(a.contains("map-reruns=1 faults=1"), "{a}");
        assert!(a.contains("== kernels =="), "{a}");
        assert!(
            a.contains("kernel rows=2000 (packed=1200 unpacked=800) scratch reuses=4"),
            "{a}"
        );
        assert!(
            a.contains("resampling row-replicates run=100 saved=20"),
            "{a}"
        );
        assert!(a.contains("== spans =="), "{a}");
        assert!(a.contains("kernel:contributions"), "{a}");
        assert!(
            !a.contains("partial trace"),
            "complete log must not be flagged partial: {a}"
        );
    }

    /// Nested object lookup for test assertions (`Value` has no `Index`).
    fn at<'a>(v: &'a serde_json::Value, path: &[&str]) -> &'a serde_json::Value {
        path.iter().fold(v, |v, key| {
            v.get(key).unwrap_or_else(|| panic!("missing key {key}"))
        })
    }

    #[test]
    fn partial_trace_is_flagged_in_report() {
        let mut events = sample_stream();
        events.truncate(11); // cut before stage 1 completes: job 0 in flight
        let t = ExecutionTrace::from_events(&events);
        let r = report(&t);
        assert!(
            r.contains("partial trace: 1 job(s) still in flight [0]"),
            "{r}"
        );
        assert!(r.contains("[in flight]"), "{r}");
    }

    #[test]
    fn report_json_is_byte_deterministic_and_mirrors_text() {
        let t = trace();
        let a = report_json(&t).to_string();
        let b = report_json(&t).to_string();
        assert_eq!(a, b, "same trace must serialise byte-identically");
        let v = report_json(&t);
        assert_eq!(at(&v, &["totals", "jobs"]).as_u64(), Some(2));
        assert_eq!(at(&v, &["totals", "tasks"]).as_u64(), Some(5));
        assert_eq!(at(&v, &["partial"]).as_bool(), Some(false));
        assert_eq!(at(&v, &["open_jobs"]).as_array().map(<[_]>::len), Some(0));
        let paths = at(&v, &["critical_paths"]).as_array().expect("paths array");
        assert_eq!(paths.len(), 2);
        assert_eq!(at(&paths[0], &["job"]).as_u64(), Some(0));
        assert_eq!(at(&paths[0], &["in_flight"]).as_bool(), Some(false));
        assert_eq!(
            at(&paths[0], &["stages"]).as_array().map(<[_]>::len),
            Some(2),
            "two-stage chain"
        );
        assert_eq!(at(&v, &["cache", "hits"]).as_u64(), Some(7));
        assert_eq!(at(&v, &["kernels", "kernel_rows"]).as_u64(), Some(2_000));
        assert_eq!(
            at(&v, &["kernels", "packed_kernel_rows"]).as_u64(),
            Some(1_200)
        );
        assert_eq!(at(&v, &["kernels", "replicates_run"]).as_u64(), Some(100));
        assert_eq!(at(&v, &["kernels", "replicates_saved"]).as_u64(), Some(20));
        let spans = at(&v, &["spans"]).as_array().expect("spans array");
        assert!(!spans.is_empty());
        assert_eq!(
            at(&spans[0], &["label"]).as_str(),
            Some("kernel:contributions")
        );
    }

    #[test]
    fn report_json_marks_open_jobs() {
        let mut events = sample_stream();
        events.truncate(11);
        let t = ExecutionTrace::from_events(&events);
        let v = report_json(&t);
        assert_eq!(at(&v, &["partial"]).as_bool(), Some(true));
        let open = at(&v, &["open_jobs"]).as_array().expect("open_jobs array");
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].as_u64(), Some(0));
        let paths = at(&v, &["critical_paths"]).as_array().expect("paths array");
        assert_eq!(at(&paths[0], &["in_flight"]).as_bool(), Some(true));
    }

    #[test]
    fn critical_path_report_handles_empty_trace() {
        let empty = ExecutionTrace::default();
        assert_eq!(critical_path_report(&empty), "no jobs in log\n");
    }

    #[test]
    fn diff_attributes_gap_to_cache_reuse() {
        let a = trace();
        let mut b = trace();
        // Strip B's cache hits: B is the "no reuse" run.
        for s in &mut b.stages {
            for t in &mut s.tasks {
                t.cache_hits = 0;
            }
        }
        let d = diff_report("alg3", &a, "alg2", &b);
        assert!(d.contains("diff: A=alg3  B=alg2"));
        assert!(
            d.contains("alg3 saves an estimated"),
            "alg3 has more hits: {d}"
        );
        assert!(d.contains("(7 vs 0 hits)"), "{d}");
        // Deterministic too.
        assert_eq!(d, diff_report("alg3", &a, "alg2", &b));
    }
}
