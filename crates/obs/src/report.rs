//! Text rendering: the `trace report` digest, the standalone
//! critical-path view, and the two-log `trace diff`.
//!
//! All output is built from deterministic iteration orders and fixed
//! float formatting, so a fixed input log renders byte-identical text.

use sparkscore_rdd::events::{fmt_bytes, fmt_ns};
use sparkscore_rdd::StageKind;

use crate::analyze::{cache_roi, critical_paths, stage_skew, CacheRoi, CriticalPath};
use crate::trace::ExecutionTrace;

fn kind_str(kind: Option<StageKind>) -> &'static str {
    match kind {
        Some(StageKind::Result) => "Result",
        Some(StageKind::ShuffleMap) => "ShuffleMap",
        None => "?",
    }
}

fn render_path(out: &mut String, path: &CriticalPath) {
    out.push_str(&format!(
        "job {}: critical path {} over {} stage(s) (observed advance {})\n",
        path.job,
        fmt_ns(path.path_ns),
        path.stages.len(),
        fmt_ns(path.virtual_advance_ns),
    ));
    let chain: Vec<String> = path
        .stages
        .iter()
        .map(|s| format!("{}[{}]", s.stage, kind_str(s.kind)))
        .collect();
    out.push_str(&format!("  chain: {}\n", chain.join(" -> ")));
    for s in &path.stages {
        out.push_str(&format!(
            "  stage {:>4} {:<10} {:>3} tasks  makespan {:>9}  slowest task {:>9} (p{})  slack {:>9}\n",
            s.stage,
            kind_str(s.kind),
            s.num_tasks,
            fmt_ns(s.makespan_ns),
            fmt_ns(s.critical_task_ns),
            s.critical_partition,
            fmt_ns(s.slack_ns),
        ));
    }
    if let Some(b) = path.bottleneck() {
        out.push_str(&format!(
            "  bottleneck: stage {} ({} of the path)\n",
            b.stage,
            percent(b.makespan_ns, path.path_ns),
        ));
    }
}

fn percent(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", part as f64 / whole as f64 * 100.0)
    }
}

/// The one-line cache accounting the digest and the diff both print.
/// Hit/miss totals are exact sums of the log's per-task counters.
pub fn cache_roi_line(roi: &CacheRoi) -> String {
    let rate = roi
        .hit_rate()
        .map_or_else(|| "-".to_string(), |r| format!("{:.1}%", r * 100.0));
    format!(
        "cache ROI: hits={} misses={} hit-rate={} recomputed={} evicted={}+{} \
         est-saved={} ({}/miss) est-bytes-saved={}",
        roi.hits,
        roi.misses,
        rate,
        roi.recomputed,
        roi.evictions_pressure,
        roi.evictions_other,
        fmt_ns(roi.est_saved_ns),
        fmt_ns(roi.est_ns_per_miss),
        fmt_bytes(roi.est_saved_bytes),
    )
}

/// Standalone critical-path view (`trace critical-path`).
pub fn critical_path_report(trace: &ExecutionTrace) -> String {
    let mut out = String::new();
    for path in critical_paths(trace) {
        render_path(&mut out, &path);
    }
    if out.is_empty() {
        out.push_str("no jobs in log\n");
    }
    out
}

/// The full digest (`trace report`): run totals, per-job critical paths,
/// the most skewed stages, and the cache-ROI line.
pub fn report(trace: &ExecutionTrace) -> String {
    let mut out = String::new();
    out.push_str("== run totals ==\n");
    out.push_str(&format!(
        "jobs={} stages={} tasks={} virtual={} input={} shuffle R/W={}/{} map-reruns={} faults={}\n",
        trace.jobs.len(),
        trace.stages.len(),
        trace.total_tasks(),
        fmt_ns(trace.total_virtual_ns()),
        fmt_bytes(trace.total_input_bytes()),
        fmt_bytes(trace.total_shuffle_read_bytes()),
        fmt_bytes(trace.total_shuffle_write_bytes()),
        trace.shuffle_map_reruns,
        trace.faults.len(),
    ));

    out.push_str("\n== critical paths ==\n");
    out.push_str(&critical_path_report(trace));

    out.push_str("\n== task skew (worst stages by p99/p50) ==\n");
    let mut skews = stage_skew(trace);
    skews.sort_by(|a, b| {
        b.time_skew
            .total_cmp(&a.time_skew)
            .then(a.stage.cmp(&b.stage))
    });
    for s in skews.iter().take(8) {
        out.push_str(&format!(
            "stage {:>4} {:<10} {:>3} tasks  p50 {:>9}  p99 {:>9}  max {:>9}  skew {:>5.2}x  bytes max/mean {:.2}x\n",
            s.stage,
            kind_str(s.kind),
            s.num_tasks,
            fmt_ns(s.p50_ns),
            fmt_ns(s.p99_ns),
            fmt_ns(s.max_ns),
            s.time_skew,
            s.size_imbalance,
        ));
    }
    if skews.is_empty() {
        out.push_str("no completed tasks in log\n");
    }

    out.push_str("\n== cache ==\n");
    out.push_str(&cache_roi_line(&cache_roi(trace)));
    out.push('\n');

    out.push_str("\n== kernels ==\n");
    let (kernel_wall, total_wall) = trace.kernel_wall_split_ns();
    out.push_str(&format!(
        "kernel rows={} scratch reuses={} kernel-task wall={} ({} of {} total wall)\n",
        trace.total_kernel_rows(),
        trace.total_scratch_reuses(),
        fmt_ns(kernel_wall),
        percent(kernel_wall, total_wall),
        fmt_ns(total_wall),
    ));
    out
}

fn signed_ns(a: u64, b: u64) -> String {
    if a >= b {
        format!("+{}", fmt_ns(a - b))
    } else {
        format!("-{}", fmt_ns(b - a))
    }
}

/// Stage-by-stage and aggregate comparison of two runs (`trace diff`) —
/// e.g. an Algorithm-2 permutation log vs an Algorithm-3 multiplier log
/// of the same dataset. Attributes the virtual-time gap to cache reuse by
/// comparing each side's cache ROI.
pub fn diff_report(name_a: &str, a: &ExecutionTrace, name_b: &str, b: &ExecutionTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("diff: A={name_a}  B={name_b}\n\n"));
    out.push_str("== totals (A vs B) ==\n");
    let rows: [(&str, String, String); 5] = [
        ("jobs", a.jobs.len().to_string(), b.jobs.len().to_string()),
        (
            "stages",
            a.stages.len().to_string(),
            b.stages.len().to_string(),
        ),
        (
            "tasks",
            a.total_tasks().to_string(),
            b.total_tasks().to_string(),
        ),
        (
            "virtual time",
            fmt_ns(a.total_virtual_ns()),
            fmt_ns(b.total_virtual_ns()),
        ),
        (
            "shuffle write",
            fmt_bytes(a.total_shuffle_write_bytes()),
            fmt_bytes(b.total_shuffle_write_bytes()),
        ),
    ];
    for (label, va, vb) in rows {
        out.push_str(&format!("{label:>14}: {va:>12} | {vb:>12}\n"));
    }
    out.push_str(&format!(
        "{:>14}: {} (A - B)\n",
        "gap",
        signed_ns(a.total_virtual_ns(), b.total_virtual_ns())
    ));

    let (roi_a, roi_b) = (cache_roi(a), cache_roi(b));
    out.push_str("\n== cache ROI ==\n");
    out.push_str(&format!("A: {}\n", cache_roi_line(&roi_a)));
    out.push_str(&format!("B: {}\n", cache_roi_line(&roi_b)));
    let (winner, delta) = if roi_a.est_saved_ns >= roi_b.est_saved_ns {
        (name_a, roi_a.est_saved_ns - roi_b.est_saved_ns)
    } else {
        (name_b, roi_b.est_saved_ns - roi_a.est_saved_ns)
    };
    out.push_str(&format!(
        "{winner} saves an estimated {} more virtual time through cache reuse \
         ({} vs {} hits)\n",
        fmt_ns(delta),
        roi_a.hits,
        roi_b.hits,
    ));

    out.push_str("\n== stage-by-stage (aligned by submission index) ==\n");
    out.push_str("   idx |            A              |            B\n");
    let n = a.stages.len().max(b.stages.len());
    for i in 0..n {
        let cell = |t: &ExecutionTrace| {
            t.stages.get(i).map_or_else(
                || "-".to_string(),
                |s| {
                    format!(
                        "s{} {} {}t {}",
                        s.stage,
                        kind_str(s.kind),
                        s.num_tasks,
                        fmt_ns(s.makespan_ns)
                    )
                },
            )
        };
        out.push_str(&format!("{i:>6} | {:<25} | {:<25}\n", cell(a), cell(b)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::sample_stream;

    fn trace() -> ExecutionTrace {
        ExecutionTrace::from_events(&sample_stream())
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let a = report(&trace());
        let b = report(&trace());
        assert_eq!(a, b, "same events must render byte-identical reports");
        assert!(a.contains("== critical paths =="));
        assert!(a.contains("chain: 0[ShuffleMap] -> 1[Result]"), "{a}");
        assert!(a.contains("cache ROI: hits=7 misses=5"), "{a}");
        assert!(a.contains("map-reruns=1 faults=1"), "{a}");
        assert!(a.contains("== kernels =="), "{a}");
        assert!(a.contains("kernel rows=2000 scratch reuses=4"), "{a}");
    }

    #[test]
    fn critical_path_report_handles_empty_trace() {
        let empty = ExecutionTrace::default();
        assert_eq!(critical_path_report(&empty), "no jobs in log\n");
    }

    #[test]
    fn diff_attributes_gap_to_cache_reuse() {
        let a = trace();
        let mut b = trace();
        // Strip B's cache hits: B is the "no reuse" run.
        for s in &mut b.stages {
            for t in &mut s.tasks {
                t.cache_hits = 0;
            }
        }
        let d = diff_report("alg3", &a, "alg2", &b);
        assert!(d.contains("diff: A=alg3  B=alg2"));
        assert!(
            d.contains("alg3 saves an estimated"),
            "alg3 has more hits: {d}"
        );
        assert!(d.contains("(7 vs 0 hits)"), "{d}");
        // Deterministic too.
        assert_eq!(d, diff_report("alg3", &a, "alg2", &b));
    }
}
