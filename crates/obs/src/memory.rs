//! Offline memory-timeline analysis: where the bytes lived.
//!
//! The event log carries exact byte deltas for every block that enters or
//! leaves the cache ([`EngineEvent::CacheAdmitted`] /
//! [`EngineEvent::CacheEvicted`]), every shuffle map output stored
//! ([`EngineEvent::ShuffleBytesStored`]), and one
//! [`EngineEvent::MemoryWatermark`] sample per observed stage. Replaying
//! those deltas reconstructs the run's residency timeline without any
//! live instrumentation:
//!
//! * **Per-op peak residency** — how many bytes each cached op held at its
//!   worst, and what it still held at the end of the log.
//! * **Eviction churn** — bytes re-admitted for a block that had already
//!   been evicted once: the cost of a cache budget that is too small
//!   (every churned byte was recomputed from lineage).
//! * **Budget headroom over time** — per-stage watermark samples of every
//!   ledger category against the cache budget.
//!
//! Like the rest of this crate, every analysis is a pure function of the
//! event stream with deterministic iteration order: a fixed log renders
//! byte-identical text and JSON.

use std::collections::{BTreeMap, BTreeSet};

use sparkscore_rdd::events::{fmt_bytes, parse_event_log};
use sparkscore_rdd::{EngineEvent, MemReading};

use crate::trace::MemWatermark;

/// Byte residency of one cached op across the replayed log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpResidency {
    pub op: u64,
    pub admissions: u64,
    pub admitted_bytes: u64,
    pub evictions: u64,
    pub evicted_bytes: u64,
    pub rejections: u64,
    pub rejected_bytes: u64,
    /// Bytes re-admitted for a (op, partition) that had already been
    /// evicted — each one paid a lineage recompute.
    pub churn_bytes: u64,
    /// Most bytes this op held resident at once.
    pub peak_bytes: u64,
    /// Bytes still resident at the end of the log.
    pub final_bytes: u64,
}

/// The replayed memory timeline of one run. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct MemoryTimeline {
    /// Per-op residency, ordered by op id.
    pub ops: Vec<OpResidency>,
    /// Per-stage watermark samples, in event order.
    pub watermarks: Vec<MemWatermark>,
    /// Most bytes the whole cache held at once (replayed, not sampled).
    pub peak_cache_bytes: u64,
    /// Cache bytes still resident at the end of the log.
    pub final_cache_bytes: u64,
    /// Total bytes re-admitted after a prior eviction of the same block.
    pub churn_bytes: u64,
    /// Map outputs written into the shuffle store.
    pub shuffle_stores: u64,
    pub shuffle_stored_bytes: u64,
}

impl MemoryTimeline {
    /// Replay a typed event stream into a timeline.
    pub fn from_events(events: &[EngineEvent]) -> Self {
        let mut tl = MemoryTimeline::default();
        let mut per_op: BTreeMap<u64, OpResidency> = BTreeMap::new();
        // Live per-block residency and the set of blocks evicted at least
        // once — membership of a re-admitted block is what defines churn.
        let mut resident: BTreeMap<(u64, usize), u64> = BTreeMap::new();
        let mut evicted_once: BTreeSet<(u64, usize)> = BTreeSet::new();
        let mut cache_now: u64 = 0;
        let mut op_now: BTreeMap<u64, u64> = BTreeMap::new();

        for event in events {
            match event {
                EngineEvent::CacheAdmitted {
                    op,
                    partition,
                    bytes,
                } => {
                    let key = (*op, *partition);
                    // A replacement put first displaces the old block.
                    if let Some(old) = resident.insert(key, *bytes) {
                        cache_now = cache_now.saturating_sub(old);
                        if let Some(n) = op_now.get_mut(op) {
                            *n = n.saturating_sub(old);
                        }
                    }
                    cache_now += bytes;
                    tl.peak_cache_bytes = tl.peak_cache_bytes.max(cache_now);
                    let acc = per_op.entry(*op).or_default();
                    acc.admissions += 1;
                    acc.admitted_bytes += bytes;
                    if evicted_once.contains(&key) {
                        acc.churn_bytes += bytes;
                        tl.churn_bytes += bytes;
                    }
                    let now = op_now.entry(*op).or_default();
                    *now += bytes;
                    acc.peak_bytes = acc.peak_bytes.max(*now);
                }
                EngineEvent::CacheEvicted {
                    op,
                    partition,
                    bytes,
                    ..
                } => {
                    let key = (*op, *partition);
                    resident.remove(&key);
                    evicted_once.insert(key);
                    cache_now = cache_now.saturating_sub(*bytes);
                    if let Some(n) = op_now.get_mut(op) {
                        *n = n.saturating_sub(*bytes);
                    }
                    let acc = per_op.entry(*op).or_default();
                    acc.evictions += 1;
                    acc.evicted_bytes += bytes;
                }
                EngineEvent::CacheRejected { op, bytes, .. } => {
                    let acc = per_op.entry(*op).or_default();
                    acc.rejections += 1;
                    acc.rejected_bytes += bytes;
                }
                EngineEvent::ShuffleBytesStored { bytes, .. } => {
                    tl.shuffle_stores += 1;
                    tl.shuffle_stored_bytes += bytes;
                }
                EngineEvent::MemoryWatermark {
                    stage,
                    block_cache_bytes,
                    shuffle_store_bytes,
                    dfs_blocks_bytes,
                    scratch_bytes,
                    cache_budget_bytes,
                    mono_ns,
                } => tl.watermarks.push(MemWatermark {
                    stage: *stage,
                    block_cache_bytes: *block_cache_bytes,
                    shuffle_store_bytes: *shuffle_store_bytes,
                    dfs_blocks_bytes: *dfs_blocks_bytes,
                    scratch_bytes: *scratch_bytes,
                    cache_budget_bytes: *cache_budget_bytes,
                    mono_ns: *mono_ns,
                }),
                _ => {}
            }
        }
        tl.final_cache_bytes = cache_now;
        tl.ops = per_op
            .into_iter()
            .map(|(op, acc)| {
                let final_bytes = op_now.get(&op).copied().unwrap_or(0);
                OpResidency {
                    op,
                    final_bytes,
                    ..acc
                }
            })
            .collect();
        tl
    }

    /// Parse a JSONL event log into a timeline.
    pub fn parse(text: &str) -> Result<Self, serde_json::Error> {
        Ok(Self::from_events(&parse_event_log(text)?))
    }

    /// Smallest cache headroom (budget − cache residency) seen in any
    /// watermark sample; `None` without samples.
    pub fn min_cache_headroom_bytes(&self) -> Option<u64> {
        self.watermarks
            .iter()
            .map(MemWatermark::cache_headroom_bytes)
            .min()
    }

    /// Largest all-category total seen in any watermark sample.
    pub fn peak_total_bytes(&self) -> u64 {
        self.watermarks
            .iter()
            .map(MemWatermark::total_bytes)
            .max()
            .unwrap_or(0)
    }

    fn totals(&self) -> OpResidency {
        let mut t = OpResidency::default();
        for o in &self.ops {
            t.admissions += o.admissions;
            t.admitted_bytes += o.admitted_bytes;
            t.evictions += o.evictions;
            t.evicted_bytes += o.evicted_bytes;
            t.rejections += o.rejections;
            t.rejected_bytes += o.rejected_bytes;
        }
        t
    }

    /// Deterministic text digest — the `trace memory` output.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let t = self.totals();
        let _ = writeln!(
            out,
            "memory timeline: {} admission(s) ({}), {} eviction(s) ({}), {} rejection(s) ({})",
            t.admissions,
            fmt_bytes(t.admitted_bytes),
            t.evictions,
            fmt_bytes(t.evicted_bytes),
            t.rejections,
            fmt_bytes(t.rejected_bytes),
        );
        let _ = writeln!(
            out,
            "cache residency: peak {}, final {}; eviction churn {} re-admitted",
            fmt_bytes(self.peak_cache_bytes),
            fmt_bytes(self.final_cache_bytes),
            fmt_bytes(self.churn_bytes),
        );
        let _ = writeln!(
            out,
            "shuffle store: {} map output(s), {}",
            self.shuffle_stores,
            fmt_bytes(self.shuffle_stored_bytes),
        );
        if !self.ops.is_empty() {
            let _ = writeln!(out, "per-op residency:");
            let _ = writeln!(
                out,
                "  {:<6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
                "op", "peak", "final", "admitted", "evicted", "churn"
            );
            for o in &self.ops {
                let _ = writeln!(
                    out,
                    "  {:<6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
                    o.op,
                    fmt_bytes(o.peak_bytes),
                    fmt_bytes(o.final_bytes),
                    fmt_bytes(o.admitted_bytes),
                    fmt_bytes(o.evicted_bytes),
                    fmt_bytes(o.churn_bytes),
                );
            }
        }
        if self.watermarks.is_empty() {
            let _ = writeln!(out, "no watermark samples (pre-memory-plane log?)");
        } else {
            let _ = writeln!(
                out,
                "watermarks: {} sample(s), peak total {}, min cache headroom {}",
                self.watermarks.len(),
                fmt_bytes(self.peak_total_bytes()),
                fmt_bytes(self.min_cache_headroom_bytes().unwrap_or(0)),
            );
            let _ = writeln!(
                out,
                "  {:<6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
                "stage", "cache", "shuffle", "dfs", "scratch", "headroom"
            );
            for w in &self.watermarks {
                let _ = writeln!(
                    out,
                    "  {:<6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
                    w.stage,
                    fmt_bytes(w.block_cache_bytes),
                    fmt_bytes(w.shuffle_store_bytes),
                    fmt_bytes(w.dfs_blocks_bytes),
                    fmt_bytes(w.scratch_bytes),
                    fmt_bytes(w.cache_headroom_bytes()),
                );
            }
        }
        out
    }

    /// Machine-readable mirror of [`MemoryTimeline::report`]
    /// (`trace memory --json`). Keys are emitted in fixed insertion order,
    /// so a fixed log serialises byte-identically.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::{json, Value};
        let t = self.totals();
        let ops: Vec<Value> = self
            .ops
            .iter()
            .map(|o| {
                json!({
                    "op": o.op,
                    "peak_bytes": o.peak_bytes,
                    "final_bytes": o.final_bytes,
                    "admissions": o.admissions,
                    "admitted_bytes": o.admitted_bytes,
                    "evictions": o.evictions,
                    "evicted_bytes": o.evicted_bytes,
                    "rejections": o.rejections,
                    "rejected_bytes": o.rejected_bytes,
                    "churn_bytes": o.churn_bytes,
                })
            })
            .collect();
        let watermarks: Vec<Value> = self
            .watermarks
            .iter()
            .map(|w| {
                json!({
                    "stage": w.stage,
                    "block_cache_bytes": w.block_cache_bytes,
                    "shuffle_store_bytes": w.shuffle_store_bytes,
                    "dfs_blocks_bytes": w.dfs_blocks_bytes,
                    "scratch_bytes": w.scratch_bytes,
                    "cache_budget_bytes": w.cache_budget_bytes,
                    "headroom_bytes": w.cache_headroom_bytes(),
                    "mono_ns": w.mono_ns,
                })
            })
            .collect();
        json!({
            "totals": json!({
                "admissions": t.admissions,
                "admitted_bytes": t.admitted_bytes,
                "evictions": t.evictions,
                "evicted_bytes": t.evicted_bytes,
                "rejections": t.rejections,
                "rejected_bytes": t.rejected_bytes,
                "peak_cache_bytes": self.peak_cache_bytes,
                "final_cache_bytes": self.final_cache_bytes,
                "churn_bytes": self.churn_bytes,
                "shuffle_stores": self.shuffle_stores,
                "shuffle_stored_bytes": self.shuffle_stored_bytes,
            }),
            "ops": ops,
            "watermarks": watermarks,
        })
    }

    /// One-line summary for example programs and logs.
    pub fn digest(&self) -> String {
        format!(
            "peak memory: cache {} ({} churned), shuffle {} stored, watermark total {}",
            fmt_bytes(self.peak_cache_bytes),
            fmt_bytes(self.churn_bytes),
            fmt_bytes(self.shuffle_stored_bytes),
            fmt_bytes(self.peak_total_bytes()),
        )
    }
}

/// One-line peak-memory digest of a live ledger snapshot
/// (`Engine::memory_snapshot`) — what the examples print on exit.
pub fn live_digest(readings: &[MemReading]) -> String {
    let parts: Vec<String> = readings
        .iter()
        .map(|r| format!("{} {}", r.category.name(), fmt_bytes(r.peak)))
        .collect();
    let total: u64 = readings.iter().map(|r| r.peak).sum();
    format!(
        "peak memory: {} (total {})",
        parts.join(", "),
        fmt_bytes(total)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::sample_stream;

    /// Admit → evict → re-admit the same block: the second admission is
    /// churn; a second op rides along untouched.
    fn churn_stream() -> Vec<EngineEvent> {
        vec![
            EngineEvent::CacheAdmitted {
                op: 1,
                partition: 0,
                bytes: 1_000,
            },
            EngineEvent::CacheAdmitted {
                op: 2,
                partition: 0,
                bytes: 600,
            },
            EngineEvent::CacheEvicted {
                op: 1,
                partition: 0,
                pressure: true,
                bytes: 1_000,
            },
            EngineEvent::CacheAdmitted {
                op: 1,
                partition: 0,
                bytes: 1_000,
            },
            EngineEvent::CacheRejected {
                op: 3,
                partition: 0,
                bytes: 9_000,
            },
            EngineEvent::ShuffleBytesStored {
                shuffle: 0,
                map_part: 0,
                bytes: 128,
            },
        ]
    }

    #[test]
    fn replay_tracks_peaks_churn_and_finals() {
        let tl = MemoryTimeline::from_events(&churn_stream());
        assert_eq!(tl.peak_cache_bytes, 1_600);
        assert_eq!(tl.final_cache_bytes, 1_600);
        assert_eq!(tl.churn_bytes, 1_000, "re-admission after eviction");
        assert_eq!(tl.shuffle_stores, 1);
        assert_eq!(tl.shuffle_stored_bytes, 128);
        assert_eq!(tl.ops.len(), 3);
        let op1 = &tl.ops[0];
        assert_eq!((op1.op, op1.peak_bytes, op1.final_bytes), (1, 1_000, 1_000));
        assert_eq!(op1.admitted_bytes, 2_000);
        assert_eq!(op1.churn_bytes, 1_000);
        let op3 = &tl.ops[2];
        assert_eq!((op3.rejections, op3.rejected_bytes), (1, 9_000));
        assert_eq!(op3.peak_bytes, 0, "rejected bytes never became resident");
    }

    #[test]
    fn replacement_put_does_not_double_count() {
        let tl = MemoryTimeline::from_events(&[
            EngineEvent::CacheAdmitted {
                op: 1,
                partition: 0,
                bytes: 500,
            },
            EngineEvent::CacheAdmitted {
                op: 1,
                partition: 0,
                bytes: 700,
            },
        ]);
        assert_eq!(tl.peak_cache_bytes, 700);
        assert_eq!(tl.final_cache_bytes, 700);
        assert_eq!(tl.ops[0].peak_bytes, 700);
    }

    #[test]
    fn sample_stream_yields_watermark_timeline() {
        let tl = MemoryTimeline::from_events(&sample_stream());
        assert_eq!(tl.watermarks.len(), 2);
        assert_eq!(tl.peak_total_bytes(), 6_164);
        assert_eq!(
            tl.min_cache_headroom_bytes(),
            Some((1 << 20) - 2_048),
            "stage 0 held the most cache bytes"
        );
        // Op 4's block was evicted earlier in the stream and then
        // re-admitted: the full admission is churn.
        assert_eq!(tl.churn_bytes, 2_048);
        assert_eq!(tl.final_cache_bytes, 2_048);
    }

    #[test]
    fn report_and_json_are_deterministic() {
        let events = sample_stream();
        let a = MemoryTimeline::from_events(&events);
        let b = MemoryTimeline::from_events(&events);
        assert_eq!(a.report(), b.report());
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        let report = a.report();
        assert!(report.contains("memory timeline:"), "{report}");
        assert!(report.contains("eviction churn"), "{report}");
        assert!(report.contains("per-op residency:"), "{report}");
        assert!(report.contains("watermarks: 2 sample(s)"), "{report}");
        let json = a.to_json();
        let totals = json.get("totals").unwrap();
        assert_eq!(totals.get("admitted_bytes").unwrap().as_u64(), Some(2_048));
        assert_eq!(totals.get("churn_bytes").unwrap().as_u64(), Some(2_048));
        let marks = json.get("watermarks").unwrap().as_array().unwrap();
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[1].get("scratch_bytes").unwrap().as_u64(), Some(256));
        let ops = json.get("ops").unwrap().as_array().unwrap();
        assert_eq!(ops[0].get("op").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn jsonl_round_trip_and_digest() {
        let text: String = sample_stream()
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let tl = MemoryTimeline::parse(&text).unwrap();
        assert_eq!(tl.watermarks.len(), 2);
        let digest = tl.digest();
        assert!(digest.starts_with("peak memory: cache"), "{digest}");
        assert!(MemoryTimeline::parse("not json\n").is_err());
    }

    #[test]
    fn live_digest_names_every_category() {
        use sparkscore_rdd::{MemCategory, MemoryLedger};
        let ledger = MemoryLedger::new();
        ledger.add(MemCategory::BlockCache, 2_048);
        ledger.add(MemCategory::ShuffleStore, 512);
        let line = live_digest(&ledger.snapshot());
        assert!(line.contains("block_cache 2.0KiB"), "{line}");
        assert!(line.contains("shuffle_store 512B"), "{line}");
        assert!(line.contains("dfs_blocks 0B"), "{line}");
        assert!(line.contains("scratch 0B"), "{line}");
        assert!(line.ends_with("(total 2.5KiB)"), "{line}");
    }
}
