//! End-to-end tests of the `trace` binary: every subcommand against a
//! real JSONL log produced by the engine, plus the determinism acceptance
//! check — byte-identical `report` and `dot` output across two
//! invocations on the same log — and the error paths.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

use sparkscore_cluster::ClusterSpec;
use sparkscore_rdd::{Engine, EventListener, EventLogListener};

fn trace_bin() -> &'static str {
    env!("CARGO_BIN_EXE_trace")
}

fn run(args: &[&str]) -> Output {
    Command::new(trace_bin())
        .args(args)
        .output()
        .expect("spawn trace binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

/// Run a tiny two-stage workload with an event log attached; returns the
/// log path.
fn write_sample_log(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sparkscore-obs-cli-{}", std::process::id()));
    let path = dir.join(format!("{name}.jsonl"));
    let log = Arc::new(EventLogListener::to_file(&path).expect("temp dir writable"));
    let engine = Engine::builder(ClusterSpec::test_small(2))
        .listener(Arc::clone(&log) as Arc<dyn EventListener>)
        .build();
    let data = engine
        .parallelize((0u64..64).collect::<Vec<_>>(), 8)
        .map(|x| x * 3)
        .cache();
    assert_eq!(data.count(), 64); // first job: computes + caches
    let total: u64 = data.reduce(|a, b| a + b).unwrap(); // second job: cache hits
    assert_eq!(total, (0u64..64).map(|x| x * 3).sum::<u64>());
    let keyed = data.key_by(|x| x % 4).reduce_by_key(4, |a, b| a + b);
    assert_eq!(keyed.count(), 4); // third job: shuffle-map + result stages
    log.flush().expect("flush event log");
    path
}

#[test]
fn subcommands_run_and_output_is_deterministic() {
    let log = write_sample_log("determinism");
    let log = log.to_str().unwrap();

    for sub in ["report", "critical-path", "dot"] {
        let first = run(&[sub, log]);
        assert!(first.status.success(), "{sub} failed: {first:?}");
        let second = run(&[sub, log]);
        assert_eq!(
            stdout(&first),
            stdout(&second),
            "{sub} must be byte-identical across invocations"
        );
        assert!(!stdout(&first).is_empty(), "{sub} produced no output");
    }

    let report = stdout(&run(&["report", log]));
    assert!(report.contains("== critical paths =="), "{report}");
    assert!(report.contains("cache ROI: hits="), "{report}");
    // The keyed job ran a ShuffleMap stage before its Result stage.
    assert!(report.contains("[ShuffleMap] -> "), "{report}");

    let dot = stdout(&run(&["dot", log]));
    assert!(dot.starts_with("digraph trace {"), "{dot}");
    assert!(dot.contains("cluster_job_0"), "{dot}");
}

#[test]
fn diff_compares_two_logs() {
    let a = write_sample_log("diff-a");
    let b = write_sample_log("diff-b");
    let out = run(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("== cache ROI =="), "{text}");
    assert!(text.contains("== stage-by-stage"), "{text}");
}

#[test]
fn bad_usage_and_missing_files_fail_cleanly() {
    let usage = run(&[]);
    assert_eq!(usage.status.code(), Some(2));

    let unknown = run(&["frobnicate", "x.jsonl"]);
    assert_eq!(unknown.status.code(), Some(2));

    let missing = run(&["report", "/nonexistent/no-such-log.jsonl"]);
    assert_eq!(missing.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot read"));

    let dir = std::env::temp_dir().join(format!("sparkscore-obs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let garbled = dir.join("garbled.jsonl");
    std::fs::write(&garbled, "{\"Event\": \"JobStart\"\nnot json at all\n").unwrap();
    let parse = run(&["report", garbled.to_str().unwrap()]);
    assert_eq!(parse.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&parse.stderr).contains("cannot parse"));
}
