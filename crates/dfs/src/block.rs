//! Block identity and payloads.

use std::sync::Arc;

/// Globally unique (per-DFS) block identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// A block payload together with its id. Payloads are immutable and shared.
#[derive(Debug, Clone)]
pub struct Block {
    pub id: BlockId,
    pub data: Arc<[u8]>,
}

impl Block {
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_len() {
        let b = Block {
            id: BlockId(1),
            data: Arc::from(b"hello".to_vec().into_boxed_slice()),
        };
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn ids_order() {
        assert!(BlockId(1) < BlockId(2));
    }
}
