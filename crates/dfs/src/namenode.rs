//! Namenode: file and block metadata, replica placement.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::RwLock;
use sparkscore_cluster::NodeId;

use crate::block::BlockId;

/// Metadata for one immutable file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    pub path: String,
    /// Ordered blocks with their sizes in bytes.
    pub blocks: Vec<(BlockId, u64)>,
    pub total_bytes: u64,
}

impl FileMeta {
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// How replicas are placed on nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Deterministic rotation: block b's replicas go to nodes
    /// `(cursor + i) mod n`. Spreads load evenly and makes tests
    /// reproducible; real HDFS adds rack awareness we don't model.
    RoundRobin,
}

/// The metadata service.
#[derive(Debug)]
pub struct Namenode {
    files: RwLock<BTreeMap<String, FileMeta>>,
    replicas: RwLock<BTreeMap<BlockId, Vec<NodeId>>>,
    next_block: AtomicU64,
    cursor: AtomicUsize,
    #[allow(dead_code)]
    policy: PlacementPolicy,
}

impl Namenode {
    pub fn new(policy: PlacementPolicy) -> Self {
        Namenode {
            files: RwLock::new(BTreeMap::new()),
            replicas: RwLock::new(BTreeMap::new()),
            next_block: AtomicU64::new(0),
            cursor: AtomicUsize::new(0),
            policy,
        }
    }

    /// Allocate a fresh block id and pick `replication` distinct nodes from
    /// `candidates` for its replicas.
    pub fn allocate_block(
        &self,
        candidates: &[NodeId],
        replication: usize,
    ) -> (BlockId, Vec<NodeId>) {
        assert!(
            replication <= candidates.len(),
            "placement requires at least as many candidate nodes as replicas"
        );
        let id = BlockId(self.next_block.fetch_add(1, Ordering::Relaxed));
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        let placed: Vec<NodeId> = (0..replication)
            .map(|i| candidates[(start + i) % candidates.len()])
            .collect();
        self.replicas.write().insert(id, placed.clone());
        (id, placed)
    }

    /// Register a finished file.
    pub fn register_file(&self, path: &str, blocks: Vec<(BlockId, u64)>) -> FileMeta {
        let meta = FileMeta {
            path: path.to_string(),
            total_bytes: blocks.iter().map(|&(_, n)| n).sum(),
            blocks,
        };
        self.files.write().insert(path.to_string(), meta.clone());
        meta
    }

    pub fn lookup(&self, path: &str) -> Option<FileMeta> {
        self.files.read().get(path).cloned()
    }

    pub fn list_files(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// All replica locations recorded for a block (no liveness filtering).
    pub fn replicas(&self, block: BlockId) -> Vec<NodeId> {
        self.replicas
            .read()
            .get(&block)
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn allocation_rotates_over_nodes() {
        let nn = Namenode::new(PlacementPolicy::RoundRobin);
        let cand = nodes(4);
        let (b0, r0) = nn.allocate_block(&cand, 2);
        let (b1, r1) = nn.allocate_block(&cand, 2);
        assert_ne!(b0, b1);
        assert_eq!(r0, vec![NodeId(0), NodeId(1)]);
        assert_eq!(r1, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let nn = Namenode::new(PlacementPolicy::RoundRobin);
        let cand = nodes(5);
        for _ in 0..20 {
            let (_, r) = nn.allocate_block(&cand, 3);
            let mut d = r.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least as many candidate nodes")]
    fn over_replication_panics() {
        let nn = Namenode::new(PlacementPolicy::RoundRobin);
        nn.allocate_block(&nodes(2), 3);
    }

    #[test]
    fn register_computes_totals() {
        let nn = Namenode::new(PlacementPolicy::RoundRobin);
        let meta = nn.register_file("/x", vec![(BlockId(0), 10), (BlockId(1), 32)]);
        assert_eq!(meta.total_bytes, 42);
        assert_eq!(meta.num_blocks(), 2);
        assert_eq!(nn.lookup("/x").unwrap().total_bytes, 42);
        assert!(nn.lookup("/y").is_none());
    }

    #[test]
    fn unknown_block_has_no_replicas() {
        let nn = Namenode::new(PlacementPolicy::RoundRobin);
        assert!(nn.replicas(BlockId(99)).is_empty());
    }
}
