//! In-memory model of an HDFS-like distributed file system.
//!
//! The paper's SparkScore pipeline begins with "Read input files from HDFS"
//! (Algorithm 1, step 1): genotype matrix, phenotype pairs, SNP weights and
//! SNP-sets are text files split into replicated blocks spread over the
//! datanodes, and Spark schedules input tasks onto nodes holding a local
//! replica. This crate reproduces that substrate:
//!
//! * [`block`] — block identity and payloads;
//! * [`text`] — the line-oriented input format (files are split into
//!   ~block-size chunks at line boundaries, like HDFS `TextInputFormat`
//!   with the simplification that records never straddle blocks);
//! * [`namenode`] — file → blocks → replica-locations metadata and the
//!   placement policy;
//! * [`datanode`] — per-node block stores that vanish when the node dies;
//! * [`Dfs`] — the facade the dataflow engine uses: write a text file,
//!   enumerate its blocks with locality hints, read a block from the best
//!   replica.
//!
//! Everything lives in host memory; "distribution" is metadata that the
//! virtual-time scheduler and fault injection act on.

pub mod block;
pub mod datanode;
pub mod namenode;
pub mod text;

use std::sync::Arc;

use parking_lot::RwLock;
use sparkscore_cluster::{Cluster, NodeId};

pub use block::{Block, BlockId};
pub use namenode::{FileMeta, Namenode, PlacementPolicy};
pub use text::{split_into_blocks, DEFAULT_BLOCK_SIZE};

use datanode::Datanode;

/// Errors surfaced by DFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// No file registered under this path.
    FileNotFound(String),
    /// A file already exists under this path (DFS files are immutable).
    FileExists(String),
    /// Every replica of the block is on a dead node — with replication ≥ 2
    /// this needs multiple failures, mirroring real HDFS data loss.
    AllReplicasLost(BlockId),
    /// Replication factor is zero or exceeds the number of nodes.
    BadReplication { replication: usize, nodes: usize },
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::AllReplicasLost(b) => write!(f, "all replicas lost for block {b:?}"),
            DfsError::BadReplication { replication, nodes } => {
                write!(
                    f,
                    "replication {replication} invalid for cluster size {nodes}"
                )
            }
        }
    }
}

impl std::error::Error for DfsError {}

/// The distributed file system facade.
pub struct Dfs {
    cluster: Arc<Cluster>,
    namenode: Namenode,
    datanodes: Vec<Datanode>,
    block_size: usize,
    replication: usize,
    /// Protects multi-step write (allocate + store) against concurrent
    /// writers of the same path.
    write_lock: RwLock<()>,
}

impl Dfs {
    /// Create a DFS over `cluster` with the given block size (bytes) and
    /// replication factor (HDFS default is 3, clamped to the cluster size).
    pub fn new(
        cluster: Arc<Cluster>,
        block_size: usize,
        replication: usize,
    ) -> Result<Self, DfsError> {
        assert!(block_size > 0, "block size must be positive");
        let nodes = cluster.num_nodes();
        if replication == 0 || replication > nodes {
            return Err(DfsError::BadReplication { replication, nodes });
        }
        let datanodes = (0..nodes).map(|_| Datanode::new()).collect();
        Ok(Dfs {
            cluster,
            namenode: Namenode::new(PlacementPolicy::RoundRobin),
            datanodes,
            block_size,
            replication,
            write_lock: RwLock::new(()),
        })
    }

    /// Defaults suitable for tests and examples: 8 MiB blocks, replication
    /// min(3, nodes).
    pub fn with_defaults(cluster: Arc<Cluster>) -> Self {
        let repl = cluster.num_nodes().min(3);
        Dfs::new(cluster, DEFAULT_BLOCK_SIZE, repl).expect("defaults are valid")
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn block_size(&self) -> usize {
        self.block_size
    }

    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Write `contents` as an immutable line-oriented text file.
    pub fn write_text(&self, path: &str, contents: &str) -> Result<FileMeta, DfsError> {
        let _guard = self.write_lock.write();
        if self.namenode.lookup(path).is_some() {
            return Err(DfsError::FileExists(path.to_string()));
        }
        let chunks = split_into_blocks(contents, self.block_size);
        let alive = self.cluster.alive_nodes();
        if alive.len() < self.replication {
            return Err(DfsError::BadReplication {
                replication: self.replication,
                nodes: alive.len(),
            });
        }
        let mut blocks = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let data: Arc<[u8]> = Arc::from(chunk.into_bytes().into_boxed_slice());
            let (id, replicas) = self.namenode.allocate_block(&alive, self.replication);
            for &node in &replicas {
                self.datanodes[node.index()].store(id, Arc::clone(&data));
            }
            blocks.push((id, data.len() as u64));
        }
        Ok(self.namenode.register_file(path, blocks))
    }

    /// Metadata for a file.
    pub fn stat(&self, path: &str) -> Result<FileMeta, DfsError> {
        self.namenode
            .lookup(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// All registered paths, sorted.
    pub fn list_files(&self) -> Vec<String> {
        self.namenode.list_files()
    }

    /// Alive replica locations for a block (dead nodes filtered out).
    pub fn block_locations(&self, block: BlockId) -> Vec<NodeId> {
        self.namenode
            .replicas(block)
            .into_iter()
            .filter(|&n| self.cluster.node(n).is_alive())
            .collect()
    }

    /// Read a block, preferring a replica on `reader` if given. Returns the
    /// payload and the node that served it.
    pub fn read_block(
        &self,
        block: BlockId,
        reader: Option<NodeId>,
    ) -> Result<(Arc<[u8]>, NodeId), DfsError> {
        let locations = self.block_locations(block);
        let serving = match reader {
            Some(r) if locations.contains(&r) => Some(r),
            _ => locations.first().copied(),
        };
        let Some(node) = serving else {
            return Err(DfsError::AllReplicasLost(block));
        };
        match self.datanodes[node.index()].fetch(block) {
            Some(data) => Ok((data, node)),
            // Metadata said the replica exists but the store lost it (should
            // not happen outside of node-death races) — treat as loss.
            None => Err(DfsError::AllReplicasLost(block)),
        }
    }

    /// Read an entire file back as a `String` (joins blocks in order).
    pub fn read_to_string(&self, path: &str) -> Result<String, DfsError> {
        let meta = self.stat(path)?;
        let mut out = String::with_capacity(meta.total_bytes as usize);
        for &(block, _) in &meta.blocks {
            let (data, _) = self.read_block(block, None)?;
            out.push_str(std::str::from_utf8(&data).expect("text files are UTF-8"));
        }
        Ok(out)
    }

    /// Drop every block replica stored on `node` (called when a node dies;
    /// the node must already be marked dead on the cluster for locality
    /// filtering to agree). Returns the number of replicas dropped.
    pub fn drop_node_replicas(&self, node: NodeId) -> usize {
        self.datanodes[node.index()].clear()
    }

    /// Total bytes stored across all datanodes (counting replicas).
    pub fn stored_bytes(&self) -> u64 {
        self.datanodes.iter().map(|d| d.stored_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkscore_cluster::ClusterSpec;

    fn dfs(nodes: u32, block_size: usize, repl: usize) -> Dfs {
        let cluster = Arc::new(Cluster::provision(ClusterSpec::test_small(nodes)));
        Dfs::new(cluster, block_size, repl).unwrap()
    }

    fn lines(n: usize) -> String {
        (0..n).map(|i| format!("record-{i}\n")).collect()
    }

    #[test]
    fn write_then_read_round_trips() {
        let fs = dfs(3, 64, 2);
        let text = lines(20);
        let meta = fs.write_text("/data/geno.txt", &text).unwrap();
        assert!(meta.blocks.len() > 1, "64-byte blocks must split 20 lines");
        assert_eq!(fs.read_to_string("/data/geno.txt").unwrap(), text);
    }

    #[test]
    fn files_are_immutable() {
        let fs = dfs(2, 1024, 1);
        fs.write_text("/a", "x\n").unwrap();
        assert_eq!(
            fs.write_text("/a", "y\n").unwrap_err(),
            DfsError::FileExists("/a".into())
        );
    }

    #[test]
    fn missing_file_errors() {
        let fs = dfs(1, 1024, 1);
        assert_eq!(
            fs.stat("/nope").unwrap_err(),
            DfsError::FileNotFound("/nope".into())
        );
    }

    #[test]
    fn replication_spreads_blocks() {
        let fs = dfs(4, 32, 3);
        let meta = fs.write_text("/f", &lines(10)).unwrap();
        for &(block, _) in &meta.blocks {
            assert_eq!(fs.block_locations(block).len(), 3);
        }
        // Replicas of one block are on distinct nodes.
        let locs = fs.block_locations(meta.blocks[0].0);
        let mut dedup = locs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), locs.len());
    }

    #[test]
    fn read_prefers_local_replica() {
        let fs = dfs(4, 1024, 2);
        let meta = fs.write_text("/f", &lines(3)).unwrap();
        let block = meta.blocks[0].0;
        let locs = fs.block_locations(block);
        let (_, served_by) = fs.read_block(block, Some(locs[1])).unwrap();
        assert_eq!(served_by, locs[1]);
        // A reader holding no replica gets served remotely by some replica.
        let non_replica = (0..4).map(NodeId).find(|n| !locs.contains(n)).unwrap();
        let (_, served_by) = fs.read_block(block, Some(non_replica)).unwrap();
        assert!(locs.contains(&served_by));
    }

    #[test]
    fn single_node_death_survivable_with_replication() {
        let fs = dfs(3, 32, 2);
        let text = lines(12);
        fs.write_text("/f", &text).unwrap();
        fs.cluster().kill_node(NodeId(0));
        fs.drop_node_replicas(NodeId(0));
        assert_eq!(fs.read_to_string("/f").unwrap(), text);
    }

    #[test]
    fn losing_all_replicas_is_reported() {
        let fs = dfs(2, 1024, 2);
        let meta = fs.write_text("/f", "a\n").unwrap();
        for n in [NodeId(0), NodeId(1)] {
            fs.cluster().kill_node(n);
            fs.drop_node_replicas(n);
        }
        assert_eq!(
            fs.read_block(meta.blocks[0].0, None).unwrap_err(),
            DfsError::AllReplicasLost(meta.blocks[0].0)
        );
    }

    #[test]
    fn bad_replication_rejected() {
        let cluster = Arc::new(Cluster::provision(ClusterSpec::test_small(2)));
        assert!(matches!(
            Dfs::new(Arc::clone(&cluster), 1024, 3),
            Err(DfsError::BadReplication { .. })
        ));
        assert!(matches!(
            Dfs::new(cluster, 1024, 0),
            Err(DfsError::BadReplication { .. })
        ));
    }

    #[test]
    fn stored_bytes_counts_replicas() {
        let fs = dfs(3, 1024, 3);
        fs.write_text("/f", "abcd\n").unwrap();
        assert_eq!(fs.stored_bytes(), 3 * 5);
    }

    #[test]
    fn list_files_sorted() {
        let fs = dfs(1, 1024, 1);
        fs.write_text("/b", "1\n").unwrap();
        fs.write_text("/a", "2\n").unwrap();
        assert_eq!(fs.list_files(), vec!["/a".to_string(), "/b".to_string()]);
    }

    #[test]
    fn empty_file_has_no_blocks() {
        let fs = dfs(1, 1024, 1);
        let meta = fs.write_text("/empty", "").unwrap();
        assert!(meta.blocks.is_empty());
        assert_eq!(fs.read_to_string("/empty").unwrap(), "");
    }
}
