//! Line-oriented text input format.
//!
//! Files are split into chunks of at most `block_size` bytes **at line
//! boundaries**: a record (line) never straddles two blocks, so a task can
//! parse its block independently — the property Spark's `textFile` achieves
//! with HDFS `TextInputFormat` by reading past block ends. Lines longer
//! than the block size get a block of their own (oversized, like HDFS's
//! handling of jumbo records).

/// Default block size: 8 MiB. Real HDFS uses 128 MiB; the smaller default
/// keeps per-block parallelism meaningful at laptop-scale inputs.
pub const DEFAULT_BLOCK_SIZE: usize = 8 * 1024 * 1024;

/// Split `contents` into line-aligned chunks of at most `block_size` bytes
/// (except for single lines that exceed it). Re-concatenating the chunks
/// yields `contents` exactly.
pub fn split_into_blocks(contents: &str, block_size: usize) -> Vec<String> {
    assert!(block_size > 0, "block size must be positive");
    if contents.is_empty() {
        return Vec::new();
    }
    let mut blocks = Vec::new();
    let mut current = String::new();
    for line in split_keeping_newlines(contents) {
        if !current.is_empty() && current.len() + line.len() > block_size {
            blocks.push(std::mem::take(&mut current));
        }
        current.push_str(line);
        if current.len() >= block_size {
            blocks.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        blocks.push(current);
    }
    blocks
}

/// Iterate over lines *including* their trailing `\n` (the final line may
/// lack one).
fn split_keeping_newlines(s: &str) -> impl Iterator<Item = &str> {
    let mut rest = s;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        match rest.find('\n') {
            Some(i) => {
                let (line, tail) = rest.split_at(i + 1);
                rest = tail;
                Some(line)
            }
            None => {
                let line = rest;
                rest = "";
                Some(line)
            }
        }
    })
}

/// Parse the lines of one block (no trailing-newline entries).
pub fn block_lines(block: &[u8]) -> impl Iterator<Item = &str> {
    std::str::from_utf8(block)
        .expect("text blocks are UTF-8")
        .lines()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_no_blocks() {
        assert!(split_into_blocks("", 16).is_empty());
    }

    #[test]
    fn small_input_single_block() {
        let blocks = split_into_blocks("a\nb\nc\n", 1024);
        assert_eq!(blocks, vec!["a\nb\nc\n"]);
    }

    #[test]
    fn splits_at_line_boundaries() {
        // 4 lines of 4 bytes each; block size 8 → 2 lines per block.
        let blocks = split_into_blocks("aa1\nbb2\ncc3\ndd4\n", 8);
        assert_eq!(blocks, vec!["aa1\nbb2\n", "cc3\ndd4\n"]);
    }

    #[test]
    fn jumbo_line_gets_own_block() {
        let long = "x".repeat(100);
        let input = format!("a\n{long}\nb\n");
        let blocks = split_into_blocks(&input, 8);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[1], format!("{long}\n"));
    }

    #[test]
    fn no_trailing_newline_preserved() {
        let blocks = split_into_blocks("a\nb", 1024);
        assert_eq!(blocks, vec!["a\nb"]);
    }

    #[test]
    fn block_lines_parses() {
        let lines: Vec<&str> = block_lines(b"snp1 0 1 2\nsnp2 1 1 0\n").collect();
        assert_eq!(lines, vec!["snp1 0 1 2", "snp2 1 1 0"]);
    }

    proptest! {
        /// Concatenating the blocks reproduces the input byte-for-byte.
        #[test]
        fn prop_round_trip(lines in proptest::collection::vec("[a-z]{0,20}", 0..50),
                           block_size in 1usize..64) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let blocks = split_into_blocks(&input, block_size);
            let joined: String = blocks.concat();
            prop_assert_eq!(joined, input);
        }

        /// Every block except jumbo-line blocks respects the size bound, and
        /// no line is split across blocks.
        #[test]
        fn prop_line_alignment(lines in proptest::collection::vec("[a-z]{1,10}", 1..40),
                               block_size in 4usize..32) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let blocks = split_into_blocks(&input, block_size);
            let mut reassembled = Vec::new();
            for b in &blocks {
                // Each block must itself end on a line boundary.
                prop_assert!(b.ends_with('\n'));
                reassembled.extend(b.lines().map(str::to_owned));
            }
            prop_assert_eq!(reassembled, lines);
        }
    }
}
