//! Datanode: one node's block store.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::block::BlockId;

/// Per-node replica store. All replicas on the node vanish together when
/// the node dies ([`Datanode::clear`]).
#[derive(Debug, Default)]
pub struct Datanode {
    blocks: RwLock<HashMap<BlockId, Arc<[u8]>>>,
}

impl Datanode {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn store(&self, id: BlockId, data: Arc<[u8]>) {
        self.blocks.write().insert(id, data);
    }

    pub fn fetch(&self, id: BlockId) -> Option<Arc<[u8]>> {
        self.blocks.read().get(&id).cloned()
    }

    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.read().contains_key(&id)
    }

    /// Drop every replica; returns how many were dropped.
    pub fn clear(&self) -> usize {
        let mut guard = self.blocks.write();
        let n = guard.len();
        guard.clear();
        n
    }

    pub fn stored_bytes(&self) -> u64 {
        self.blocks.read().values().map(|b| b.len() as u64).sum()
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes().to_vec().into_boxed_slice())
    }

    #[test]
    fn store_fetch_contains() {
        let dn = Datanode::new();
        dn.store(BlockId(1), bytes("abc"));
        assert!(dn.contains(BlockId(1)));
        assert_eq!(&*dn.fetch(BlockId(1)).unwrap(), b"abc");
        assert!(dn.fetch(BlockId(2)).is_none());
    }

    #[test]
    fn clear_reports_count() {
        let dn = Datanode::new();
        dn.store(BlockId(1), bytes("a"));
        dn.store(BlockId(2), bytes("bc"));
        assert_eq!(dn.stored_bytes(), 3);
        assert_eq!(dn.num_blocks(), 2);
        assert_eq!(dn.clear(), 2);
        assert_eq!(dn.num_blocks(), 0);
        assert_eq!(dn.stored_bytes(), 0);
    }
}
